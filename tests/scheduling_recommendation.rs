//! Integration of the recommender with the task-graph substrate: the §5.2
//! "list-scheduling simulator" recommendation is not just prose — this test
//! executes the recommended assignment end to end for the courses that
//! receive it.

use anchors_core::{recommend_for_course, FlavorKind};
use anchors_corpus::default_corpus;
use anchors_curricula::{cs2013, pdc12};
use anchors_sched::{dp_wavefront, fork_join, graham_bounds, list_schedule, random_dag, Priority};

#[test]
fn recommended_task_graph_assignment_is_executable() {
    let corpus = default_corpus();
    let cs = cs2013();
    let pdc = pdc12();

    let mut exercised = 0;
    for &cid in corpus.all() {
        let recs = recommend_for_course(&corpus.store, cs, pdc, cid);
        let Some(rec) = recs.iter().find(|r| r.flavor == FlavorKind::GraphsCovered) else {
            continue;
        };
        exercised += 1;
        // The recommendation says: build a DAG, topologically sort it,
        // compute the critical path, then run a list scheduler. Do it.
        let g = random_dag(60, 0.08, 1.0..=6.0, cid.0 as u64);
        let order = g.topological_sort().expect("feasible order of tasks");
        assert!(g.is_topological_order(&order));
        let span = g.span().unwrap();
        let parallelism = g.average_parallelism().unwrap();
        assert!(parallelism >= 1.0, "critical path bounds parallelism");
        for m in [2usize, 4, 8] {
            let s = list_schedule(&g, m, Priority::CriticalPath);
            s.validate(&g).expect("valid schedule");
            let (lo, hi) = graham_bounds(&g, m);
            assert!(s.makespan >= lo - 1e-9 && s.makespan <= hi + 1e-9);
            assert!(s.makespan >= span - 1e-9, "span is a lower bound");
        }
        // The anchors the rule claims must exist in the guideline.
        assert!(rec.anchors.iter().any(|a| a == "DS.GT"));
    }
    assert!(
        exercised >= 4,
        "most DS courses trigger the task-graph rule"
    );
}

#[test]
fn dp_wavefront_recommendation_shows_bottom_up_parallelism() {
    // The DsCombinatorial rule claims bottom-up DP parallelizes with
    // wavefronts: verify the wavefront DAG actually exhibits that shape.
    let n = 32;
    let g = dp_wavefront(n, 1.0);
    let profile = g.level_profile().unwrap();
    // Parallelism ramps up to n and back down: 2n-1 levels, peak n.
    assert_eq!(profile.len(), 2 * n - 1);
    assert_eq!(profile.iter().copied().max(), Some(n));
    // Scheduling on n processors approaches the span.
    let s = list_schedule(&g, n, Priority::CriticalPath);
    let span = g.span().unwrap();
    assert!(
        s.makespan <= span * 1.2,
        "wavefront scheduling should almost reach the critical path ({} vs {span})",
        s.makespan
    );
    // While a single processor pays the full work.
    let s1 = list_schedule(&g, 1, Priority::CriticalPath);
    assert_eq!(s1.makespan, g.work());
}

#[test]
fn fork_join_speedup_curve_shape() {
    // The CS1-algorithmic rule promises observable speedup from
    // parallel-for; the fork-join model predicts the curve.
    let g = fork_join(64, 1.0, 0.0);
    let t1 = list_schedule(&g, 1, Priority::CriticalPath).makespan;
    let mut prev_speedup = 0.0;
    for m in [1usize, 2, 4, 8, 16, 32, 64] {
        let tm = list_schedule(&g, m, Priority::CriticalPath).makespan;
        let speedup = t1 / tm;
        assert!(
            speedup >= prev_speedup - 1e-9,
            "speedup is monotone for independent tasks"
        );
        assert!(speedup <= m as f64 + 1e-9, "no superlinear speedup");
        prev_speedup = speedup;
    }
    // Near-linear at 64 procs on 64 independent unit tasks.
    assert!(prev_speedup > 32.0);
}
