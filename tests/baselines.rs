//! The threats-to-validity baselines: PCA and MDS as alternative
//! dimension-reduction techniques on the same course matrix, compared
//! against NNMF — plus solver/init ablations.

use anchors_corpus::default_corpus;
use anchors_factor::{classical_mds, nnmf, pca, Init, NnmfConfig, Solver};
use anchors_linalg::{pairwise_distances, Metric};
use anchors_materials::CourseMatrix;

fn course_matrix() -> (CourseMatrix, Vec<String>) {
    let corpus = default_corpus();
    let cm = CourseMatrix::build(&corpus.store, corpus.all());
    let names = cm
        .courses
        .iter()
        .map(|&c| corpus.store.course(c).name.clone())
        .collect();
    (cm, names)
}

#[test]
fn pca_separates_pdc_from_cs1_too() {
    // PCA is signed and centered but should still separate the strongest
    // family contrast (PDC vs everything else) along its top components.
    let (cm, names) = course_matrix();
    let model = pca(&cm.a, 4);
    let scores = model.transform(&cm.a);
    // For each pair of PDC courses, their distance in PC space must be
    // smaller than their mean distance to CS1 courses.
    let is_pdc: Vec<bool> = names.iter().map(|n| n.contains("Parallel")).collect();
    let is_cs1: Vec<bool> = names
        .iter()
        .map(|n| n.contains("CS1") || n.contains("Computer Science 1"))
        .collect();
    let d = pairwise_distances(&scores, Metric::Euclidean);
    let mut intra = vec![];
    let mut inter = vec![];
    for i in 0..names.len() {
        for j in (i + 1)..names.len() {
            if is_pdc[i] && is_pdc[j] {
                intra.push(d.get(i, j));
            } else if (is_pdc[i] && is_cs1[j]) || (is_cs1[i] && is_pdc[j]) {
                inter.push(d.get(i, j));
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&intra) < mean(&inter),
        "PDC courses cluster in PCA space: intra {} vs inter {}",
        mean(&intra),
        mean(&inter)
    );
}

#[test]
fn pca_explained_variance_concentrates() {
    let (cm, _) = course_matrix();
    let model = pca(&cm.a, 10);
    let top4: f64 = model.explained_ratio.iter().take(4).sum();
    let total: f64 = model.explained_ratio.iter().sum();
    assert!(
        top4 / total > 0.4,
        "course variation concentrates in few components ({top4:.2}/{total:.2})"
    );
}

#[test]
fn mds_of_courses_reflects_family_structure() {
    let (cm, names) = course_matrix();
    let d = pairwise_distances(&cm.a, Metric::Jaccard);
    let emb = classical_mds(&d, 2);
    assert!(emb.points.is_finite());
    // The two 2214 sections embed closer than 2214 vs the networking course.
    let pos = |needle: &str| names.iter().position(|n| n.contains(needle)).unwrap();
    let dist = |a: usize, b: usize| {
        let dx = emb.points.get(a, 0) - emb.points.get(b, 0);
        let dy = emb.points.get(a, 1) - emb.points.get(b, 1);
        (dx * dx + dy * dy).sqrt()
    };
    let (k1, k2, net) = (pos("2214 KRS"), pos("2214 Saule"), pos("Bopana"));
    assert!(dist(k1, k2) < dist(k1, net));
}

#[test]
fn nnmf_solvers_reach_comparable_loss() {
    let (cm, _) = course_matrix();
    let hals = nnmf(&cm.a, &NnmfConfig::paper_default(4));
    let mu = nnmf(&cm.a, &NnmfConfig::multiplicative(4));
    // Both solve the same objective; neither should be wildly worse.
    let worst = hals.loss.max(mu.loss);
    let best = hals.loss.min(mu.loss);
    assert!(
        worst <= best * 1.25,
        "solver gap too large: HALS {} vs MU {}",
        hals.loss,
        mu.loss
    );
}

#[test]
fn nndsvd_init_competitive_with_multi_restart_random() {
    let (cm, _) = course_matrix();
    let random = nnmf(&cm.a, &NnmfConfig::paper_default(4));
    let nndsvd = nnmf(
        &cm.a,
        &NnmfConfig {
            init: Init::NndsvdA,
            ..NnmfConfig::paper_default(4)
        },
    );
    assert!(
        nndsvd.loss <= random.loss * 1.2,
        "NNDSVD {} should be competitive with random multi-restart {}",
        nndsvd.loss,
        random.loss
    );
}

#[test]
fn nnmf_buys_interpretability_over_pca_nonnegativity() {
    // The property the paper relies on: NNMF parts are nonnegative, PCA
    // components are signed (so cannot be read as topic profiles).
    let (cm, _) = course_matrix();
    let model = nnmf(&cm.a, &NnmfConfig::paper_default(4));
    assert!(model.w.is_nonnegative());
    assert!(model.h.is_nonnegative());
    let p = pca(&cm.a, 4);
    let has_negative = p.components.as_slice().iter().any(|&v| v < -1e-9);
    assert!(has_negative, "PCA components are signed");
}

#[test]
fn hals_iterations_far_fewer_than_mu() {
    let (cm, _) = course_matrix();
    let hals = nnmf(
        &cm.a,
        &NnmfConfig {
            solver: Solver::Hals,
            restarts: 1,
            ..NnmfConfig::paper_default(4)
        },
    );
    let mu = nnmf(
        &cm.a,
        &NnmfConfig {
            solver: Solver::MultiplicativeUpdate,
            restarts: 1,
            max_iter: 500,
            ..NnmfConfig::paper_default(4)
        },
    );
    assert!(
        hals.iterations <= mu.iterations,
        "HALS ({}) should converge in no more sweeps than MU ({})",
        hals.iterations,
        mu.iterations
    );
}
