//! Cross-crate integration: the full paper pipeline, checked against the
//! qualitative acceptance criteria of DESIGN.md §6.

use anchors_core::{run_full_analysis, AnalysisReport, FlavorKind};
use anchors_corpus::DEFAULT_SEED;
use anchors_curricula::cs2013;
use anchors_materials::CourseLabel;
use std::sync::OnceLock;

/// The default-seed report is immutable; compute it once for all tests.
fn report() -> &'static AnalysisReport {
    static REPORT: OnceLock<AnalysisReport> = OnceLock::new();
    REPORT.get_or_init(|| run_full_analysis(DEFAULT_SEED))
}

#[test]
fn criterion_1_all_courses_nnmf_separates_families() {
    let r = report();
    let fm = &r.all_courses_model;
    let idx_of = |cid| r.corpus.all().iter().position(|&x| x == cid).unwrap();
    let dominant = |label: CourseLabel| -> usize {
        let ids = r.corpus.with_label(label);
        let mut counts = vec![0usize; fm.k()];
        for id in ids {
            counts[fm.assignments[idx_of(id)]] += 1;
        }
        (0..fm.k()).max_by_key(|&t| counts[t]).unwrap()
    };
    let dims = [
        dominant(CourseLabel::DataStructures),
        dominant(CourseLabel::SoftEng),
        dominant(CourseLabel::Pdc),
        dominant(CourseLabel::Cs1),
    ];
    let mut unique = dims.to_vec();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        4,
        "four families → four distinct dimensions, got {dims:?}"
    );
}

#[test]
fn criterion_2_cs1_agreement_weak_ds_agreement_strong() {
    let r = report();
    let g = cs2013();
    // CS1 agreement@4 confined to SDF, predominantly FPC.
    let kas = r.cs1_agreement.spanned_kas(g, 4);
    assert_eq!(kas, vec!["SDF".to_string()]);
    let fpc = g.by_code("SDF.FPC").unwrap();
    let tree = r.cs1_agreement.tree(4);
    let in_fpc = tree
        .agreed_leaves
        .iter()
        .filter(|&&(t, _)| g.is_ancestor(fpc, t))
        .count();
    assert!(
        in_fpc * 10 >= tree.len() * 7,
        "{in_fpc}/{} in FPC",
        tree.len()
    );
    // DS agreement markedly stronger.
    assert!(r.ds_agreement.agreement_fraction(2) > r.cs1_agreement.agreement_fraction(2) * 1.25);
}

#[test]
fn criterion_3_cs1_three_flavors_with_paper_assignments() {
    let r = report();
    let fm = &r.cs1_flavors;
    let idx = |needle: &str| {
        fm.matrix
            .courses
            .iter()
            .position(|&id| r.corpus.store.course(id).name.contains(needle))
            .unwrap()
    };
    let (s, k, a) = (
        fm.assignments[idx("Singh")],
        fm.assignments[idx("Kerney")],
        fm.assignments[idx("Ahmed")],
    );
    assert!(s != k && s != a && k != a, "three distinct flavors");
    // Type semantics (Figure 5's reading).
    assert!(fm.types[s].ku_weight("PL.OOP") > fm.types[k].ku_weight("PL.OOP"));
    assert!(fm.types[a].ku_weight("AL.FDSA") > fm.types[s].ku_weight("AL.FDSA"));
    assert!(fm.types[k].ku_weight("AR.MLRD") > fm.types[s].ku_weight("AR.MLRD"));
}

#[test]
fn criterion_4_ds_three_flavors() {
    let r = report();
    let fm = &r.ds_flavors;
    let idx = |needle: &str| {
        fm.matrix
            .courses
            .iter()
            .position(|&id| r.corpus.store.course(id).name.contains(needle))
            .unwrap()
    };
    // Applied (2214), OOP (VCU), combinatorial (2215/Wahl/BSC).
    assert_eq!(
        fm.assignments[idx("2214 KRS")],
        fm.assignments[idx("2214 Saule")]
    );
    assert_eq!(fm.assignments[idx("Wahl")], fm.assignments[idx("2215")]);
    assert_eq!(fm.assignments[idx("BSC")], fm.assignments[idx("2215")]);
    assert_ne!(fm.assignments[idx("VCU")], fm.assignments[idx("2215")]);
    assert_ne!(fm.assignments[idx("2214 KRS")], fm.assignments[idx("2215")]);
    // UCF spreads over more than one type.
    let ucf_mix = fm.mixture_of(idx("UCF"));
    let nontrivial = ucf_mix.iter().filter(|&&v| v > 0.1).count();
    assert!(nontrivial >= 2, "UCF touches several types: {ucf_mix:?}");
}

#[test]
fn criterion_5_pdc_agreement_outside_pd_is_core_concepts() {
    let r = report();
    let g = cs2013();
    let outside = r.pdc_agreement.agreed_outside(g, 2, "PD");
    assert!(!outside.is_empty());
    // Digraphs/recursion/Big-Oh concepts must be among them.
    let labels: Vec<String> = outside
        .iter()
        .map(|&t| {
            let ku = g.knowledge_unit_of(t).unwrap();
            g.node(ku).code.clone()
        })
        .collect();
    assert!(
        labels.iter().any(|l| l == "DS.GT") || labels.iter().any(|l| l == "AL.BA"),
        "graphs or Big-Oh agreement expected, got {labels:?}"
    );
}

#[test]
fn criterion_6_recommender_covers_section_5_2() {
    let r = report();
    let mut seen = std::collections::BTreeSet::new();
    for (_, recs) in &r.recommendations {
        for rec in recs {
            seen.insert(format!("{:?}", rec.flavor));
        }
    }
    for expected in [
        "Cs1Imperative",
        "Cs1Algorithmic",
        "Cs1Oop",
        "DsCore",
        "DsOop",
        "DsCombinatorial",
        "DsApplied",
        "GraphsCovered",
    ] {
        assert!(
            seen.contains(expected),
            "no course triggered the {expected} rule; triggered: {seen:?}"
        );
    }
}

#[test]
fn report_is_reproducible_across_processes_within_run() {
    let a = run_full_analysis(12345);
    let b = run_full_analysis(12345);
    assert_eq!(a.cs1_agreement.tag_counts, b.cs1_agreement.tag_counts);
    assert_eq!(a.ds_flavors.assignments, b.ds_flavors.assignments);
    assert_eq!(
        a.recommendations
            .iter()
            .map(|(_, r)| r.len())
            .sum::<usize>(),
        b.recommendations
            .iter()
            .map(|(_, r)| r.len())
            .sum::<usize>()
    );
}

#[test]
fn alternative_seeds_preserve_the_shape() {
    // The qualitative structure must not depend on the lucky seed: check the
    // headline comparisons across three alternative corpora.
    for seed in [1u64, 2, 3] {
        let r = run_full_analysis(seed);
        assert!(
            r.ds_agreement.agreement_fraction(2) > r.cs1_agreement.agreement_fraction(2),
            "seed {seed}: DS must agree more than CS1"
        );
        let g = cs2013();
        let kas = r.cs1_agreement.spanned_kas(g, 4);
        assert!(
            kas.contains(&"SDF".to_string()),
            "seed {seed}: CS1 agreement@4 must include SDF, got {kas:?}"
        );
        assert!(
            !r.pdc_agreement.agreed_outside(g, 2, "PD").is_empty(),
            "seed {seed}: PDC courses share some non-PDC concepts"
        );
    }
}

#[test]
fn recommendations_reference_only_resolvable_codes() {
    let r = report();
    let cs = cs2013();
    let pdc = anchors_curricula::pdc12();
    for (_, recs) in &r.recommendations {
        for rec in recs {
            for c in &rec.pdc_topics {
                assert!(pdc.by_code(c).is_some(), "dangling PDC code {c}");
            }
            for c in &rec.anchors {
                assert!(cs.by_code(c).is_some(), "dangling CS2013 code {c}");
            }
            let _ = FlavorKind::Cs1Core; // exercise re-export
        }
    }
}
