//! Integration: export the generated corpus to the portable JSON format,
//! re-import it, and verify the whole analysis is identical — the pipeline
//! is a pure function of the classification data.

use anchors_core::AgreementAnalysis;
use anchors_corpus::default_corpus;
use anchors_curricula::cs2013;
use anchors_materials::{export_json, import_json, CourseMatrix};

#[test]
fn corpus_roundtrips_through_portable_json() {
    let corpus = default_corpus();
    let g = cs2013();
    let json = export_json(&corpus.store, g);
    assert!(json.contains("ACM/IEEE CS2013"));
    assert!(json.contains("SDF.FPC"), "codes, not ids");

    let store2 = import_json(&json, g).expect("import");
    assert_eq!(store2.course_count(), corpus.store.course_count());
    assert_eq!(store2.material_count(), corpus.store.material_count());
    store2.validate(g).expect("valid");

    // The analysis over the re-imported store is identical.
    let ids1: Vec<_> = corpus.store.courses().iter().map(|c| c.id).collect();
    let ids2: Vec<_> = store2.courses().iter().map(|c| c.id).collect();
    let m1 = CourseMatrix::build(&corpus.store, &ids1);
    let m2 = CourseMatrix::build(&store2, &ids2);
    assert_eq!(m1.a, m2.a, "identical course matrices");

    let a1 = AgreementAnalysis::run(&corpus.store, g, "all", &ids1);
    let a2 = AgreementAnalysis::run(&store2, g, "all", &ids2);
    assert_eq!(a1.tag_counts, a2.tag_counts);
    assert_eq!(a1.survival, a2.survival);
}

#[test]
fn export_is_deterministic() {
    let g = cs2013();
    let a = export_json(&default_corpus().store, g);
    let b = export_json(&default_corpus().store, g);
    assert_eq!(a, b);
}

#[test]
fn import_rejects_corrupted_payloads() {
    let g = cs2013();
    let corpus = default_corpus();
    let json = export_json(&corpus.store, g);
    // Tamper: swap a valid code for garbage.
    let bad = json.replacen("SDF.FPC.t1", "XX.YY.zz", 1);
    if bad != json {
        assert!(import_json(&bad, g).is_err());
    }
    assert!(import_json("[1, 2, 3]", g).is_err());
}
