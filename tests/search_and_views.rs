//! Cross-crate integration: the CS Materials services — search, similarity
//! graph + MDS layout, bicluster matrix view, alignment views — over the
//! generated corpus.

use anchors_corpus::default_corpus;
use anchors_curricula::cs2013;
use anchors_factor::{block_purity, classical_mds, smacof, spectral_cocluster};
use anchors_linalg::Metric;
use anchors_materials::{
    search, AlignmentView, MaterialKind, MaterialMatrix, Query, SimilarityGraph,
};

#[test]
fn search_finds_graph_material_in_every_ds_course() {
    let corpus = default_corpus();
    let g = cs2013();
    let gt = g.by_code("DS.GT").unwrap();
    let tags = g.leaves_under(gt);
    let hits = search(&corpus.store, g, &Query::tags(tags.iter().copied()));
    assert!(!hits.is_empty());
    // Results sorted by score descending.
    for w in hits.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    // At least one material of every DS course matches graphs.
    for cid in corpus.ds_group() {
        let any = corpus
            .store
            .course(cid)
            .materials
            .iter()
            .any(|m| hits.iter().any(|h| h.material == *m));
        assert!(
            any,
            "{} has no graph-related material",
            corpus.store.course(cid).name
        );
    }
}

#[test]
fn search_facets_compose() {
    let corpus = default_corpus();
    let g = cs2013();
    let fpc = g.by_code("SDF.FPC").unwrap();
    let tags = g.leaves_under(fpc);
    let unfiltered = search(&corpus.store, g, &Query::tags(tags.iter().copied()));
    let filtered = search(
        &corpus.store,
        g,
        &Query::tags(tags.iter().copied())
            .in_language("C")
            .of_kind(MaterialKind::Assignment),
    );
    assert!(filtered.len() < unfiltered.len());
    for h in &filtered {
        let m = corpus.store.material(h.material);
        assert_eq!(m.kind, MaterialKind::Assignment);
        assert_eq!(m.language.as_deref(), Some("C"));
    }
}

#[test]
fn similarity_graph_mds_roundtrip_places_similar_materials_close() {
    let corpus = default_corpus();
    let g = cs2013();
    let gt = g.by_code("AL.FDSA").unwrap();
    let tags: Vec<_> = g.leaves_under(gt).into_iter().take(8).collect();
    let hits = search(
        &corpus.store,
        g,
        &Query::tags(tags.iter().copied()).limit(12),
    );
    let ids: Vec<_> = hits.iter().map(|h| h.material).collect();
    let graph = SimilarityGraph::build(&corpus.store, &tags, &ids);
    let d = graph.distance_matrix();
    anchors_linalg::distance::validate_distance_matrix(&d).unwrap();

    let emb = smacof(&d, 2, 300, 1e-10, 3);
    assert!(emb.stress.is_finite());
    // The most similar pair must land closer in the embedding than the
    // most dissimilar pair.
    let n = graph.len();
    let mut best = (0, 1, f64::INFINITY);
    let mut worst = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let v = d.get(i, j);
            if v < best.2 {
                best = (i, j, v);
            }
            if v > worst.2 {
                worst = (i, j, v);
            }
        }
    }
    let dist = |i: usize, j: usize| {
        let dx = emb.points.get(i, 0) - emb.points.get(j, 0);
        let dy = emb.points.get(i, 1) - emb.points.get(j, 1);
        (dx * dx + dy * dy).sqrt()
    };
    assert!(
        dist(best.0, best.1) <= dist(worst.0, worst.1) + 1e-9,
        "similar pair should embed no farther than dissimilar pair"
    );
}

#[test]
fn classical_and_smacof_agree_on_embeddability() {
    let corpus = default_corpus();
    let g = cs2013();
    let tags = g.leaves_under(g.by_code("SDF.FPC").unwrap());
    let hits = search(
        &corpus.store,
        g,
        &Query::tags(tags.iter().copied()).limit(10),
    );
    let ids: Vec<_> = hits.iter().map(|h| h.material).collect();
    let graph = SimilarityGraph::build(&corpus.store, &tags, &ids);
    let d = graph.distance_matrix();
    let c = classical_mds(&d, 2);
    let s = smacof(&d, 2, 200, 1e-10, 1);
    assert!(
        s.stress <= c.stress + 1e-9,
        "SMACOF refines the classical start"
    );
}

#[test]
fn matrix_view_biclusters_have_structure() {
    let corpus = default_corpus();
    // Matrix view over one OOP course + one algorithms course: tags should
    // co-cluster with their course's materials.
    let courses: Vec<_> = corpus
        .all()
        .iter()
        .copied()
        .filter(|&c| {
            let n = &corpus.store.course(c).name;
            n.contains("3112") || n.contains("2215")
        })
        .collect();
    assert_eq!(courses.len(), 2);
    let mm = MaterialMatrix::build(&corpus.store, &courses);
    let bc = spectral_cocluster(&mm.m, 2, 42);
    let purity = block_purity(&mm.m, &bc);
    assert!(
        purity > 0.65,
        "two disjoint courses should bicluster cleanly, purity {purity}"
    );
}

#[test]
fn alignment_view_detects_assessment_drift() {
    let corpus = default_corpus();
    let g = cs2013();
    // Compare lecture tags against assessment tags for every course: the
    // generator samples assessments from the same pool, so misalignment is
    // moderate, never total.
    for &cid in corpus.all() {
        let lectures = corpus.store.course_tags_of_kind(cid, MaterialKind::Lecture);
        let exams = corpus
            .store
            .course_tags_of_kind(cid, MaterialKind::Assessment);
        if lectures.is_empty() || exams.is_empty() {
            continue;
        }
        let view = AlignmentView::build(g, &lectures, &exams);
        let mis = view.misalignment(g);
        assert!(
            (0.0..1.0).contains(&mis),
            "{}: misalignment {mis}",
            corpus.store.course(cid).name
        );
        // The root always sees both sides.
        assert!(view.score(g.root()).is_some());
    }
}

#[test]
fn pairwise_metrics_consistent_on_course_matrix() {
    let corpus = default_corpus();
    let cm = anchors_materials::CourseMatrix::build(&corpus.store, corpus.all());
    let dj = anchors_linalg::pairwise_distances(&cm.a, Metric::Jaccard);
    let dc = anchors_linalg::pairwise_distances(&cm.a, Metric::Cosine);
    anchors_linalg::distance::validate_distance_matrix(&dj).unwrap();
    anchors_linalg::distance::validate_distance_matrix(&dc).unwrap();
    // The two 2214 sections must be among the closest course pairs under
    // both metrics (same latent profile).
    let i1 = corpus
        .all()
        .iter()
        .position(|&c| corpus.store.course(c).name.contains("2214 KRS"))
        .unwrap();
    let i2 = corpus
        .all()
        .iter()
        .position(|&c| corpus.store.course(c).name.contains("2214 Saule"))
        .unwrap();
    let n = cm.a.rows();
    let mut all_j: Vec<f64> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| dj.get(i, j))
        .collect();
    all_j.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sibling = dj.get(i1, i2);
    let rank = all_j.iter().filter(|&&v| v < sibling).count();
    assert!(
        rank <= all_j.len() / 4,
        "2214 sections should be in the closest quartile (rank {rank}/{})",
        all_j.len()
    );
}
