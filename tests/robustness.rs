//! Failure injection and degenerate-input robustness across the stack:
//! empty groups, single courses, all-zero columns, tampered stores.

use anchors_core::{discover_flavors, AgreementAnalysis};
use anchors_corpus::{default_corpus, generate_subset};
use anchors_curricula::cs2013;
use anchors_factor::{classical_mds, nnmf, NnmfConfig};
use anchors_linalg::{CsrMatrix, Matrix};
use anchors_materials::{
    search, AgreementTree, CourseLabel, CourseMatrix, MaterialKind, MaterialStore, Query,
    SimilarityGraph, TagSpace,
};

#[test]
fn single_course_group_analyzes() {
    let corpus = default_corpus();
    let g = cs2013();
    let one = vec![corpus.all()[0]];
    let a = AgreementAnalysis::run(&corpus.store, g, "solo", &one);
    assert_eq!(a.matrix.n_courses(), 1);
    // Every tag appears in exactly one course.
    assert_eq!(a.tags_at(1), a.total_tags());
    assert_eq!(a.tags_at(2), 0);
    assert!(a.tree(2).is_empty());
}

#[test]
fn empty_course_group_yields_empty_analysis() {
    let corpus = default_corpus();
    let g = cs2013();
    let a = AgreementAnalysis::run(&corpus.store, g, "nobody", &[]);
    assert_eq!(a.total_tags(), 0);
    assert_eq!(a.survival, vec![0, 0]);
    assert!(a.tree(3).is_empty());
}

#[test]
fn course_with_no_materials_is_all_zero_row() {
    let g = cs2013();
    let mut store = MaterialStore::new();
    let empty = store.add_course("Empty", "U", "I", vec![CourseLabel::Cs1], None);
    let full = store.add_course("Full", "U", "I", vec![CourseLabel::Cs1], None);
    let t = g.by_code("SDF.FPC.t1").unwrap();
    store.add_material(full, "m", MaterialKind::Lecture, "I", None, vec![], vec![t]);
    let cm = CourseMatrix::build(&store, &[empty, full]);
    assert_eq!(cm.a.row(0).iter().sum::<f64>(), 0.0);
    assert_eq!(cm.a.row(1).iter().sum::<f64>(), 1.0);
    // NNMF still runs (k must respect dims).
    let model = nnmf(&cm.a, &NnmfConfig::paper_default(1));
    assert!(model.w.is_nonnegative());
}

#[test]
fn nnmf_handles_duplicate_and_zero_columns() {
    // Two identical columns plus an all-zero column.
    let a = Matrix::from_rows(&[
        vec![1.0, 1.0, 0.0, 2.0],
        vec![0.0, 0.0, 0.0, 1.0],
        vec![1.0, 1.0, 0.0, 0.0],
    ]);
    let m = nnmf(&a, &NnmfConfig::paper_default(2));
    assert!(m.w.is_finite() && m.h.is_finite());
    // Zero column reconstructs to (near) zero.
    let rec = m.reconstruct();
    for i in 0..3 {
        assert!(rec.get(i, 2).abs() < 0.2, "zero column stays ~zero");
    }
    // The storage-generic solver agrees bitwise on CSR for the same input.
    let sm = nnmf(&CsrMatrix::from_dense(&a), &NnmfConfig::paper_default(2));
    assert_eq!(sm.w, m.w);
    assert_eq!(sm.h, m.h);
    assert_eq!(sm.loss, m.loss);
}

#[test]
fn flavor_discovery_with_k_equal_courses() {
    let corpus = default_corpus();
    let g = cs2013();
    let pdc = corpus.pdc_group();
    // k = number of courses: each course can get its own type.
    let fm = discover_flavors(&corpus.store, g, &pdc, 3);
    assert_eq!(fm.k(), 3);
    assert_eq!(fm.assignments.len(), 3);
}

#[test]
fn subset_generation_of_one_course() {
    let corpus = generate_subset(1, &anchors_corpus::ROSTER[..1]);
    assert_eq!(corpus.courses.len(), 1);
    corpus.store.validate(cs2013()).expect("valid");
    assert!(corpus.store.material_count() > 0);
}

#[test]
fn search_with_unknown_style_queries() {
    let corpus = default_corpus();
    let g = cs2013();
    // Facet that matches nothing.
    let hits = search(&corpus.store, g, &Query::default().in_language("COBOL"));
    assert!(hits.is_empty());
    // Author facet with wrong case still matches (case-insensitive).
    let hits = search(&corpus.store, g, &Query::default().by_author("saule"));
    assert!(!hits.is_empty());
}

#[test]
fn similarity_graph_with_empty_query() {
    let corpus = default_corpus();
    let ids: Vec<_> = corpus
        .store
        .materials()
        .iter()
        .map(|m| m.id)
        .take(4)
        .collect();
    let graph = SimilarityGraph::build(&corpus.store, &[], &ids);
    assert_eq!(graph.len(), 5);
    // Empty query has Jaccard 0 with any nonempty material.
    for j in 1..graph.len() {
        assert_eq!(graph.weights[0][j], 0.0);
    }
    // And the distance matrix still embeds.
    let emb = classical_mds(&graph.distance_matrix(), 2);
    assert!(emb.points.is_finite());
}

#[test]
fn agreement_tree_with_threshold_beyond_group() {
    let g = cs2013();
    let t1 = g.by_code("SDF.FPC.t1").unwrap();
    let tree = AgreementTree::build(g, &[(t1, 2)], 10);
    assert!(tree.is_empty());
    assert!(tree.nodes.is_empty());
    assert!(tree.knowledge_areas(g).is_empty());
}

#[test]
fn tag_space_with_foreign_tags_ignored() {
    let g = cs2013();
    let mut store = MaterialStore::new();
    let c = store.add_course("C", "U", "I", vec![CourseLabel::Cs1], None);
    let t1 = g.by_code("SDF.FPC.t1").unwrap();
    let t2 = g.by_code("AL.BA.t1").unwrap();
    store.add_material(
        c,
        "m",
        MaterialKind::Lecture,
        "I",
        None,
        vec![],
        vec![t1, t2],
    );
    // Restrict the space to only one of the tags.
    let space = TagSpace::from_tags([t1]);
    let cm = CourseMatrix::build_with_space(&store, &[c], space);
    assert_eq!(cm.n_tags(), 1);
    assert_eq!(cm.a.sum(), 1.0);
}

#[test]
fn store_validation_catches_tampering() {
    let g = cs2013();
    let corpus = default_corpus();
    // A foreign node id (the root is not a leaf) must be rejected.
    let mut store = corpus.store.clone();
    let first_material = store.materials()[0].id;
    store.tag_material(first_material, g.root());
    assert!(store.validate(g).is_err());
}

// ---------------------------------------------------------------------------
// Fault-injection round-trips: damage the corpus with the seeded injectors
// from `anchors_corpus::faults`, run the resilient pipeline, and check that
// it degrades per stage instead of panicking.
// ---------------------------------------------------------------------------

use anchors_core::{run_resilient_on, RetryPolicy, StageStatus};
use anchors_corpus::faults::{
    corrupt_json, drop_group_materials, drop_materials, duplicate_columns, strip_tags,
    zero_columns, JsonFault,
};
use anchors_factor::try_nnmf;
use anchors_materials::{export_json, import_json};

#[test]
fn resilient_pipeline_survives_emptied_pdc_group() {
    let damaged = drop_group_materials(&default_corpus(), CourseLabel::Pdc);
    let r = run_resilient_on(damaged, &RetryPolicy::default());
    // The damaged group fails with an accurate diagnosis...
    assert_eq!(r.status_of("pdc_agreement"), StageStatus::Failed);
    assert!(r.pdc_agreement.is_none());
    let diag = r.stage("pdc_agreement").unwrap().diagnostics.join("\n");
    assert!(diag.contains("no curriculum tags"), "got: {diag}");
    // ...while every untouched group still completes cleanly.
    assert_eq!(r.status_of("cs1_agreement"), StageStatus::Ok);
    assert_eq!(r.status_of("cs1_flavors"), StageStatus::Ok);
    assert_eq!(r.status_of("ds_agreement"), StageStatus::Ok);
    assert_eq!(r.status_of("ds_flavors"), StageStatus::Ok);
    assert!(r.cs1_agreement.is_some() && r.ds_flavors.is_some());
    assert!(r.count(StageStatus::Ok) >= 4, "summary:\n{}", r.summary());
}

#[test]
fn resilient_pipeline_survives_emptied_cs1_group() {
    let damaged = drop_group_materials(&default_corpus(), CourseLabel::Cs1);
    let r = run_resilient_on(damaged, &RetryPolicy::default());
    assert_eq!(r.status_of("cs1_agreement"), StageStatus::Failed);
    assert_eq!(r.status_of("cs1_flavors"), StageStatus::Failed);
    assert!(r.cs1_flavors.is_none());
    // DS and PDC analyses are unaffected.
    assert_eq!(r.status_of("ds_agreement"), StageStatus::Ok);
    assert_eq!(r.status_of("pdc_agreement"), StageStatus::Ok);
    assert!(r.ds_agreement.is_some() && r.pdc_agreement.is_some());
}

#[test]
fn resilient_pipeline_survives_random_material_loss() {
    let damaged = drop_materials(&default_corpus(), 0.25, 17);
    let r = run_resilient_on(damaged, &RetryPolicy::default());
    assert_eq!(r.stages.len(), 7, "every stage must report an outcome");
    assert_eq!(
        r.count(StageStatus::Failed),
        0,
        "25% material loss must not kill any stage:\n{}",
        r.summary()
    );
    assert_eq!(r.cs1_agreement.as_ref().unwrap().matrix.n_courses(), 6);
}

#[test]
fn resilient_pipeline_survives_stripped_tags() {
    let damaged = strip_tags(&default_corpus(), 0.5, 23);
    let r = run_resilient_on(damaged, &RetryPolicy::default());
    assert_eq!(r.stages.len(), 7);
    assert_eq!(
        r.count(StageStatus::Failed),
        0,
        "half the tags still support every stage:\n{}",
        r.summary()
    );
    assert!(r.count(StageStatus::Ok) >= 1);
}

#[test]
fn try_nnmf_tolerates_injected_column_damage() {
    let corpus = default_corpus();
    let cm = CourseMatrix::build(&corpus.store, &corpus.cs1_group());
    for damaged in [zero_columns(&cm.a, 5, 31), duplicate_columns(&cm.a, 5, 31)] {
        let m = try_nnmf(&damaged, &NnmfConfig::paper_default(3)).expect("valid input");
        assert!(m.w.is_finite() && m.h.is_finite());
        assert!(m.loss.is_finite());
    }
    // Whereas actually-malformed input is a typed error, not a panic.
    let mut bad = cm.a.clone();
    bad.set(0, 0, f64::NAN);
    assert!(try_nnmf(&bad, &NnmfConfig::paper_default(3)).is_err());
}

#[test]
fn corrupted_portable_stores_import_as_errors() {
    let corpus = default_corpus();
    let g = cs2013();
    let json = export_json(&corpus.store, g);
    for fault in [
        JsonFault::Truncate,
        JsonFault::GarbageBytes,
        JsonFault::MangleTag,
    ] {
        let damaged = corrupt_json(&json, fault, 41);
        let res = import_json(&damaged, g);
        assert!(res.is_err(), "{fault:?} must surface as an ImportError");
    }
}

#[test]
fn mds_of_identical_points_is_stable() {
    // All-zero distance matrix: everything at one point.
    let d = Matrix::zeros(5, 5);
    let emb = classical_mds(&d, 2);
    assert!(emb.points.is_finite());
    assert!(emb.stress.abs() < 1e-12);
    let s = anchors_factor::smacof(&d, 2, 50, 1e-9, 1);
    assert!(s.points.is_finite());
}
