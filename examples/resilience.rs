//! Graceful degradation on damaged data: inject faults into the corpus
//! with `anchors_corpus::faults`, run the resilient pipeline, and read the
//! per-stage outcomes instead of crashing.
//!
//! ```sh
//! cargo run --example resilience
//! ```

use anchors_core::{run_resilient_on, try_discover_flavors, RetryPolicy, StageStatus};
use anchors_corpus::default_corpus;
use anchors_corpus::faults::{corrupt_json, drop_group_materials, strip_tags, JsonFault};
use anchors_curricula::cs2013;
use anchors_factor::{try_nnmf, NnmfConfig};
use anchors_linalg::Matrix;
use anchors_materials::{export_json, import_json, CourseLabel};

fn main() {
    let g = cs2013();

    // 1. A corpus whose PDC courses lost every material: the PDC stages
    //    fail with a diagnosis, everything else still completes.
    let damaged = drop_group_materials(&default_corpus(), CourseLabel::Pdc);
    let report = run_resilient_on(damaged, &RetryPolicy::default());
    println!("=== PDC group emptied ===");
    println!("{}\n", report.summary());
    assert!(report.pdc_agreement.is_none());
    assert!(report.cs1_flavors.is_some());

    // 2. Heavy tag loss degrades but does not kill the analysis.
    let noisy = strip_tags(&default_corpus(), 0.5, 7);
    let report = run_resilient_on(noisy, &RetryPolicy::default());
    println!("=== 50% of tags stripped ===");
    println!("{}\n", report.summary());
    assert_eq!(report.count(StageStatus::Failed), 0);

    // 3. Typed errors instead of panics on malformed input.
    let corpus = default_corpus();
    println!("=== Typed errors ===");
    let err = try_discover_flavors(&corpus.store, g, &[], 3).unwrap_err();
    println!("empty group      -> {err}");
    let mut bad = Matrix::zeros(4, 4);
    bad.set(1, 2, f64::NAN);
    let err = try_nnmf(&bad, &NnmfConfig::paper_default(2)).unwrap_err();
    println!("NaN in matrix    -> {err}");

    // 4. The NNMF divergence guard: random restarts overflow on this
    //    matrix, and the solver recovers via deterministic NNDSVD.
    let extreme = Matrix::full(8, 10, 6e153);
    let model = try_nnmf(&extreme, &NnmfConfig::paper_default(1)).expect("recovered");
    println!(
        "extreme input    -> loss {:.3e}, recovery {:?}",
        model.loss, model.recovery
    );

    // 5. Corrupted portable stores import as errors, never panics.
    println!("=== Corrupted JSON ===");
    let json = export_json(&corpus.store, g);
    for fault in [
        JsonFault::Truncate,
        JsonFault::GarbageBytes,
        JsonFault::MangleTag,
    ] {
        match import_json(&corrupt_json(&json, fault, 3), g) {
            Ok(_) => println!("{fault:?} -> imported (unexpected)"),
            Err(e) => println!("{fault:?} -> {e}"),
        }
    }
}
