//! The §5.2 recommendation for type 1 Data Structures courses, executed for
//! real: a list-scheduling simulator over parallel task graphs, with
//! topological sort and critical-path metrics.
//!
//! ```sh
//! cargo run --example task_scheduling
//! ```

use anchors_sched::{
    divide_and_conquer, dp_wavefront, fork_join, graham_bounds, layered_dag, list_schedule,
    Priority,
};
use anchors_viz::{svg_gantt, GanttBar};

fn main() {
    let workloads = [
        ("fork-join (32 x 1.0)", fork_join(32, 1.0, 0.2)),
        ("divide & conquer depth 6", divide_and_conquer(6, 2.0, 0.5)),
        ("DP wavefront 24x24", dp_wavefront(24, 1.0)),
        (
            "random layered 8x12",
            layered_dag(8, 12, 0.3, 0.5..=4.0, 11),
        ),
    ];

    for (name, g) in &workloads {
        let order = g.topological_sort().expect("DAG");
        let span = g.span().unwrap();
        println!("\n{name}");
        println!(
            "  {} tasks, {} edges; topological order valid: {}",
            g.len(),
            g.edge_count(),
            g.is_topological_order(&order)
        );
        println!(
            "  work = {:.1}, span (critical path) = {:.1}, average parallelism = {:.2}",
            g.work(),
            span,
            g.average_parallelism().unwrap()
        );
        let profile = g.level_profile().unwrap();
        println!(
            "  level profile (width per dependency level): {:?}",
            &profile[..profile.len().min(12)]
        );

        println!("  makespan by processor count (critical-path priority vs FIFO):");
        println!("    m    CP-list    FIFO-list   lower-bound   Graham-upper");
        for m in [1usize, 2, 4, 8, 16] {
            let cp = list_schedule(g, m, Priority::CriticalPath);
            let ff = list_schedule(g, m, Priority::Fifo);
            cp.validate(g).expect("valid schedule");
            let (lo, hi) = graham_bounds(g, m);
            println!(
                "    {m:<4} {:<10.2} {:<11.2} {:<13.2} {:.2}",
                cp.makespan, ff.makespan, lo, hi
            );
        }
    }

    // Render the last workload's 4-processor schedule as a Gantt chart.
    let (_, g) = &workloads[workloads.len() - 1];
    let s = list_schedule(g, 4, Priority::CriticalPath);
    let bars: Vec<GanttBar> = s
        .placements
        .iter()
        .map(|p| GanttBar {
            label: g.name(p.task).to_string(),
            lane: p.proc,
            start: p.start,
            end: p.finish,
            group: p.task.index() % 8,
        })
        .collect();
    let svg = svg_gantt(
        &bars,
        "List schedule (critical-path priority, 4 processors)",
    );
    let path = std::env::temp_dir().join("task_schedule_gantt.svg");
    std::fs::write(&path, svg).expect("write gantt");
    println!(
        "
Gantt chart written to {}",
        path.display()
    );
}
