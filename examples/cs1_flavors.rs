//! Discovering the flavors of CS1 (§4.3–4.4 of the paper).
//!
//! Builds the course×tag matrix for the six CS1 courses, measures
//! agreement, scans k ∈ {2,3,4} with the overfit diagnostic, and interprets
//! the chosen decomposition.
//!
//! ```sh
//! cargo run --example cs1_flavors
//! ```

use anchors_core::{discover_flavors_auto, AgreementAnalysis};
use anchors_corpus::default_corpus;
use anchors_curricula::cs2013;

fn main() {
    let corpus = default_corpus();
    let g = cs2013();
    let cs1 = corpus.cs1_group();

    // --- Agreement (Figure 3a / 4).
    let agreement = AgreementAnalysis::run(&corpus.store, g, "CS1", &cs1);
    println!("{}", agreement.summary());
    println!(
        "agreement@2 spans knowledge areas: {}",
        agreement.spanned_kas(g, 2).join(", ")
    );
    println!(
        "agreement@4 collapses to: {}",
        agreement.spanned_kas(g, 4).join(", ")
    );
    for (ku, n) in agreement.tree(4).knowledge_units(g) {
        println!(
            "  {:<10} {:<44} {n} agreed items",
            g.node(ku).code,
            g.node(ku).label
        );
    }

    // --- Flavor discovery with automatic k selection (§4.4). The entry
    // point picks the NNMF storage backend from the matrix density (sparse
    // course matrices are fitted in CSR with identical results) and records
    // the choice in the diagnostics.
    let (fm, diags) = discover_flavors_auto(&corpus.store, g, &cs1, 2..=4);
    println!(
        "\nbackend: {} (density {:.3}, threshold {})",
        fm.diagnostics.backend,
        fm.diagnostics.density,
        anchors_core::SPARSE_DENSITY_THRESHOLD
    );
    println!("\nk-scan:");
    for d in &diags {
        println!(
            "  k={}  loss={:<8.2} duplicate-dim={:.3} separation={:.3}",
            d.k, d.loss, d.duplicate_score, d.separation
        );
    }
    println!("selected k = {}", fm.k());

    println!("\ncourse -> type mixture:");
    for (i, &cid) in fm.matrix.courses.iter().enumerate() {
        let mix: Vec<String> = fm.mixture_of(i).iter().map(|v| format!("{v:.2}")).collect();
        println!(
            "  {:<68} [{}]",
            corpus.store.course(cid).name,
            mix.join(", ")
        );
    }
    println!("\ntype profiles (top knowledge units):");
    for t in &fm.types {
        println!("  type {}: {}", t.index + 1, t.top_kus(4).join(", "));
    }
}
