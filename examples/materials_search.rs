//! The CS Materials search workflow (§3.1.2): query materials by topic and
//! facets, build the similarity graph over the results, and lay it out in
//! 2D with MDS — "more similar materials are naturally clustered together".
//!
//! ```sh
//! cargo run --example materials_search
//! ```

use anchors_corpus::default_corpus;
use anchors_curricula::cs2013;
use anchors_factor::smacof;
use anchors_materials::{search, Query, SimilarityGraph};
use anchors_viz::{svg_scatter, ScatterPoint};

fn main() {
    let corpus = default_corpus();
    let g = cs2013();

    // An instructor looks for assignments about graph traversal, in Java.
    let gt = g.by_code("DS.GT").expect("graphs & trees KU");
    let tags: Vec<_> = g.leaves_under(gt).into_iter().take(6).collect();
    let query = Query::tags(tags.iter().copied())
        .in_language("Java")
        .limit(10);
    let hits = search(&corpus.store, g, &query);

    println!(
        "query: graph/tree topics, language=Java → {} hits",
        hits.len()
    );
    for h in &hits {
        let m = corpus.store.material(h.material);
        println!(
            "  {:<36} score {:.2} exact {}  [{}]",
            m.name, h.score, h.exact_matches, m.author
        );
    }

    // Similarity graph over query + results, then 2D MDS layout.
    let result_ids: Vec<_> = hits.iter().map(|h| h.material).collect();
    let graph = SimilarityGraph::build(&corpus.store, &tags, &result_ids);
    let strong = graph.edges(0.4);
    println!(
        "\nsimilarity graph: {} vertices, {} edges with similarity >= 0.4",
        graph.len(),
        strong.len()
    );

    let emb = smacof(&graph.distance_matrix(), 2, 300, 1e-9, 7);
    println!(
        "MDS stress: {:.4} ({} iterations)",
        emb.stress, emb.iterations
    );
    let points: Vec<ScatterPoint> = graph
        .vertices
        .iter()
        .enumerate()
        .map(|(i, v)| ScatterPoint {
            x: emb.points.get(i, 0),
            y: emb.points.get(i, 1),
            label: match v {
                anchors_materials::Vertex::Query => "QUERY".to_string(),
                anchors_materials::Vertex::Material(m) => corpus.store.material(*m).name.clone(),
            },
            group: usize::from(!matches!(v, anchors_materials::Vertex::Query)),
        })
        .collect();
    let svg = svg_scatter(&points, "Search results embedded by tag similarity (MDS)");
    let path = std::env::temp_dir().join("materials_search_mds.svg");
    std::fs::write(&path, svg).expect("write svg");
    println!("layout written to {}", path.display());
}
