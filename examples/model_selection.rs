//! Choosing the number of course types `k` (§4.4 of the paper, with both
//! the paper's duplicate-dimension heuristic and consensus clustering).
//!
//! ```sh
//! cargo run --release --example model_selection
//! ```

use anchors_corpus::default_corpus;
use anchors_factor::{
    consensus_scan, select_rank, select_rank_by_consensus, try_rank_scan, NnmfConfig,
    DUPLICATE_THRESHOLD,
};
use anchors_materials::CourseMatrix;

fn main() {
    let corpus = default_corpus();
    let groups = [
        ("CS1", corpus.cs1_group()),
        ("DS+Algo", corpus.ds_and_algo_group()),
        ("all courses", corpus.all().to_vec()),
    ];
    for (name, courses) in groups {
        let a = CourseMatrix::build(&corpus.store, &courses).a;
        println!(
            "\n=== {name} ({} courses x {} tags) ===",
            a.rows(),
            a.cols()
        );

        // The paper's §4.4 inspection: loss curve + duplicate dimensions.
        let base = NnmfConfig::paper_default(2);
        let scan = try_rank_scan(&a, 2..=5.min(a.rows()), &base).expect("rank scan");
        println!("k   loss      rel.err  dup-score  separation");
        for (d, _) in &scan {
            println!(
                "{}   {:<9.2} {:<8.3} {:<10.3} {:.3}",
                d.k, d.loss, d.relative_error, d.duplicate_score, d.separation
            );
        }
        let k_dup = select_rank(&scan, DUPLICATE_THRESHOLD);

        // Consensus clustering (Brunet-style stability).
        let cons = consensus_scan(&a, 2..=5.min(a.rows()), 12, &base);
        println!("k   dispersion  cophenetic");
        for s in &cons {
            println!("{}   {:<11.3} {:.3}", s.k, s.dispersion, s.cophenetic);
        }
        let k_cons = select_rank_by_consensus(&cons);

        println!("selected k: duplicate-heuristic = {k_dup}, consensus = {k_cons}");
    }
}
