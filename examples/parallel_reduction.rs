//! The §5.2 recommendation for CS1 type 2, executed for real: the order of
//! operations in a reduction matters for floating point but not for
//! integers.
//!
//! Sums the same data sequentially and with a rayon parallel reduction and
//! compares the results — the classroom activity the recommender proposes,
//! as actual runnable PDC content.
//!
//! ```sh
//! cargo run --release --example parallel_reduction
//! ```

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;

fn main() {
    let n = 10_000_000;
    let mut rng = StdRng::seed_from_u64(42);
    // Mix tiny and large magnitudes so floating-point absorption is visible.
    let floats: Vec<f32> = (0..n)
        .map(|i| {
            if i % 1000 == 0 {
                rng.gen_range(1.0e6..2.0e6)
            } else {
                rng.gen_range(0.0..1.0)
            }
        })
        .collect();
    let ints: Vec<i64> = floats.iter().map(|&f| f as i64).collect();

    // Sequential left-to-right sum.
    let seq_f: f32 = floats.iter().sum();
    // Parallel tree-shaped reduction (rayon): different association order.
    let par_f: f32 = floats.par_iter().copied().reduce(|| 0.0, |a, b| a + b);
    // Chunked "4 threads" reduction: yet another order.
    let chunk_f: f32 = floats.chunks(n / 4).map(|c| c.iter().sum::<f32>()).sum();
    // Kahan-compensated sum as the accurate reference.
    let kahan = {
        let (mut s, mut c) = (0.0f64, 0.0f64);
        for &x in &floats {
            let y = x as f64 - c;
            let t = s + y;
            c = (t - s) - y;
            s = t;
        }
        s
    };

    println!("f32 sums of the same {n} values:");
    println!("  sequential left-to-right : {seq_f:.1}");
    println!("  rayon tree reduction     : {par_f:.1}");
    println!("  4-chunk reduction        : {chunk_f:.1}");
    println!("  f64 Kahan reference      : {kahan:.1}");
    println!(
        "  seq vs parallel drift    : {} ulps-level difference -> {}",
        (seq_f - par_f).abs(),
        if seq_f == par_f {
            "identical (lucky)"
        } else {
            "DIFFERENT: order of operations matters for floats"
        }
    );

    let seq_i: i64 = ints.iter().sum();
    let par_i: i64 = ints.par_iter().copied().reduce(|| 0, |a, b| a + b);
    println!("\ni64 sums of the same values:");
    println!("  sequential               : {seq_i}");
    println!("  rayon tree reduction     : {par_i}");
    assert_eq!(seq_i, par_i, "integer addition is associative");
    println!("  identical: integer reduction order never matters");
}
