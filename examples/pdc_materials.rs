//! The paper's future work, working: recommend concrete PDC materials
//! (Peachy-Parallel / PDC-Unplugged / Nifty style) for each course, scored
//! by how well each material's anchors are already covered.
//!
//! ```sh
//! cargo run --example pdc_materials
//! ```

use anchors_core::shortlist_materials;
use anchors_corpus::default_corpus;
use anchors_curricula::{cs2013, pdc12};
use anchors_materials::CourseLabel;

fn main() {
    let corpus = default_corpus();
    let cs = cs2013();
    let pdc = pdc12();

    for &cid in corpus.all() {
        let course = corpus.store.course(cid);
        if !(course.has_label(CourseLabel::Cs1)
            || course.has_label(CourseLabel::DataStructures)
            || course.has_label(CourseLabel::Algorithms))
        {
            continue;
        }
        println!(
            "\n{} [{}]",
            course.name,
            course.language.as_deref().unwrap_or("-")
        );
        for m in shortlist_materials(&corpus.store, cs, pdc, cid, 4) {
            let mat = m.material();
            println!(
                "  {:.2} {} ({:?}, {:?}{})",
                m.score,
                mat.name,
                mat.source,
                mat.kind,
                if m.language_fit {
                    ""
                } else {
                    ", language mismatch"
                }
            );
            let anchors: Vec<String> = mat
                .anchors
                .iter()
                .map(|&ku| cs.node(ku).code.clone())
                .collect();
            println!("        anchors: {}", anchors.join(", "));
        }
    }
}
