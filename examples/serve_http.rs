//! Serve a fitted model over HTTP: fit once, publish to a registry,
//! start the pure-std HTTP front end, and exercise every endpoint from
//! a client — including a hot reload to a newer model version, with
//! zero downtime.
//!
//! ```sh
//! cargo run --example serve_http
//! ```

use anchors_corpus::default_corpus;
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{try_nnmf, NnmfConfig};
use anchors_linalg::Backend;
use anchors_materials::CourseMatrix;
use anchors_serve::{FittedModel, Registry};
use anchors_server::{AppState, Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cs = cs2013();
    let pdc = pdc12();

    // ── Fit and publish v1 ───────────────────────────────────────────
    let corpus = default_corpus();
    let cm = CourseMatrix::build(&corpus.store, &corpus.courses);
    let model = try_nnmf(&cm.a, &NnmfConfig::anls(3)).expect("fit");
    let artifact = FittedModel::new("corpus-anls-k3", cs, &cm.tag_space, &model, Backend::Dense)
        .expect("artifact");
    let dir = std::env::temp_dir().join(format!("anchors-http-example-{}", std::process::id()));
    let registry = Registry::open(&dir).expect("open registry");
    registry.save(&artifact).expect("save v1");

    // ── Start the server ─────────────────────────────────────────────
    // Port 0 picks a free port; a deployment would pass ":8080". Four
    // workers behind a bounded queue — overflow is shed with 503.
    let state = Arc::new(AppState::from_registry(registry, cs, pdc).expect("state"));
    let handle = Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default())
        .expect("start server");
    println!("=== Serving ===");
    println!("listening on http://{}", handle.addr());

    let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).expect("connect");

    // ── Health and a recommendation ──────────────────────────────────
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    println!(
        "\nGET /v1/healthz -> {}\n  {}",
        health.status,
        health.text()
    );

    let body = br#"{"name":"CS 201: Data Structures with Parallelism",
                    "labels":["DS"],
                    "tags":["AL.BA.t1","AL.BA.t2","AL.FDSA.t1","SDF.FDS.t1","PD.PF.t1","PD.CC.t1"]}"#;
    let rec = client
        .request("POST", "/v1/recommend", body)
        .expect("recommend");
    let text = rec.text();
    println!("POST /v1/recommend -> {}", rec.status);
    println!("  flavors: {}", slice_after(&text, "\"flavors\""));
    println!("  mixture: {}", slice_after(&text, "\"mixture\""));

    // ── A batch: many queries, one NNLS solve ────────────────────────
    let batch = br#"{"queries":[
        {"name":"a","tags":["AL.BA.t1","AL.BA.t2"]},
        {"name":"b","tags":["SDF.FDS.t1","SDF.FDS.t2"]},
        {"name":"c","tags":["PD.PF.t1"]}]}"#;
    let resp = client.request("POST", "/v1/batch", batch).expect("batch");
    println!(
        "POST /v1/batch -> {} ({} answers in one solve)",
        resp.status,
        resp.text().matches("\"loadings\"").count()
    );

    // ── Hot reload: publish v2, swap atomically, keep serving ────────
    state.registry.save(&artifact).expect("save v2");
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    println!("POST /v1/reload -> {}\n  {}", reload.status, reload.text());
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    println!(
        "GET /v1/healthz -> now {}",
        slice_after(&health.text(), "\"version\"")
    );

    // ── Metrics ──────────────────────────────────────────────────────
    let metrics = client.request("GET", "/v1/metrics", b"").expect("metrics");
    println!("\nGET /v1/metrics ->");
    for line in metrics
        .text()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(6)
    {
        println!("  {line}");
    }

    drop(client);
    handle.shutdown(); // drains in-flight requests before returning
    println!("\nserver drained and stopped");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The JSON value following `key`, up to the end of its array/number —
/// just enough for example output, not a JSON parser.
fn slice_after(text: &str, key: &str) -> String {
    text.split(key)
        .nth(1)
        .map(|rest| {
            let rest = rest.trim_start_matches(':');
            match rest.as_bytes().first() {
                Some(b'[') => format!("[{}", rest[1..].split(']').next().unwrap_or("")) + "]",
                _ => rest.split([',', '}']).next().unwrap_or("").to_string(),
            }
        })
        .unwrap_or_default()
}
