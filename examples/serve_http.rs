//! Serve a fitted model over HTTP: fit once, publish to a registry,
//! start the pure-std HTTP front end, and exercise every endpoint from
//! a client — including the raw-text front door (`/v1/classify_text`)
//! and a hot reload to a newer model version, with zero downtime.
//!
//! ```sh
//! cargo run --example serve_http
//! ```
//!
//! Artifacts are written in JSON by default; set
//! `ANCHORS_ARTIFACT_FORMAT=bin` to publish (and serve) the zero-copy
//! binary layout instead — the factor model and the text model both
//! honor it, and a registry reads back whichever formats it finds.

use anchors_corpus::default_corpus;
use anchors_corpus::text::document_for_tags;
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{try_nnmf, NnmfConfig};
use anchors_linalg::Backend;
use anchors_materials::CourseMatrix;
use anchors_serve::{FittedModel, Registry};
use anchors_server::{AppState, Client, Server, ServerConfig, TextDoor};
use anchors_text::{train, TextExample, TextModel, TrainConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cs = cs2013();
    let pdc = pdc12();

    // ── Fit and publish v1 ───────────────────────────────────────────
    let corpus = default_corpus();
    let cm = CourseMatrix::build(&corpus.store, &corpus.courses);
    let model = try_nnmf(&cm.a, &NnmfConfig::anls(3)).expect("fit");
    let artifact = FittedModel::new("corpus-anls-k3", cs, &cm.tag_space, &model, Backend::Dense)
        .expect("artifact");
    let dir = std::env::temp_dir().join(format!("anchors-http-example-{}", std::process::id()));
    let registry = Registry::open(&dir).expect("open registry");
    registry.save(&artifact).expect("save v1");

    // ── Train and publish the text front door ────────────────────────
    // A classifier over a slice of the factor model's own tag space
    // (predicted tags must fold in), trained on synthetic per-tag
    // documents. It shares the registry directory: filename stems keep
    // the `text-v*` and `model-v*` sequences independent.
    let text_tags: Vec<String> = artifact
        .tag_codes
        .iter()
        .step_by(4)
        .take(8)
        .cloned()
        .collect();
    let mut docs = Vec::new();
    for (t, code) in text_tags.iter().enumerate() {
        for d in 0..12 {
            docs.push(TextExample {
                text: document_for_tags(
                    std::slice::from_ref(code),
                    60,
                    0.35,
                    0xD0C ^ (t * 12 + d) as u64,
                ),
                tag_codes: vec![code.clone()],
            });
        }
    }
    let text_model = train(
        "syllabus-text",
        cs,
        &text_tags,
        &docs,
        &TrainConfig::default(),
    )
    .expect("train text model");
    println!(
        "trained text model: {} tags, micro-F1 {:.3}",
        text_tags.len(),
        text_model.train_f1
    );
    let text_registry: Registry<TextModel> = Registry::open(&dir).expect("open text registry");
    text_registry.save(&text_model).expect("save text v1");

    // ── Start the server ─────────────────────────────────────────────
    // Port 0 picks a free port; a deployment would pass ":8080". Four
    // workers behind a bounded queue — overflow is shed with 503.
    let door = TextDoor::open(Registry::open(&dir).expect("door registry"), cs);
    // ANCHORS_SERVE_PRECISION=f32 opts into the reduced-precision fold-in
    // path (reported by /v1/healthz and preserved across /v1/reload).
    let precision = anchors_server::precision_from_env();
    let state = Arc::new(
        AppState::from_registry_with_precision(registry, cs, pdc, precision)
            .expect("state")
            .with_text(door),
    );
    let handle = Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default())
        .expect("start server");
    println!("=== Serving ===");
    println!("listening on http://{}", handle.addr());

    let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).expect("connect");

    // ── Health and a recommendation ──────────────────────────────────
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    println!(
        "\nGET /v1/healthz -> {}\n  {}",
        health.status,
        health.text()
    );

    let body = br#"{"name":"CS 201: Data Structures with Parallelism",
                    "labels":["DS"],
                    "tags":["AL.BA.t1","AL.BA.t2","AL.FDSA.t1","SDF.FDS.t1","PD.PF.t1","PD.CC.t1"]}"#;
    let rec = client
        .request("POST", "/v1/recommend", body)
        .expect("recommend");
    let text = rec.text();
    println!("POST /v1/recommend -> {}", rec.status);
    println!("  flavors: {}", slice_after(&text, "\"flavors\""));
    println!("  mixture: {}", slice_after(&text, "\"mixture\""));

    // ── Raw text in, anchors out ─────────────────────────────────────
    // One request runs the whole front door: classify the text into
    // guideline tags, fold the predicted tags into the factor space,
    // and recommend anchors — no hand-curated tag list anywhere.
    let syllabus = document_for_tags(&text_tags[..2], 60, 0.35, 42);
    let resp = client
        .classify_text("CS 350: Syllabus Drop-Box", &["DS"], &syllabus)
        .expect("classify_text");
    let text = resp.text();
    println!("POST /v1/classify_text -> {}", resp.status);
    println!(
        "  tags predicted: {} of {} (top: {})",
        text.matches("\"predicted\":true").count(),
        text_tags.len(),
        slice_after(&text, "\"code\"")
    );
    println!("  mixture: {}", slice_after(&text, "\"mixture\""));

    // ── A batch: many queries, one NNLS solve ────────────────────────
    let batch = br#"{"queries":[
        {"name":"a","tags":["AL.BA.t1","AL.BA.t2"]},
        {"name":"b","tags":["SDF.FDS.t1","SDF.FDS.t2"]},
        {"name":"c","tags":["PD.PF.t1"]}]}"#;
    let resp = client.request("POST", "/v1/batch", batch).expect("batch");
    println!(
        "POST /v1/batch -> {} ({} answers in one solve)",
        resp.status,
        resp.text().matches("\"loadings\"").count()
    );

    // ── Hot reload: publish v2, swap atomically, keep serving ────────
    state.registry.save(&artifact).expect("save v2");
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    println!("POST /v1/reload -> {}\n  {}", reload.status, reload.text());
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    println!(
        "GET /v1/healthz -> now {}",
        slice_after(&health.text(), "\"version\"")
    );

    // ── Metrics ──────────────────────────────────────────────────────
    let metrics = client.request("GET", "/v1/metrics", b"").expect("metrics");
    println!("\nGET /v1/metrics ->");
    for line in metrics
        .text()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(6)
    {
        println!("  {line}");
    }

    drop(client);
    handle.shutdown(); // drains in-flight requests before returning
    println!("\nserver drained and stopped");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The JSON value following `key`, up to the end of its array/number —
/// just enough for example output, not a JSON parser.
fn slice_after(text: &str, key: &str) -> String {
    text.split(key)
        .nth(1)
        .map(|rest| {
            let rest = rest.trim_start_matches(':');
            match rest.as_bytes().first() {
                Some(b'[') => format!("[{}", rest[1..].split(']').next().unwrap_or("")) + "]",
                _ => rest.split([',', '}']).next().unwrap_or("").to_string(),
            }
        })
        .unwrap_or_default()
}
