//! The paper's actionable output: where can PDC content anchor in *your*
//! course? (§5.2)
//!
//! Classifies each CS1/DS course of the corpus into flavors and prints the
//! PDC-12 topics that fit, with the CS2013 knowledge units they anchor at.
//!
//! ```sh
//! cargo run --example anchor_points
//! ```

use anchors_core::{classify_course, recommend_for_course};
use anchors_corpus::default_corpus;
use anchors_curricula::{cs2013, pdc12};
use anchors_materials::CourseLabel;

fn main() {
    let corpus = default_corpus();
    let cs = cs2013();
    let pdc = pdc12();

    for &cid in corpus.all() {
        let course = corpus.store.course(cid);
        if !(course.has_label(CourseLabel::Cs1)
            || course.has_label(CourseLabel::DataStructures)
            || course.has_label(CourseLabel::Algorithms))
        {
            continue;
        }
        let flavors = classify_course(&corpus.store, cs, cid);
        println!("\n{}", course.name);
        println!("  detected flavors: {flavors:?}");
        for rec in recommend_for_course(&corpus.store, cs, pdc, cid) {
            println!("  ► {}", rec.title);
            println!("    why   : {}", rec.rationale);
            println!("    do    : {}", rec.activity);
            for topic in &rec.pdc_topics {
                let node = pdc.node(pdc.by_code(topic).expect("resolved topic"));
                let bloom = node.bloom.map(|b| format!("{b:?}")).unwrap_or_default();
                println!("    PDC12 : {topic} [{bloom}] {}", node.label);
            }
            for anchor in &rec.anchors {
                let node = cs.node(cs.by_code(anchor).expect("resolved anchor"));
                println!("    anchor: {anchor} ({})", node.label);
            }
        }
    }
}
