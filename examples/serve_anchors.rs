//! Serve a fitted model: fit once, persist it to a versioned registry,
//! load it back as a fresh process would, and answer queries about a
//! course the model never saw — flavor mixture, anchor-point
//! recommendations, and the nearest classified materials.
//!
//! ```sh
//! cargo run --example serve_anchors
//! ```

use anchors_corpus::default_corpus;
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{try_nnmf, NnmfConfig};
use anchors_linalg::Backend;
use anchors_materials::{CourseLabel, CourseMatrix};
use anchors_serve::{CourseQuery, FittedModel, QueryEngine, Registry};

fn main() {
    let cs = cs2013();
    let pdc = pdc12();

    // ── Fit: the offline training job ────────────────────────────────
    let corpus = default_corpus();
    let cm = CourseMatrix::build(&corpus.store, &corpus.courses);
    let model = try_nnmf(&cm.a, &NnmfConfig::anls(3)).expect("fit");
    println!("=== Fit ===");
    println!(
        "k = 3 over {} courses x {} tags, loss {:.4}, {} iterations",
        cm.a.rows(),
        cm.a.cols(),
        model.loss,
        model.iterations
    );

    // ── Save: package and version the artifact ───────────────────────
    let artifact = FittedModel::new("corpus-anls-k3", cs, &cm.tag_space, &model, Backend::Dense)
        .expect("artifact");
    let dir = std::env::temp_dir().join(format!("anchors-serve-example-{}", std::process::id()));
    let registry = Registry::open(&dir).expect("open registry");
    let version = registry.save(&artifact).expect("save");
    println!("\n=== Save ===");
    println!(
        "model-v{version}.json written to {}",
        registry.dir().display()
    );

    // ── Load: what a freshly started server does ─────────────────────
    // A new Registry handle over the same directory, as if in another
    // process. The artifact carries a fingerprint of the ontology it was
    // trained against, so a stale model fails closed instead of serving
    // against renumbered tags.
    let (loaded_version, loaded) = Registry::open(&dir)
        .expect("reopen registry")
        .load_latest()
        .expect("load latest");
    assert_eq!(loaded.w, artifact.w, "persistence is bitwise");
    let engine = QueryEngine::new(loaded, cs, pdc)
        .expect("fingerprint and tag codes check out")
        .with_store(corpus.store.clone());
    println!("\n=== Load ===");
    println!(
        "serving model-v{loaded_version} ({} tags, k = {})",
        engine.n_tags(),
        engine.k()
    );

    // ── Query: classify an unseen course ─────────────────────────────
    // A data-structures course with a parallel slant, described only by
    // guideline tag codes — it was never in the training corpus.
    let mut codes: Vec<String> = Vec::new();
    for t in 1..=6 {
        codes.push(format!("AL.BA.t{t}"));
        codes.push(format!("AL.FDSA.t{t}"));
    }
    for t in 1..=5 {
        codes.push(format!("SDF.FDS.t{t}"));
    }
    codes.extend(["PD.PF.t1".to_string(), "PD.CC.t1".to_string()]);
    let query = CourseQuery::new(
        "CS 201: Data Structures with Parallelism",
        vec![CourseLabel::DataStructures],
        codes,
    );
    let resp = engine.query(&query).expect("query");

    println!("\n=== Query: {} ===", resp.name);
    print!("flavor mixture: [");
    for (t, share) in resp.mixture.iter().enumerate() {
        if t > 0 {
            print!(", ");
        }
        print!("type {t}: {:.0}%", share * 100.0);
    }
    println!("]");
    println!("detected flavors: {:?}", resp.flavors);
    println!("anchor-point recommendations:");
    for rec in &resp.recommendations {
        println!(
            "  - [{:?}] {} (anchors at {})",
            rec.flavor,
            rec.title,
            rec.anchors.join(", ")
        );
    }
    println!("nearest classified materials:");
    for hit in &resp.nearest {
        println!(
            "  - {} (score {:.2}, {} exact tag matches)",
            corpus.store.material(hit.material).name,
            hit.score,
            hit.exact_matches
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
