//! Quickstart: run the paper's whole analysis in a few lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use anchors_core::run_full_analysis;
use anchors_corpus::DEFAULT_SEED;

fn main() {
    // One call computes everything §4–§5 of the paper describes: the
    // 20-course corpus, the k=4 all-courses NNMF, CS1/DS agreement and
    // flavors, PDC agreement, and the per-course recommendations. Each
    // NNMF picks its storage backend (dense or CSR) from matrix density;
    // the choice is recorded in the flavor diagnostics.
    let report = run_full_analysis(DEFAULT_SEED);

    let d = &report.all_courses_model.diagnostics;
    println!(
        "all-courses NNMF backend: {} (matrix density {:.3})",
        d.backend, d.density
    );

    println!("{}", report.cs1_agreement.summary());
    println!("{}", report.ds_agreement.summary());
    println!("{}", report.pdc_agreement.summary());

    println!("\nCS1 flavors (k = 3):");
    for t in &report.cs1_flavors.types {
        println!(
            "  type {}: dominated by {}",
            t.index + 1,
            t.top_kus(3).join(", ")
        );
    }

    println!("\nCourse types discovered over the whole corpus (k = 4):");
    for (i, &cid) in report.all_courses_model.matrix.courses.iter().enumerate() {
        println!(
            "  dim {} <- {}",
            report.all_courses_model.assignments[i] + 1,
            report.corpus.store.course(cid).name
        );
    }

    let total_recs: usize = report.recommendations.iter().map(|(_, r)| r.len()).sum();
    println!("\n{total_recs} PDC anchor-point recommendations produced.");
    if let Some((cid, recs)) = report
        .recommendations
        .iter()
        .find(|(_, recs)| !recs.is_empty())
    {
        let c = report.corpus.store.course(*cid);
        println!("e.g. for {}:", c.name);
        for r in recs {
            println!("  - {} (anchored at {})", r.title, r.anchors.join(", "));
        }
    }
}
