//! Offline verification stub for `rayon`: "parallel" iterators run
//! sequentially. Only the combinators this workspace uses are provided.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

/// Sequential stand-in for rayon's parallel iterator chains.
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

pub fn current_num_threads() -> usize {
    1
}

impl<'a, T: Copy + 'a, I: Iterator<Item = &'a T>> Par<I> {
    pub fn copied(self) -> Par<std::iter::Copied<I>> {
        Par(self.0.copied())
    }
}

pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size.max(1)))
    }
}

pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Par<Self::Iter>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Par<Self::Iter> {
        Par(self.as_slice().iter())
    }
}

pub struct ThreadPoolBuilder {
    _threads: usize,
}

impl ThreadPoolBuilder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        ThreadPoolBuilder { _threads: 0 }
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, std::io::Error> {
        Ok(ThreadPool)
    }
}

pub struct ThreadPool;

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}
