//! Offline verification stub for `criterion` (empty — bench targets are
//! skipped under the offline check harness).
