//! Offline verification stub for `serde` — traits are blanket-implemented
//! for every type and the derives expand to nothing, so bounds always hold.
//! Serialization does nothing; used only for local typechecking.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;

    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
