//! Offline verification stub for `proptest` (empty — property-test targets
//! are skipped under the offline check harness).
