//! Offline verification stub for `rand` 0.8 — functional splitmix64-based
//! subset of the API surface this workspace uses. NOT the real crate: the
//! value streams differ from `StdRng`, so seed-calibrated tests will not
//! reproduce upstream numbers. Used only for local typechecking/smoke runs.

pub mod rngs {
    /// Stand-in for `rand::rngs::StdRng` (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Types samplable by `Rng::gen`.
pub trait SampleStandard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types `Rng::gen_range` can sample; the blanket range impls below are
/// generic over one `T` so integer-literal inference works like real rand.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi - lo) as u64 + u64::from(inclusive);
                assert!(span > 0, "empty range");
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, _incl: bool, rng: &mut R) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with `Rng::gen_range`; `T` is the sampled output type so
/// inference can flow from the call site back into the range literal.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod seq {
    use crate::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in (1..idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}
