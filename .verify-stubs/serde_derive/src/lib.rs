//! Empty derive macros for the offline `serde` stub: the traits are blanket
//! implemented in the stub `serde` crate, so the derives emit nothing. The
//! `serde` helper attribute is declared so `#[serde(...)]` field/variant
//! attributes parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
