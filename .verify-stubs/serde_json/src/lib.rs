//! Offline verification stub for `serde_json`: serialization returns an
//! empty string, deserialization always errors. Only for typechecking.

use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok(String::new())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok(String::new())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(Error("serde_json stub cannot deserialize".into()))
}
