//! Offline verification stub for `parking_lot` (declared but unused in
//! source; empty stub satisfies dependency resolution).
