pub use anchors_core as core_api;
