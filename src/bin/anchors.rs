//! `anchors` — command-line interface to the pdc-anchors analysis system.
//!
//! ```text
//! anchors courses                      list the corpus roster
//! anchors summary                      agreement summaries per course group
//! anchors report                       print the full markdown report
//! anchors audit <course-substring>     coverage audit of one course
//! anchors recommend <course-substring> PDC anchor recommendations
//! anchors materials <course-substring> PDC material shortlist
//! anchors search <code> [code...]      search materials by curriculum codes
//! ```
//!
//! The corpus seed can be overridden with `ANCHORS_SEED`.

use anchors_core::{recommend_for_course, run_full_analysis, shortlist_materials, to_markdown};
use anchors_corpus::{default_corpus, generate, GeneratedCorpus};
use anchors_curricula::Tier;
use anchors_curricula::{cs2013, pdc12};
use anchors_materials::{search, CourseId, CoverageReport, Query};

fn seed() -> u64 {
    std::env::var("ANCHORS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(anchors_corpus::DEFAULT_SEED)
}

fn find_course(corpus: &GeneratedCorpus, needle: &str) -> Option<CourseId> {
    let lower = needle.to_lowercase();
    corpus
        .all()
        .iter()
        .copied()
        .find(|&c| corpus.store.course(c).name.to_lowercase().contains(&lower))
}

fn usage() -> ! {
    eprintln!(
        "usage: anchors <courses|summary|report|audit|recommend|materials|search> [args]\n\
         see `cargo doc` or the README for details"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "courses" => {
            let corpus = default_corpus();
            for &cid in corpus.all() {
                let c = corpus.store.course(cid);
                println!(
                    "{:<72} [{}] {} tags",
                    c.name,
                    c.labels
                        .iter()
                        .map(|l| l.short())
                        .collect::<Vec<_>>()
                        .join(","),
                    corpus.store.course_tags(cid).len()
                );
            }
        }
        "summary" => {
            let r = run_full_analysis(seed());
            println!("{}", r.cs1_agreement.summary());
            println!("{}", r.ds_agreement.summary());
            println!("{}", r.pdc_agreement.summary());
        }
        "report" => {
            let r = run_full_analysis(seed());
            print!("{}", to_markdown(&r));
        }
        "audit" => {
            let needle = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let corpus = generate(seed());
            let Some(cid) = find_course(&corpus, needle) else {
                eprintln!("no course matches {needle:?}");
                std::process::exit(1);
            };
            let g = cs2013();
            println!("{}", corpus.store.course(cid).name);
            let report = CoverageReport::audit_course(&corpus.store, g, cid);
            for tier in [Tier::Core1, Tier::Core2, Tier::Elective] {
                let t = report.tier(tier);
                println!(
                    "  {:?}: {}/{} items ({:.0}%)",
                    tier,
                    t.covered,
                    t.total,
                    t.fraction() * 100.0
                );
            }
            println!("  strongest units:");
            for u in report.strongest_units(8) {
                println!(
                    "    {:<12} {:>3}/{:<3} {}",
                    g.node(u.ku).code,
                    u.covered,
                    u.total,
                    g.node(u.ku).label
                );
            }
        }
        "recommend" => {
            let needle = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let corpus = generate(seed());
            let Some(cid) = find_course(&corpus, needle) else {
                eprintln!("no course matches {needle:?}");
                std::process::exit(1);
            };
            println!("{}", corpus.store.course(cid).name);
            for r in recommend_for_course(&corpus.store, cs2013(), pdc12(), cid) {
                println!("\n[{:?}] {}", r.flavor, r.title);
                println!("  why : {}", r.rationale);
                println!("  do  : {}", r.activity);
                println!("  PDC : {}", r.pdc_topics.join(", "));
                println!("  at  : {}", r.anchors.join(", "));
            }
        }
        "materials" => {
            let needle = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let corpus = generate(seed());
            let Some(cid) = find_course(&corpus, needle) else {
                eprintln!("no course matches {needle:?}");
                std::process::exit(1);
            };
            println!("{}", corpus.store.course(cid).name);
            for m in shortlist_materials(&corpus.store, cs2013(), pdc12(), cid, 6) {
                let mat = m.material();
                println!(
                    "  {:.2} {} ({:?}{})",
                    m.score,
                    mat.name,
                    mat.source,
                    if m.language_fit {
                        ""
                    } else {
                        ", language mismatch"
                    }
                );
            }
        }
        "search" => {
            if args.len() < 2 {
                usage();
            }
            let g = cs2013();
            let corpus = generate(seed());
            let tags: Vec<_> = args[1..]
                .iter()
                .map(|code| {
                    g.by_code(code).unwrap_or_else(|| {
                        eprintln!("unknown curriculum code {code:?}");
                        std::process::exit(1);
                    })
                })
                .collect();
            let hits = search(&corpus.store, g, &Query::tags(tags).limit(15));
            for h in hits {
                let m = corpus.store.material(h.material);
                println!(
                    "  {:.2} {:<40} {:?} by {}",
                    h.score, m.name, m.kind, m.author
                );
            }
        }
        _ => usage(),
    }
}
