//! Property-based tests of the factorization layer.

use anchors_factor::*;
use anchors_linalg::{pairwise_distances, CsrMatrix, Matrix, Metric};
use proptest::prelude::*;

/// Strategy: a nonnegative matrix with at least one positive entry.
fn nonneg_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..10, 2usize..12).prop_flat_map(|(r, c)| {
        prop::collection::vec(0.0f64..3.0, r * c)
            .prop_filter("need a nonzero", |v| v.iter().any(|&x| x > 0.1))
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn small_k(m: &Matrix) -> usize {
    2.min(m.rows()).min(m.cols()).max(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nnmf_factors_nonnegative_and_loss_bounded(a in nonneg_matrix()) {
        let k = small_k(&a);
        let cfg = NnmfConfig { restarts: 2, max_iter: 60, ..NnmfConfig::paper_default(k) };
        let m = nnmf(&a, &cfg);
        prop_assert!(m.w.is_nonnegative());
        prop_assert!(m.h.is_nonnegative());
        // Loss can never exceed the all-zero factorization's loss.
        let zero_loss = 0.5 * anchors_linalg::frobenius_sq(&a);
        prop_assert!(m.loss <= zero_loss + 1e-9);
    }

    #[test]
    fn sparse_dense_nnmf_agree(
        a in nonneg_matrix(),
        solver_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        // The storage-generic solver must produce factor pairs identical to
        // ≤1e-9 (in practice bitwise) across backends, for HALS and MU
        // alike, with restarts in play. Values here are arbitrary positive
        // reals, covering the weighted (MaterialCount/LogCount) course
        // matrices as well as the binary §4.1 encoding.
        let k = small_k(&a);
        let solver = [Solver::Hals, Solver::MultiplicativeUpdate][solver_idx];
        let cfg = NnmfConfig {
            restarts: 2, max_iter: 40, solver, seed,
            ..NnmfConfig::paper_default(k)
        };
        let dm = nnmf(&a, &cfg);
        let sm = nnmf(&CsrMatrix::from_dense(&a), &cfg);
        prop_assert_eq!(dm.winning_seed, sm.winning_seed);
        prop_assert_eq!(dm.iterations, sm.iterations);
        prop_assert_eq!(dm.recovery, sm.recovery);
        prop_assert!((dm.loss - sm.loss).abs() <= 1e-9 * (1.0 + dm.loss));
        for (dv, sv) in dm.w.as_slice().iter().zip(sm.w.as_slice()) {
            prop_assert!((dv - sv).abs() <= 1e-9, "W entries differ: {dv} vs {sv}");
        }
        for (dv, sv) in dm.h.as_slice().iter().zip(sm.h.as_slice()) {
            prop_assert!((dv - sv).abs() <= 1e-9, "H entries differ: {dv} vs {sv}");
        }
    }

    #[test]
    fn sparse_dense_recovery_parity(scale_exp in 150u32..154, seed in 0u64..100) {
        // Magnitudes straddling the ‖A‖² overflow point: the small end fits
        // cleanly, the large end makes every random restart diverge so the
        // fit only succeeds through the recovery ladder (reseed + NNDSVD
        // fallback). Both backends must walk whichever path identically.
        let v = 6.0 * 10f64.powi(scale_exp as i32);
        let a = Matrix::full(6, 8, v);
        let cfg = NnmfConfig { restarts: 2, seed, ..NnmfConfig::paper_default(2) };
        let dm = try_nnmf(&a, &cfg).expect("dense recovery");
        let sm = try_nnmf(&CsrMatrix::from_dense(&a), &cfg).expect("sparse recovery");
        prop_assert_eq!(dm.recovery, sm.recovery);
        prop_assert_eq!(dm.winning_seed, sm.winning_seed);
        prop_assert_eq!(dm.w, sm.w);
        prop_assert_eq!(dm.h, sm.h);
    }

    #[test]
    fn rank1_matrix_factors_exactly(
        u in prop::collection::vec(0.1f64..2.0, 2..8),
        v in prop::collection::vec(0.1f64..2.0, 2..8),
    ) {
        let a = Matrix::from_fn(u.len(), v.len(), |i, j| u[i] * v[j]);
        let m = nnmf(&a, &NnmfConfig { max_iter: 300, ..NnmfConfig::paper_default(1) });
        prop_assert!(m.relative_error(&a) < 1e-3, "err {}", m.relative_error(&a));
    }

    #[test]
    fn pca_scores_have_zero_mean_and_bounded_variance(a in nonneg_matrix()) {
        let k = small_k(&a);
        let p = pca(&a, k);
        let scores = p.transform(&a);
        for j in 0..k {
            let col = scores.col(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-8);
        }
        let ratio_sum: f64 = p.explained_ratio.iter().sum();
        prop_assert!(ratio_sum <= 1.0 + 1e-9);
    }

    #[test]
    fn classical_mds_recovers_planar_configurations(
        pts in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 3..10),
    ) {
        let m = Matrix::from_rows(
            &pts.iter().map(|&(x, y)| vec![x, y]).collect::<Vec<_>>(),
        );
        let d = pairwise_distances(&m, Metric::Euclidean);
        let emb = classical_mds(&d, 2);
        prop_assert!(emb.stress < 1e-6, "planar distances embed exactly, stress {}", emb.stress);
    }

    #[test]
    fn kmeans_labels_in_range_and_inertia_nonneg(a in nonneg_matrix(), seed in 0u64..100) {
        let k = small_k(&a);
        let km = kmeans(&a, k, 50, seed);
        prop_assert_eq!(km.labels.len(), a.rows());
        prop_assert!(km.labels.iter().all(|&l| l < k));
        prop_assert!(km.inertia >= 0.0);
    }

    #[test]
    fn hierarchical_cut_produces_k_clusters(a in nonneg_matrix(), link_idx in 0usize..3) {
        let link = [Linkage::Single, Linkage::Complete, Linkage::Average][link_idx];
        let d = pairwise_distances(&a, Metric::Euclidean);
        let dend = hierarchical(&d, link);
        for k in 1..=a.rows() {
            let labels = dend.cut(k);
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert!(distinct.len() <= k);
            prop_assert_eq!(labels.len(), a.rows());
        }
    }

    #[test]
    fn duplicate_score_detects_self_duplication(a in nonneg_matrix()) {
        // H stacked with itself always has duplicate score 1.
        let h = a.vstack(&a);
        prop_assert!((duplicate_dimension_score(&h) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cocluster_labels_cover_rows_and_cols(a in nonneg_matrix(), seed in 0u64..50) {
        let k = 2.min(a.rows() + a.cols());
        let bc = spectral_cocluster(&a, k, seed);
        prop_assert_eq!(bc.row_labels.len(), a.rows());
        prop_assert_eq!(bc.col_labels.len(), a.cols());
        let mut ro = bc.row_order.clone();
        ro.sort_unstable();
        prop_assert_eq!(ro, (0..a.rows()).collect::<Vec<_>>());
    }
}
