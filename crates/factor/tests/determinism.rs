//! Property-based determinism suite for the outer-loop parallelism.
//!
//! The contract under test: `try_nnmf`, `try_rank_scan`, and
//! `try_consensus` produce bitwise-identical results — factors,
//! diagnostics, and recovery accounting, or the same error — whether run
//! serially or fanned out over any number of threads. Inputs include
//! fault-injected matrices (zeroed and duplicated columns via
//! `anchors-corpus::faults`) and near-overflow scalings that drive
//! restarts into divergence, so the failed-restart bookkeeping is
//! exercised, not just the happy path.

use anchors_corpus::faults::{duplicate_columns, zero_columns};
use anchors_factor::{try_consensus, try_nnmf, try_rank_scan, Init, NnmfConfig, NnmfModel, Solver};
use anchors_linalg::parallel::{set_num_threads, set_par_mode, ParMode};
use anchors_linalg::Matrix;
use proptest::prelude::*;
use std::sync::Mutex;

/// Tests in this file mutate the process-global parallelism config, so
/// they serialize on one lock (poison-tolerant: an assertion failure in
/// one case must not abort the rest of the suite).
static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// Restores the ambient (env-driven) parallelism config on drop, even
/// when an assertion fails mid-test.
struct ModeGuard;

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_par_mode(None);
        set_num_threads(None);
    }
}

/// Strategy: a noisy block matrix with optional fault injection.
fn fault_matrix() -> impl Strategy<Value = Matrix> {
    (
        2usize..5,       // row-group count
        2usize..6,       // rows per group
        3usize..8,       // cols per group
        0usize..4,       // columns to zero
        0usize..4,       // columns to duplicate
        any::<u64>(),    // fault seed
        prop::bool::ANY, // near-overflow scaling
    )
        .prop_map(|(groups, per, width, zeros, dups, seed, huge)| {
            let rows = groups * per;
            let cols = groups * width;
            let scale = if huge { 6e153 } else { 1.0 };
            let base = Matrix::from_fn(rows, cols, |i, j| {
                if i / per == j / width {
                    scale * (1.0 + ((i * 31 + j * 17) % 7) as f64 / 10.0)
                } else {
                    0.0
                }
            });
            let faulted = zero_columns(&base, zeros.min(cols - 1), seed);
            duplicate_columns(&faulted, dups.min(cols - 1), seed ^ 0x9e37)
        })
}

fn cfg(k: usize, seed: u64, solver: Solver) -> NnmfConfig {
    NnmfConfig {
        restarts: 3,
        max_iter: 40,
        solver,
        init: Init::Random,
        seed,
        ..NnmfConfig::paper_default(k)
    }
}

/// Outcome of a fallible fit, flattened to something comparable across
/// parallelism modes: full factor bits on success, the rendered error
/// otherwise (`NnmfError` carries attempt accounting in its message).
fn fingerprint(r: Result<NnmfModel, anchors_factor::NnmfError>) -> Result<FitBits, String> {
    r.map(|m| FitBits {
        w: m.w.as_slice().iter().map(|v| v.to_bits()).collect(),
        h: m.h.as_slice().iter().map(|v| v.to_bits()).collect(),
        loss: m.loss.to_bits(),
        winning_seed: m.winning_seed,
        iterations: m.iterations,
        converged: m.converged,
        failed_restarts: m.recovery.failed_restarts,
        budget_exceeded: m.recovery.budget_exceeded,
    })
    .map_err(|e| e.to_string())
}

#[derive(Debug, PartialEq, Eq)]
struct FitBits {
    w: Vec<u64>,
    h: Vec<u64>,
    loss: u64,
    winning_seed: u64,
    iterations: usize,
    converged: bool,
    failed_restarts: usize,
    budget_exceeded: usize,
}

fn thread_counts() -> Vec<usize> {
    vec![1, 2, anchors_linalg::parallel::max_threads().max(3)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nnmf_parallel_matches_serial(a in fault_matrix(), seed in any::<u64>(), hals in prop::bool::ANY) {
        let _lock = CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _guard = ModeGuard;
        let solver = if hals { Solver::Hals } else { Solver::Mu };
        let config = cfg(2, seed, solver);

        set_par_mode(Some(ParMode::Serial));
        let serial = fingerprint(try_nnmf(&a, &config));

        set_par_mode(Some(ParMode::Outer));
        for threads in thread_counts() {
            set_num_threads(Some(threads));
            let par = fingerprint(try_nnmf(&a, &config));
            prop_assert_eq!(&serial, &par, "try_nnmf diverged from serial at {} threads", threads);
        }
    }

    #[test]
    fn rank_scan_parallel_matches_serial(a in fault_matrix(), seed in any::<u64>()) {
        let _lock = CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _guard = ModeGuard;
        let config = cfg(2, seed, Solver::Hals);

        set_par_mode(Some(ParMode::Serial));
        let serial = try_rank_scan(&a, 1..=3, &config)
            .map(|scan| scan.into_iter().map(|(d, m)| (d.k, fingerprint(Ok(m)))).collect::<Vec<_>>())
            .map_err(|e| e.to_string());

        set_par_mode(Some(ParMode::Outer));
        for threads in thread_counts() {
            set_num_threads(Some(threads));
            let par = try_rank_scan(&a, 1..=3, &config)
                .map(|scan| scan.into_iter().map(|(d, m)| (d.k, fingerprint(Ok(m)))).collect::<Vec<_>>())
                .map_err(|e| e.to_string());
            prop_assert_eq!(&serial, &par, "try_rank_scan diverged from serial at {} threads", threads);
        }
    }

    #[test]
    fn consensus_parallel_matches_serial(a in fault_matrix(), seed in any::<u64>(), runs in 1usize..7) {
        let _lock = CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _guard = ModeGuard;
        let config = cfg(2, seed, Solver::Hals);

        set_par_mode(Some(ParMode::Serial));
        let serial = try_consensus(&a, 2, runs, &config)
            .map(|c| {
                (
                    c.matrix.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    c.stats.dispersion.to_bits(),
                    c.stats.cophenetic.to_bits(),
                )
            })
            .map_err(|e| e.to_string());

        set_par_mode(Some(ParMode::Outer));
        for threads in thread_counts() {
            set_num_threads(Some(threads));
            let par = try_consensus(&a, 2, runs, &config)
                .map(|c| {
                    (
                        c.matrix.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        c.stats.dispersion.to_bits(),
                        c.stats.cophenetic.to_bits(),
                    )
                })
                .map_err(|e| e.to_string());
            prop_assert_eq!(&serial, &par, "try_consensus diverged from serial at {} threads", threads);
        }
    }
}
