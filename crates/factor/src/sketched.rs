//! Sketched NNMF: factor through a row-space sketch instead of the full
//! courses × tags matrix, for corpora far beyond the paper's ~2k courses.
//!
//! The full HALS fit touches every row of `A` (m × n) on every sweep —
//! `O(m·n·k)` per iteration, which at 100k courses dominates wall-clock.
//! The sketched path shrinks the iteration to `O(s·n·k)` with `s ≪ m`:
//!
//! 1. **Sketch** — `B = S·A` (`s × n`) via [`anchors_linalg::sketch`],
//!    half-normal Gaussian or unsigned CountSketch, seeded and
//!    storage-independent. The coefficients are **nonnegative**, so
//!    `B = (S·W₀)·H₀ ≥ 0` for any exact factorization `A = W₀·H₀`: the
//!    sketch is itself a valid NMF instance sharing the same `H₀`. (A
//!    signed JL sketch would preserve the row space but destroy the
//!    nonnegative cone — the `H` recovered by a semi-NMF on signed
//!    sketch rows needs negative lift coefficients and reconstructs the
//!    full data poorly.)
//! 2. **NNMF on the sketch** — the ordinary [`crate::try_nnmf`] ladder
//!    (restarts, divergence guards, recovery) runs on the small `B`;
//!    only `H` — the type → tag profiles, which live in the row space
//!    the sketch preserves — is kept.
//! 3. **Lift** — one exact pass of batched NNLS recovers `W ≥ 0`
//!    against the frozen `H`: row `i` of `W` solves
//!    `min ‖Hᵀ wᵢ − aᵢ‖, wᵢ ≥ 0`. This is the only full-data step,
//!    one Gram pass plus `m` tiny active-set solves, and it makes the
//!    returned model feasible regardless of sketch quality.
//!
//! The returned [`SketchedModel`] carries the exact loss of the lifted
//! factors — measured against the full `A`, not the sketch — plus a
//! [`SketchReport`] recording the sketch parameters and quality, so
//! callers (and the serving diagnostics) can gate on parity with the
//! exact solver.

use crate::error::NnmfError;
use crate::nnmf::{loss, validate, NnmfConfig, NnmfModel};
use anchors_linalg::sketch::{sketch_rows, SketchConfig};
use anchors_linalg::solve::try_nnls_multi;
use anchors_linalg::{LinalgError, MatKernels};
use serde::{Deserialize, Serialize};

/// How the sketch behaved, recorded alongside the lifted model so
/// downstream diagnostics can audit the approximation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchReport {
    /// Sketch family (`"gaussian"` or `"countsketch"`).
    pub kind: String,
    /// Sketch rows `s`.
    pub sketch_rows: usize,
    /// Seed of the sketch coefficients.
    pub sketch_seed: u64,
    /// Iterations used by the winning restart on the sketch.
    pub sketch_iterations: usize,
    /// Final loss `½‖B − WₛH‖²` of the sketch-side fit.
    pub sketched_loss: f64,
    /// Exact loss `½‖A − WH‖²` of the lifted factors on the full data.
    pub exact_loss: f64,
    /// Exact relative reconstruction error `‖A − WH‖_F / ‖A‖_F`.
    pub relative_error: f64,
}

/// A lifted model plus the sketch audit trail.
#[derive(Debug, Clone)]
pub struct SketchedModel {
    /// The factorization: `W ≥ 0` exact-lifted, `H ≥ 0` from the sketch
    /// fit, `loss` measured on the full data.
    pub model: NnmfModel,
    /// Sketch parameters and quality.
    pub report: SketchReport,
}

/// Fit NNMF through a row sketch: compress, factor the sketch with the
/// full [`crate::try_nnmf`] ladder (every [`NnmfConfig`] knob — solver,
/// restarts, budgets, recovery — applies to the sketch-side fit), then
/// lift `W` back with one exact batched-NNLS pass. See the module docs
/// for the algorithm.
///
/// Errors mirror [`crate::try_nnmf`]: malformed input surfaces as the
/// same typed [`NnmfError`]s, a sketch too small for the rank as
/// [`NnmfError::RankTooLarge`] against the sketch shape, and a
/// divergent sketch fit as [`NnmfError::Diverged`].
pub fn try_nnmf_sketched<A: MatKernels>(
    a: &A,
    config: &NnmfConfig,
    sketch: &SketchConfig,
) -> Result<SketchedModel, NnmfError> {
    validate(a, config)?;
    let (m, n) = a.shape();
    if sketch.rows < config.k {
        return Err(NnmfError::RankTooLarge {
            k: config.k,
            shape: (sketch.rows, n),
        });
    }
    let b = sketch_rows(a, sketch).map_err(NnmfError::Linalg)?;

    // The sketch of a validated (finite, nonnegative) matrix is again
    // finite and nonnegative, so the inner fit sees a well-formed NMF
    // instance and the full recovery ladder applies to it.
    let inner = crate::try_nnmf(&b, config)?;

    // Lift: one exact batched-NNLS pass over the full data recovers
    // W ≥ 0 against the frozen H. `try_nnls_multi` wants the design
    // matrix Hᵀ (n × k) and solves every row of A in one Gram pass.
    let ht = inner.h.transpose();
    let w = try_nnls_multi(&ht, a, 1e-12).map_err(NnmfError::Linalg)?;
    debug_assert_eq!(w.shape(), (m, config.k));

    let exact_loss = loss(a, &w, &inner.h);
    if !exact_loss.is_finite() {
        return Err(NnmfError::Linalg(LinalgError::NotFinite {
            op: "nnmf_sketched",
            row: 0,
            col: 0,
            value: exact_loss,
        }));
    }
    let model = NnmfModel {
        w,
        h: inner.h,
        loss: exact_loss,
        iterations: inner.iterations,
        converged: inner.converged,
        winning_seed: inner.winning_seed,
        recovery: inner.recovery,
    };
    // Same quantity `relative_error_on` computes, but reusing the loss
    // pass already done above — one fewer full-data sweep.
    let fro2 = a.frobenius_sq();
    let relative_error = if fro2 > 0.0 {
        (2.0 * exact_loss.max(0.0) / fro2).sqrt()
    } else if exact_loss > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    Ok(SketchedModel {
        report: SketchReport {
            kind: sketch.kind.to_string(),
            sketch_rows: sketch.rows,
            sketch_seed: sketch.seed,
            sketch_iterations: inner.iterations,
            sketched_loss: inner.loss,
            exact_loss,
            relative_error,
        },
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_linalg::{CsrMatrix, Matrix, SketchKind};

    /// Planted rank-3 nonnegative matrix: every row loads on one
    /// dominant type, with a small cross-type floor in `H`.
    fn planted(m: usize, n: usize) -> Matrix {
        let k = 3;
        let w0 = Matrix::from_fn(m, k, |i, t| {
            if i % k == t {
                1.0 + (i % 5) as f64 * 0.1
            } else {
                0.0
            }
        });
        let h0 = Matrix::from_fn(k, n, |t, j| {
            if j % k == t {
                0.8 + (j % 7) as f64 * 0.05
            } else {
                0.02
            }
        });
        anchors_linalg::matmul(&w0, &h0)
    }

    fn cfg(k: usize) -> NnmfConfig {
        NnmfConfig {
            max_iter: 200,
            tol: 1e-6,
            ..NnmfConfig::paper_default(k)
        }
    }

    #[test]
    fn sketched_fit_is_feasible_and_accurate_on_planted_data() {
        let a = planted(60, 24);
        for kind in [SketchKind::Gaussian, SketchKind::CountSketch] {
            let sk = SketchConfig {
                kind,
                rows: 24,
                seed: 11,
            };
            let fitted = try_nnmf_sketched(&a, &cfg(3), &sk).expect("sketched fit");
            assert!(fitted.model.w.is_nonnegative(), "{kind}: W ≥ 0");
            assert!(fitted.model.h.is_nonnegative(), "{kind}: H ≥ 0");
            assert!(
                fitted.report.relative_error < 0.05,
                "{kind}: planted rank-3 should nearly factor, err {}",
                fitted.report.relative_error
            );
            assert_eq!(fitted.report.kind, kind.to_string());
            assert_eq!(fitted.report.sketch_rows, 24);
            // The recorded exact loss is the model's loss.
            assert_eq!(fitted.report.exact_loss, fitted.model.loss);
        }
    }

    #[test]
    fn sketched_fit_is_deterministic_and_storage_independent() {
        let dense = planted(40, 16);
        let csr = CsrMatrix::from_dense(&dense);
        let sk = SketchConfig::gaussian(20, 5);
        let m1 = try_nnmf_sketched(&dense, &cfg(3), &sk).expect("dense");
        let m2 = try_nnmf_sketched(&dense, &cfg(3), &sk).expect("dense again");
        let m3 = try_nnmf_sketched(&csr, &cfg(3), &sk).expect("csr");
        assert_eq!(m1.model.w, m2.model.w);
        assert_eq!(m1.model.h, m2.model.h);
        assert_eq!(m1.model.w, m3.model.w, "dense/CSR bitwise-paired");
        assert_eq!(m1.model.h, m3.model.h);
        assert_eq!(m1.report, m3.report);
    }

    #[test]
    fn sketched_parity_with_exact_on_planted_data() {
        // On noiseless planted data the exact solver reaches ~1e-6, so a
        // ratio gate is meaningless here — the 1.05× parity gate runs in
        // the scale bench on noise-floored data. The unit property is
        // absolute: the sketched fit reconstructs the planted structure
        // to well under 1% even through a 30-row sketch.
        let a = planted(80, 30);
        let exact = crate::try_nnmf(&a, &cfg(3)).expect("exact");
        let sk = try_nnmf_sketched(&a, &cfg(3), &SketchConfig::gaussian(30, 7)).expect("sketched");
        let exact_err = exact.relative_error_on(&a);
        assert!(exact_err < 1e-3, "exact baseline sane, err {exact_err}");
        assert!(
            sk.report.relative_error < 0.01,
            "sketched err {} should be under 1% (exact {})",
            sk.report.relative_error,
            exact_err
        );
    }

    #[test]
    fn bad_inputs_surface_typed_errors() {
        let a = planted(20, 10);
        // Sketch smaller than the rank.
        let err = try_nnmf_sketched(&a, &cfg(4), &SketchConfig::gaussian(2, 1)).unwrap_err();
        assert!(matches!(
            err,
            NnmfError::RankTooLarge {
                k: 4,
                shape: (2, 10)
            }
        ));
        // Malformed data takes the same validation path as the exact fit.
        let mut bad = a.clone();
        bad.set(1, 1, -1.0);
        assert!(matches!(
            try_nnmf_sketched(&bad, &cfg(3), &SketchConfig::gaussian(8, 1)),
            Err(NnmfError::NegativeEntry { .. })
        ));
        let mut nan = a;
        nan.set(0, 0, f64::NAN);
        assert!(matches!(
            try_nnmf_sketched(&nan, &cfg(3), &SketchConfig::gaussian(8, 1)),
            Err(NnmfError::NonFinite { .. })
        ));
    }
}
