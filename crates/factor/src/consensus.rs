//! Consensus clustering across NNMF restarts (Brunet et al. 2004) — the
//! quantitative rank-stability diagnostic complementing the paper's manual
//! §4.4 inspection.
//!
//! For a candidate rank `k`, NNMF is run from many random restarts; each
//! run clusters rows by dominant type. The *consensus matrix* records how
//! often two rows co-cluster. If `k` matches real structure, co-clustering
//! is all-or-nothing (entries near 0/1); an unstable `k` yields diffuse
//! values. Stability is summarized by the dispersion coefficient and the
//! cophenetic correlation of the consensus matrix.

use crate::cluster::{hierarchical, Linkage};
use crate::error::NnmfError;
use crate::nnmf::{fan_out_pooled, try_nnmf_with, NnmfConfig, WorkspacePool};
use anchors_linalg::{parallel, Matrix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Consensus statistics for one candidate rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsensusStats {
    /// The rank evaluated.
    pub k: usize,
    /// Number of restarts aggregated.
    pub runs: usize,
    /// Dispersion `ρ = (1/n²) Σ 4(c_ij − ½)²` (1 = perfectly stable).
    pub dispersion: f64,
    /// Cophenetic correlation of the consensus matrix (1 = perfectly
    /// hierarchical co-clustering structure).
    pub cophenetic: f64,
}

/// The consensus matrix plus its stability statistics.
#[derive(Debug, Clone)]
pub struct Consensus {
    /// Symmetric `n × n` co-clustering frequency matrix (diagonal = 1).
    pub matrix: Matrix,
    /// Summary statistics.
    pub stats: ConsensusStats,
}

/// Accumulate pairwise co-clustering counts from per-run label vectors.
///
/// Each count entry is a sum of exact small-integer `f64` additions, so
/// any loop order produces bitwise-identical results; the parallel path
/// hands each thread a disjoint set of rows and is therefore safe to use
/// even under the bitwise-determinism contract.
fn accumulate_cocluster(run_labels: &[Vec<usize>], counts: &mut Matrix) {
    let n = counts.rows();
    let row_body = |i: usize, row: &mut [f64]| {
        for labels in run_labels {
            let li = labels[i];
            for (c, &lj) in row.iter_mut().zip(labels.iter()) {
                if lj == li {
                    *c += 1.0;
                }
            }
        }
    };
    if n >= 2 && parallel::outer_enabled() {
        parallel::install(|| {
            counts
                .as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| {
                    let _scope = parallel::enter_outer_scope();
                    row_body(i, row);
                });
        });
    } else {
        for (i, row) in counts.as_mut_slice().chunks_mut(n).enumerate() {
            row_body(i, row);
        }
    }
}

/// Compute the consensus over `runs` single-restart NNMF fits at rank `k`.
///
/// Each run uses seed `base.seed + run` with `restarts = 1`, so the
/// consensus reflects genuine restart-to-restart variability. Runs fan
/// out across threads on pooled workspaces; labels are reduced in run
/// order, so the result is bitwise identical at any thread count. A fit
/// error surfaces as the error of the earliest failing run.
pub fn try_consensus(
    a: &Matrix,
    k: usize,
    runs: usize,
    base: &NnmfConfig,
) -> Result<Consensus, NnmfError> {
    let n = a.rows();
    let runs = runs.max(1);
    let pool = WorkspacePool::new();
    let run_labels: Vec<Vec<usize>> = fan_out_pooled(runs, &pool, |r, ws| {
        let cfg = NnmfConfig {
            k,
            restarts: 1,
            seed: base.seed.wrapping_add(r as u64),
            ..base.clone()
        };
        try_nnmf_with(a, &cfg, ws).map(|model| model.dominant_types())
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    let mut counts = Matrix::zeros(n, n);
    accumulate_cocluster(&run_labels, &mut counts);
    let c = counts.map(|v| v / runs as f64);

    // Dispersion: 1 when all entries are 0 or 1.
    let dispersion = if n == 0 {
        1.0
    } else {
        c.as_slice()
            .iter()
            .map(|&v| 4.0 * (v - 0.5) * (v - 0.5))
            .sum::<f64>()
            / (n * n) as f64
    };

    // Cophenetic correlation: cluster the consensus *distance* (1 − c).
    let cophenetic = if n < 3 {
        1.0
    } else {
        let d = c.map(|v| 1.0 - v);
        let dend = hierarchical(&d, Linkage::Average);
        dend.cophenetic_correlation(&d)
    };

    Ok(Consensus {
        matrix: c,
        stats: ConsensusStats {
            k,
            runs,
            dispersion,
            cophenetic,
        },
    })
}

/// Panicking wrapper over [`try_consensus`], kept for callers predating
/// the fallible API.
///
/// # Panics
/// Panics under the same conditions as [`crate::nnmf::nnmf`].
pub fn consensus(a: &Matrix, k: usize, runs: usize, base: &NnmfConfig) -> Consensus {
    match try_consensus(a, k, runs, base) {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    }
}

/// Scan ranks and return the stats per `k`, surfacing the first fit
/// error (in ascending-`k` order) instead of panicking.
pub fn try_consensus_scan(
    a: &Matrix,
    k_range: std::ops::RangeInclusive<usize>,
    runs: usize,
    base: &NnmfConfig,
) -> Result<Vec<ConsensusStats>, NnmfError> {
    k_range
        .map(|k| try_consensus(a, k, runs, base).map(|c| c.stats))
        .collect()
}

/// Scan ranks and return the stats per `k` (used by the rank-ablation
/// bench and the model-selection example).
pub fn consensus_scan(
    a: &Matrix,
    k_range: std::ops::RangeInclusive<usize>,
    runs: usize,
    base: &NnmfConfig,
) -> Vec<ConsensusStats> {
    match try_consensus_scan(a, k_range, runs, base) {
        Ok(scan) => scan,
        Err(e) => panic!("{e}"),
    }
}

/// Pick the rank with the highest dispersion (ties → smaller k, favoring
/// parsimony).
pub fn select_rank_by_consensus(scan: &[ConsensusStats]) -> usize {
    scan.iter()
        .max_by(|a, b| {
            a.dispersion
                .partial_cmp(&b.dispersion)
                .expect("finite dispersion")
                .then(b.k.cmp(&a.k))
        })
        .map(|s| s.k)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clean three-block matrix: rank 3 should be maximally stable.
    fn blocks() -> Matrix {
        Matrix::from_fn(12, 15, |i, j| if i / 4 == j / 5 { 1.0 } else { 0.0 })
    }

    fn base() -> NnmfConfig {
        NnmfConfig {
            max_iter: 100,
            ..NnmfConfig::paper_default(3)
        }
    }

    #[test]
    fn consensus_matrix_properties() {
        let a = blocks();
        let c = consensus(&a, 3, 8, &base());
        let n = a.rows();
        assert_eq!(c.matrix.shape(), (n, n));
        for i in 0..n {
            assert_eq!(c.matrix.get(i, i), 1.0, "diagonal is always co-clustered");
            for j in 0..n {
                let v = c.matrix.get(i, j);
                assert!((0.0..=1.0).contains(&v));
                assert_eq!(v, c.matrix.get(j, i));
            }
        }
    }

    #[test]
    fn true_rank_is_perfectly_stable() {
        let a = blocks();
        let c = consensus(&a, 3, 10, &base());
        assert!(
            c.stats.dispersion > 0.95,
            "k = true rank must co-cluster identically across restarts, ρ = {}",
            c.stats.dispersion
        );
        assert!(c.stats.cophenetic > 0.9);
    }

    #[test]
    fn overfit_rank_is_less_stable() {
        let a = blocks();
        let c3 = consensus(&a, 3, 10, &base());
        let c5 = consensus(&a, 5, 10, &base());
        assert!(
            c5.stats.dispersion <= c3.stats.dispersion + 1e-9,
            "k beyond the true rank cannot be more stable ({} vs {})",
            c5.stats.dispersion,
            c3.stats.dispersion
        );
    }

    #[test]
    fn scan_and_selection() {
        let a = blocks();
        let scan = consensus_scan(&a, 2..=5, 8, &base());
        assert_eq!(scan.len(), 4);
        let k = select_rank_by_consensus(&scan);
        assert!(
            k == 3 || k == 2,
            "selection favors a stable parsimonious rank, got {k}"
        );
    }

    #[test]
    fn consensus_bitwise_matches_serial() {
        use anchors_linalg::parallel::{set_num_threads, set_par_mode, ParMode};
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                set_par_mode(None);
                set_num_threads(None);
            }
        }
        let _reset = Reset;
        let a = blocks();

        set_par_mode(Some(ParMode::Serial));
        let serial = try_consensus(&a, 3, 8, &base()).unwrap();
        set_par_mode(Some(ParMode::Outer));
        for threads in [1usize, 2, 4] {
            set_num_threads(Some(threads));
            let par = try_consensus(&a, 3, 8, &base()).unwrap();
            assert_eq!(
                serial.matrix, par.matrix,
                "consensus matrix must be bitwise stable at {threads} threads"
            );
            assert_eq!(
                serial.stats.dispersion.to_bits(),
                par.stats.dispersion.to_bits()
            );
            assert_eq!(
                serial.stats.cophenetic.to_bits(),
                par.stats.cophenetic.to_bits()
            );
        }
    }

    #[test]
    fn single_run_is_degenerate_but_valid() {
        let a = blocks();
        let c = consensus(&a, 3, 1, &base());
        // With one run every co-cluster entry is 0 or 1 ⇒ dispersion 1.
        assert_eq!(c.stats.dispersion, 1.0);
        assert_eq!(c.stats.runs, 1);
    }
}
