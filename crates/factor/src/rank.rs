//! Rank (hyperparameter `k`) selection diagnostics.
//!
//! Section 4.4 of the paper: the authors inspected `k ∈ {2, 3, 4}` and found
//! `k = 4` "generated two dimensions which were almost identical, indicating
//! an overfit", while `k = 2` "seemed to not separate the courses as well as
//! `k = 3`". This module mechanizes that manual inspection:
//!
//! * [`try_rank_scan`] — fit every `k` in a range (fanned out across
//!   threads, deterministically) and report the loss curve and the
//!   duplicate-dimension (overfit) signal;
//! * [`duplicate_dimension_score`] — maximum cosine similarity between two
//!   distinct rows of `H` (≈1 ⇒ two types are the same ⇒ `k` too large);
//! * [`separation_score`] — how decisively courses commit to one type
//!   (low ⇒ `k` too small to separate the corpus);
//! * [`select_rank`] — the smallest `k` in the range whose factorization
//!   separates courses without duplicated dimensions.

use crate::error::NnmfError;
use crate::nnmf::{fan_out_pooled, try_nnmf_with, NnmfConfig, NnmfModel, WorkspacePool};
use anchors_linalg::stats::cosine;
use anchors_linalg::{MatKernels, Matrix};
use serde::{Deserialize, Serialize};

/// Diagnostics for a single `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankDiagnostics {
    /// The rank evaluated.
    pub k: usize,
    /// Final loss `½‖A − WH‖_F²`.
    pub loss: f64,
    /// Relative reconstruction error.
    pub relative_error: f64,
    /// Max cosine similarity between distinct `H` rows (duplicate signal).
    pub duplicate_score: f64,
    /// Mean dominance margin of `W` rows (separation signal).
    pub separation: f64,
}

/// Max cosine similarity between two distinct rows of `H`. Near 1 means two
/// "types" describe the same curriculum profile — the paper's k=4 overfit.
pub fn duplicate_dimension_score(h: &Matrix) -> f64 {
    let k = h.rows();
    let mut worst: f64 = 0.0;
    for a in 0..k {
        for b in (a + 1)..k {
            worst = worst.max(cosine(h.row(a), h.row(b)));
        }
    }
    worst
}

/// Mean over courses of `(top − second) / top` of the row of `W`
/// (0 when a course is torn between two types, 1 when fully committed).
/// Rows that are entirely zero are skipped.
pub fn separation_score(w: &Matrix) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for i in 0..w.rows() {
        let row = w.row(i);
        let mut top = 0.0f64;
        let mut second = 0.0f64;
        for &v in row {
            if v > top {
                second = top;
                top = v;
            } else if v > second {
                second = v;
            }
        }
        if top > 0.0 {
            total += (top - second) / top;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Fit every `k` in `k_range` and collect diagnostics. Generic over the
/// storage backend. The per-`k` fits fan out across threads (each on a
/// pooled solver workspace) and come back in ascending-`k` order; a fit
/// error surfaces as the error of the smallest failing `k`, and results
/// are bitwise identical to a serial scan at any thread count.
pub fn try_rank_scan<A: MatKernels>(
    a: &A,
    k_range: std::ops::RangeInclusive<usize>,
    base: &NnmfConfig,
) -> Result<Vec<(RankDiagnostics, NnmfModel)>, NnmfError> {
    let ks: Vec<usize> = k_range.collect();
    let pool = WorkspacePool::new();
    fan_out_pooled(ks.len(), &pool, |i, ws| {
        let k = ks[i];
        let cfg = NnmfConfig { k, ..base.clone() };
        let model = try_nnmf_with(a, &cfg, ws)?;
        let diag = RankDiagnostics {
            k,
            loss: model.loss,
            relative_error: model.relative_error_on(a),
            duplicate_score: duplicate_dimension_score(&model.h),
            separation: separation_score(&model.w),
        };
        Ok((diag, model))
    })
    .into_iter()
    .collect()
}

/// Default duplicate threshold mirroring "almost identical" in §4.4.
pub const DUPLICATE_THRESHOLD: f64 = 0.95;

/// Select a rank from a scan: the largest `k` whose `H` rows are all
/// distinct (duplicate score below `dup_threshold`). Falls back to the
/// smallest scanned `k` if every candidate shows duplicates.
pub fn select_rank(scan: &[(RankDiagnostics, NnmfModel)], dup_threshold: f64) -> usize {
    scan.iter()
        .filter(|(d, _)| d.duplicate_score < dup_threshold)
        .map(|(d, _)| d.k)
        .max()
        .unwrap_or_else(|| scan.iter().map(|(d, _)| d.k).min().unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnmf::Solver;

    /// Three clearly separated row groups over disjoint column blocks.
    fn three_block_matrix() -> Matrix {
        Matrix::from_fn(12, 15, |i, j| {
            let gi = i / 4;
            let gj = j / 5;
            if gi == gj {
                1.0
            } else {
                0.0
            }
        })
    }

    fn base_cfg() -> NnmfConfig {
        NnmfConfig {
            restarts: 4,
            solver: Solver::Hals,
            ..NnmfConfig::paper_default(3)
        }
    }

    #[test]
    fn duplicate_score_detects_identical_rows() {
        let h = Matrix::from_rows(&[vec![1., 0., 1.], vec![1., 0., 1.], vec![0., 1., 0.]]);
        assert!((duplicate_dimension_score(&h) - 1.0).abs() < 1e-12);
        let h2 = Matrix::from_rows(&[vec![1., 0., 0.], vec![0., 1., 0.]]);
        assert_eq!(duplicate_dimension_score(&h2), 0.0);
    }

    #[test]
    fn separation_score_extremes() {
        let committed = Matrix::from_rows(&[vec![1., 0.], vec![0., 2.]]);
        assert!((separation_score(&committed) - 1.0).abs() < 1e-12);
        let torn = Matrix::from_rows(&[vec![1., 1.]]);
        assert_eq!(separation_score(&torn), 0.0);
        assert_eq!(separation_score(&Matrix::zeros(2, 2)), 0.0);
    }

    #[test]
    fn loss_decreases_with_k() {
        let a = three_block_matrix();
        let scan = try_rank_scan(&a, 1..=4, &base_cfg()).unwrap();
        for w in scan.windows(2) {
            assert!(
                w[1].0.loss <= w[0].0.loss + 1e-6,
                "loss should be non-increasing in k: {} then {}",
                w[0].0.loss,
                w[1].0.loss
            );
        }
    }

    #[test]
    fn overfit_k_shows_duplicates_on_block_data() {
        let a = three_block_matrix();
        let scan = try_rank_scan(&a, 2..=5, &base_cfg()).unwrap();
        let k3 = scan.iter().find(|(d, _)| d.k == 3).unwrap();
        assert!(
            k3.0.duplicate_score < 0.5,
            "true rank has distinct types, got {}",
            k3.0.duplicate_score
        );
        // The paper's signal: exact-rank data factored at k = true rank
        // reconstructs essentially exactly.
        assert!(k3.0.relative_error < 0.05);
    }

    #[test]
    fn select_rank_picks_three_blocks() {
        let a = three_block_matrix();
        let scan = try_rank_scan(&a, 2..=4, &base_cfg()).unwrap();
        let k = select_rank(&scan, DUPLICATE_THRESHOLD);
        assert!(
            k == 3 || k == 4,
            "rank selection should not under-fit clear 3-block data, picked {k}"
        );
        // And never picks a k whose H rows are duplicated.
        let picked = scan.iter().find(|(d, _)| d.k == k).unwrap();
        assert!(picked.0.duplicate_score < DUPLICATE_THRESHOLD);
    }

    #[test]
    fn rank_scan_identical_on_csr() {
        let a = three_block_matrix();
        let s = anchors_linalg::CsrMatrix::from_dense(&a);
        let ds = try_rank_scan(&a, 2..=4, &base_cfg()).unwrap();
        let ss = try_rank_scan(&s, 2..=4, &base_cfg()).unwrap();
        for ((dd, dm), (sd, sm)) in ds.iter().zip(&ss) {
            assert_eq!(dd.k, sd.k);
            assert_eq!(dm.w, sm.w, "k={}: scans must agree across backends", dd.k);
            assert_eq!(dm.h, sm.h);
            assert!((dd.relative_error - sd.relative_error).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_scan_bitwise_matches_serial() {
        use anchors_linalg::parallel::{set_num_threads, set_par_mode, ParMode};
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                set_par_mode(None);
                set_num_threads(None);
            }
        }
        let _reset = Reset;
        let a = three_block_matrix();

        set_par_mode(Some(ParMode::Serial));
        let serial = try_rank_scan(&a, 2..=5, &base_cfg()).unwrap();
        set_par_mode(Some(ParMode::Outer));
        for threads in [1usize, 2, 4] {
            set_num_threads(Some(threads));
            let par = try_rank_scan(&a, 2..=5, &base_cfg()).unwrap();
            assert_eq!(serial.len(), par.len());
            for ((sd, sm), (pd, pm)) in serial.iter().zip(&par) {
                assert_eq!(sd.k, pd.k, "threads={threads}");
                assert_eq!(sm.w, pm.w, "threads={threads} k={}", sd.k);
                assert_eq!(sm.h, pm.h, "threads={threads} k={}", sd.k);
                assert_eq!(sd.loss.to_bits(), pd.loss.to_bits());
                assert_eq!(sd.duplicate_score.to_bits(), pd.duplicate_score.to_bits());
                assert_eq!(sd.separation.to_bits(), pd.separation.to_bits());
                assert_eq!(sm.winning_seed, pm.winning_seed);
                assert_eq!(sm.recovery, pm.recovery);
            }
        }
    }

    #[test]
    fn select_rank_falls_back_to_smallest() {
        // Fabricated scan where every k is degenerate.
        let a = three_block_matrix();
        let scan = try_rank_scan(&a, 2..=3, &base_cfg()).unwrap();
        let k = select_rank(&scan, 0.0); // impossible threshold
        assert_eq!(k, 2);
    }
}
