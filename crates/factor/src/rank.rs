//! Rank (hyperparameter `k`) selection diagnostics.
//!
//! Section 4.4 of the paper: the authors inspected `k ∈ {2, 3, 4}` and found
//! `k = 4` "generated two dimensions which were almost identical, indicating
//! an overfit", while `k = 2` "seemed to not separate the courses as well as
//! `k = 3`". This module mechanizes that manual inspection:
//!
//! * [`rank_scan`] — fit every `k` in a range and report the loss curve and
//!   the duplicate-dimension (overfit) signal;
//! * [`duplicate_dimension_score`] — maximum cosine similarity between two
//!   distinct rows of `H` (≈1 ⇒ two types are the same ⇒ `k` too large);
//! * [`separation_score`] — how decisively courses commit to one type
//!   (low ⇒ `k` too small to separate the corpus);
//! * [`select_rank`] — the smallest `k` in the range whose factorization
//!   separates courses without duplicated dimensions.

use crate::nnmf::{try_nnmf_with, NnmfConfig, NnmfModel, NnmfWorkspace};
use anchors_linalg::stats::cosine;
use anchors_linalg::{MatKernels, Matrix};
use serde::{Deserialize, Serialize};

/// Diagnostics for a single `k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankDiagnostics {
    /// The rank evaluated.
    pub k: usize,
    /// Final loss `½‖A − WH‖_F²`.
    pub loss: f64,
    /// Relative reconstruction error.
    pub relative_error: f64,
    /// Max cosine similarity between distinct `H` rows (duplicate signal).
    pub duplicate_score: f64,
    /// Mean dominance margin of `W` rows (separation signal).
    pub separation: f64,
}

/// Max cosine similarity between two distinct rows of `H`. Near 1 means two
/// "types" describe the same curriculum profile — the paper's k=4 overfit.
pub fn duplicate_dimension_score(h: &Matrix) -> f64 {
    let k = h.rows();
    let mut worst: f64 = 0.0;
    for a in 0..k {
        for b in (a + 1)..k {
            worst = worst.max(cosine(h.row(a), h.row(b)));
        }
    }
    worst
}

/// Mean over courses of `(top − second) / top` of the row of `W`
/// (0 when a course is torn between two types, 1 when fully committed).
/// Rows that are entirely zero are skipped.
pub fn separation_score(w: &Matrix) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for i in 0..w.rows() {
        let row = w.row(i);
        let mut top = 0.0f64;
        let mut second = 0.0f64;
        for &v in row {
            if v > top {
                second = top;
                top = v;
            } else if v > second {
                second = v;
            }
        }
        if top > 0.0 {
            total += (top - second) / top;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Fit every `k` in `k_range` and collect diagnostics. Generic over the
/// storage backend; all fits in the scan share one solver workspace.
pub fn rank_scan<A: MatKernels>(
    a: &A,
    k_range: std::ops::RangeInclusive<usize>,
    base: &NnmfConfig,
) -> Vec<(RankDiagnostics, NnmfModel)> {
    let mut out = Vec::new();
    let mut ws = NnmfWorkspace::new();
    for k in k_range {
        let cfg = NnmfConfig { k, ..base.clone() };
        let model = match try_nnmf_with(a, &cfg, &mut ws) {
            Ok(model) => model,
            Err(e) => panic!("{e}"),
        };
        let diag = RankDiagnostics {
            k,
            loss: model.loss,
            relative_error: model.relative_error_on(a),
            duplicate_score: duplicate_dimension_score(&model.h),
            separation: separation_score(&model.w),
        };
        out.push((diag, model));
    }
    out
}

/// Default duplicate threshold mirroring "almost identical" in §4.4.
pub const DUPLICATE_THRESHOLD: f64 = 0.95;

/// Select a rank from a scan: the largest `k` whose `H` rows are all
/// distinct (duplicate score below `dup_threshold`). Falls back to the
/// smallest scanned `k` if every candidate shows duplicates.
pub fn select_rank(scan: &[(RankDiagnostics, NnmfModel)], dup_threshold: f64) -> usize {
    scan.iter()
        .filter(|(d, _)| d.duplicate_score < dup_threshold)
        .map(|(d, _)| d.k)
        .max()
        .unwrap_or_else(|| scan.iter().map(|(d, _)| d.k).min().unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnmf::Solver;

    /// Three clearly separated row groups over disjoint column blocks.
    fn three_block_matrix() -> Matrix {
        Matrix::from_fn(12, 15, |i, j| {
            let gi = i / 4;
            let gj = j / 5;
            if gi == gj {
                1.0
            } else {
                0.0
            }
        })
    }

    fn base_cfg() -> NnmfConfig {
        NnmfConfig {
            restarts: 4,
            solver: Solver::Hals,
            ..NnmfConfig::paper_default(3)
        }
    }

    #[test]
    fn duplicate_score_detects_identical_rows() {
        let h = Matrix::from_rows(&[vec![1., 0., 1.], vec![1., 0., 1.], vec![0., 1., 0.]]);
        assert!((duplicate_dimension_score(&h) - 1.0).abs() < 1e-12);
        let h2 = Matrix::from_rows(&[vec![1., 0., 0.], vec![0., 1., 0.]]);
        assert_eq!(duplicate_dimension_score(&h2), 0.0);
    }

    #[test]
    fn separation_score_extremes() {
        let committed = Matrix::from_rows(&[vec![1., 0.], vec![0., 2.]]);
        assert!((separation_score(&committed) - 1.0).abs() < 1e-12);
        let torn = Matrix::from_rows(&[vec![1., 1.]]);
        assert_eq!(separation_score(&torn), 0.0);
        assert_eq!(separation_score(&Matrix::zeros(2, 2)), 0.0);
    }

    #[test]
    fn loss_decreases_with_k() {
        let a = three_block_matrix();
        let scan = rank_scan(&a, 1..=4, &base_cfg());
        for w in scan.windows(2) {
            assert!(
                w[1].0.loss <= w[0].0.loss + 1e-6,
                "loss should be non-increasing in k: {} then {}",
                w[0].0.loss,
                w[1].0.loss
            );
        }
    }

    #[test]
    fn overfit_k_shows_duplicates_on_block_data() {
        let a = three_block_matrix();
        let scan = rank_scan(&a, 2..=5, &base_cfg());
        let k3 = scan.iter().find(|(d, _)| d.k == 3).unwrap();
        assert!(
            k3.0.duplicate_score < 0.5,
            "true rank has distinct types, got {}",
            k3.0.duplicate_score
        );
        // The paper's signal: exact-rank data factored at k = true rank
        // reconstructs essentially exactly.
        assert!(k3.0.relative_error < 0.05);
    }

    #[test]
    fn select_rank_picks_three_blocks() {
        let a = three_block_matrix();
        let scan = rank_scan(&a, 2..=4, &base_cfg());
        let k = select_rank(&scan, DUPLICATE_THRESHOLD);
        assert!(
            k == 3 || k == 4,
            "rank selection should not under-fit clear 3-block data, picked {k}"
        );
        // And never picks a k whose H rows are duplicated.
        let picked = scan.iter().find(|(d, _)| d.k == k).unwrap();
        assert!(picked.0.duplicate_score < DUPLICATE_THRESHOLD);
    }

    #[test]
    fn rank_scan_identical_on_csr() {
        let a = three_block_matrix();
        let s = anchors_linalg::CsrMatrix::from_dense(&a);
        let ds = rank_scan(&a, 2..=4, &base_cfg());
        let ss = rank_scan(&s, 2..=4, &base_cfg());
        for ((dd, dm), (sd, sm)) in ds.iter().zip(&ss) {
            assert_eq!(dd.k, sd.k);
            assert_eq!(dm.w, sm.w, "k={}: scans must agree across backends", dd.k);
            assert_eq!(dm.h, sm.h);
            assert!((dd.relative_error - sd.relative_error).abs() < 1e-12);
        }
    }

    #[test]
    fn select_rank_falls_back_to_smallest() {
        // Fabricated scan where every k is degenerate.
        let a = three_block_matrix();
        let scan = rank_scan(&a, 2..=3, &base_cfg());
        let k = select_rank(&scan, 0.0); // impossible threshold
        assert_eq!(k, 2);
    }
}
