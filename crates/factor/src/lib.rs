//! # anchors-factor
//!
//! Unsupervised-learning layer of the `pdc-anchors` reproduction:
//!
//! * [`nnmf`] — non-negative matrix factorization (the paper's §4.1
//!   method): Lee–Seung multiplicative updates and HALS coordinate descent,
//!   random/NNDSVD initialization, multi-restart;
//! * [`rank`] — rank-selection diagnostics mechanizing the paper's §4.4
//!   manual inspection (duplicate-dimension overfit signal, separation);
//! * [`pca`], [`mds`] — the dimension-reduction baselines named in the
//!   threats-to-validity section (classical MDS + SMACOF);
//! * [`bicluster`] — spectral co-clustering behind the CS Materials matrix
//!   view (§3.1.1);
//! * [`cluster`] — k-means and agglomerative hierarchical clustering with
//!   cophenetic correlation.

pub mod bicluster;
pub mod cluster;
pub mod consensus;
pub mod error;
pub mod init;
pub mod mds;
pub mod nnmf;
pub mod pca;
pub mod rank;
pub mod sparse_nnmf;

pub use bicluster::{block_purity, spectral_cocluster, Bicluster};
pub use cluster::{hierarchical, kmeans, Dendrogram, KMeans, Linkage, Merge};
pub use consensus::{
    consensus, consensus_scan, select_rank_by_consensus, Consensus, ConsensusStats,
};
pub use error::NnmfError;
pub use init::Init;
pub use mds::{classical_mds, smacof, stress_of, MdsEmbedding};
pub use nnmf::{loss, nnmf, try_nnmf, NnmfConfig, NnmfModel, NnmfRecovery, Solver};
pub use pca::{pca, Pca};
pub use rank::{
    duplicate_dimension_score, rank_scan, select_rank, separation_score, RankDiagnostics,
    DUPLICATE_THRESHOLD,
};
pub use sparse_nnmf::{nnmf_sparse, sparse_loss};
