//! # anchors-factor
//!
//! Unsupervised-learning layer of the `pdc-anchors` reproduction:
//!
//! * [`nnmf`] — non-negative matrix factorization (the paper's §4.1
//!   method): Lee–Seung multiplicative updates and HALS coordinate descent,
//!   random/NNDSVD initialization, multi-restart. The solver is generic
//!   over `anchors_linalg::MatKernels`, so dense and CSR inputs share one
//!   code path (and produce bitwise-identical factors), and iterations run
//!   allocation-free through a reusable [`nnmf::NnmfWorkspace`]. Restarts
//!   fan out across threads on a [`nnmf::WorkspacePool`] with a
//!   deterministic reduction, so parallel and serial runs are bitwise
//!   identical;
//! * [`rank`] — rank-selection diagnostics mechanizing the paper's §4.4
//!   manual inspection (duplicate-dimension overfit signal, separation);
//! * [`pca`], [`mds`] — the dimension-reduction baselines named in the
//!   threats-to-validity section (classical MDS + SMACOF);
//! * [`bicluster`] — spectral co-clustering behind the CS Materials matrix
//!   view (§3.1.1);
//! * [`cluster`] — k-means and agglomerative hierarchical clustering with
//!   cophenetic correlation.

pub mod bicluster;
pub mod cluster;
pub mod consensus;
pub mod error;
pub mod init;
pub mod mds;
pub mod nnmf;
pub mod pca;
pub mod rank;
pub mod sketched;
pub mod warm;

pub use bicluster::{block_purity, spectral_cocluster, Bicluster};
pub use cluster::{hierarchical, kmeans, Dendrogram, KMeans, Linkage, Merge};
pub use consensus::{
    consensus, consensus_scan, select_rank_by_consensus, try_consensus, try_consensus_scan,
    Consensus, ConsensusStats,
};
pub use error::NnmfError;
pub use init::Init;
pub use mds::{classical_mds, smacof, stress_of, MdsEmbedding};
pub use nnmf::{
    loss, nnmf, try_nnmf, try_nnmf_with, NnmfConfig, NnmfModel, NnmfRecovery, NnmfWorkspace,
    Solver, WorkspacePool,
};
pub use pca::{pca, Pca};
pub use rank::{
    duplicate_dimension_score, select_rank, separation_score, try_rank_scan, RankDiagnostics,
    DUPLICATE_THRESHOLD,
};
pub use sketched::{try_nnmf_sketched, SketchReport, SketchedModel};
pub use warm::{
    try_nnmf_sketched_warm, try_nnmf_warm, try_nnmf_warm_with, WarmModel, WarmReport,
    WarmSketchedModel, WarmStart,
};

/// Thread-local heap-allocation counter backing the zero-allocation tests.
/// Compiled only for this crate's own test binary; release builds use the
/// system allocator untouched.
#[cfg(test)]
mod alloc_probe {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// Number of heap allocations performed by the current thread since it
    /// started.
    pub fn allocations_on_this_thread() -> u64 {
        ALLOCATIONS.with(|c| c.get())
    }

    struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static COUNTING: CountingAllocator = CountingAllocator;
}
