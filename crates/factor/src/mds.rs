//! Multidimensional scaling.
//!
//! The paper uses MDS twice: to lay out search results in 2D ("the
//! similarities are then passed to a Multidimensional Scaling algorithm to
//! map the materials to a 2D location") and names it as an alternative
//! dimension-reduction baseline. Two algorithms:
//!
//! * [`classical_mds`] — Torgerson: double-center the squared distances and
//!   take the top eigenpairs. Exact for Euclidean distance matrices.
//! * [`smacof`] — iterative stress majorization; handles non-Euclidean
//!   dissimilarities (e.g. Jaccard distances of tag sets) better.

use anchors_linalg::distance::validate_distance_matrix;
use anchors_linalg::{matmul, pairwise_distances, sym_eigen, Matrix, Metric};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Result of an MDS embedding.
#[derive(Debug, Clone)]
pub struct MdsEmbedding {
    /// Point coordinates (`n × dims`).
    pub points: Matrix,
    /// Final stress (`0` for classical MDS on perfectly Euclidean input).
    pub stress: f64,
    /// Iterations used (0 for classical).
    pub iterations: usize,
}

/// Classical (Torgerson) MDS of a distance matrix into `dims` dimensions.
///
/// # Panics
/// Panics if `d` is not a valid distance matrix.
pub fn classical_mds(d: &Matrix, dims: usize) -> MdsEmbedding {
    validate_distance_matrix(d).expect("classical_mds requires a valid distance matrix");
    let n = d.rows();
    if n == 0 || dims == 0 {
        return MdsEmbedding {
            points: Matrix::zeros(n, dims),
            stress: 0.0,
            iterations: 0,
        };
    }
    // B = -1/2 J D² J with J = I - (1/n) 11ᵀ.
    let d2 = d.map(|v| v * v);
    let row_means = {
        let mut m = d2.row_sums();
        for v in &mut m {
            *v /= n as f64;
        }
        m
    };
    let grand = d2.sum() / (n * n) as f64;
    let b = Matrix::from_fn(n, n, |i, j| {
        -0.5 * (d2.get(i, j) - row_means[i] - row_means[j] + grand)
    });
    let eig = sym_eigen(&b);
    let mut points = Matrix::zeros(n, dims);
    for t in 0..dims.min(n) {
        let lam = eig.values[t];
        if lam <= 0.0 {
            break; // remaining dimensions carry no positive variance
        }
        let scale = lam.sqrt();
        for i in 0..n {
            points.set(i, t, eig.vectors.get(i, t) * scale);
        }
    }
    let stress = stress_of(&points, d);
    MdsEmbedding {
        points,
        stress,
        iterations: 0,
    }
}

/// Raw stress `Σ_{i<j} (d_ij − δ_ij)²` normalized by `Σ δ_ij²`, where `δ`
/// are the target dissimilarities and `d` the embedded distances.
pub fn stress_of(points: &Matrix, target: &Matrix) -> f64 {
    let n = target.rows();
    let emb = pairwise_distances(points, Metric::Euclidean);
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let delta = target.get(i, j);
            let dij = emb.get(i, j);
            num += (dij - delta) * (dij - delta);
            den += delta * delta;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// SMACOF stress majorization.
///
/// Starts from the classical solution (or random if degenerate) and applies
/// Guttman transforms until the stress improvement drops below `tol`.
///
/// # Panics
/// Panics if `d` is not a valid distance matrix.
pub fn smacof(d: &Matrix, dims: usize, max_iter: usize, tol: f64, seed: u64) -> MdsEmbedding {
    validate_distance_matrix(d).expect("smacof requires a valid distance matrix");
    let n = d.rows();
    if n == 0 || dims == 0 {
        return MdsEmbedding {
            points: Matrix::zeros(n, dims),
            stress: 0.0,
            iterations: 0,
        };
    }
    let mut x = classical_mds(d, dims).points;
    // Degenerate start (all zero) → random jitter.
    if anchors_linalg::frobenius(&x) < 1e-12 {
        let mut rng = StdRng::seed_from_u64(seed);
        x = Matrix::from_fn(n, dims, |_, _| rng.gen::<f64>() - 0.5);
    }
    let mut stress = stress_of(&x, d);
    let mut iterations = 0;
    for it in 0..max_iter {
        // Guttman transform: X' = (1/n) B(X) X with
        // B(X)_ij = -δ_ij / d_ij (i≠j), B_ii = -Σ_j B_ij.
        let emb = pairwise_distances(&x, Metric::Euclidean);
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            let mut diag = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dij = emb.get(i, j);
                let v = if dij > 1e-12 { -d.get(i, j) / dij } else { 0.0 };
                b.set(i, j, v);
                diag -= v;
            }
            b.set(i, i, diag);
        }
        let xn = anchors_linalg::ops::scale(&matmul(&b, &x), 1.0 / n as f64);
        let new_stress = stress_of(&xn, d);
        iterations = it + 1;
        let improved = stress - new_stress;
        x = xn;
        stress = new_stress;
        if improved.abs() < tol {
            break;
        }
    }
    MdsEmbedding {
        points: x,
        stress,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distances of points at known planar positions.
    fn planar_distances() -> (Matrix, Matrix) {
        let pts = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![0.5, 0.5],
        ]);
        let d = pairwise_distances(&pts, Metric::Euclidean);
        (pts, d)
    }

    #[test]
    fn classical_recovers_planar_distances() {
        let (_, d) = planar_distances();
        let emb = classical_mds(&d, 2);
        assert!(
            emb.stress < 1e-10,
            "Euclidean input should embed exactly, stress {}",
            emb.stress
        );
        let emb_d = pairwise_distances(&emb.points, Metric::Euclidean);
        assert!(emb_d.approx_eq(&d, 1e-8));
    }

    #[test]
    fn one_dimensional_line() {
        // Colinear points: distances along a line embed exactly in 1D.
        let pts = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![5.0]]);
        let d = pairwise_distances(&pts, Metric::Euclidean);
        let emb = classical_mds(&d, 1);
        assert!(emb.stress < 1e-10);
    }

    #[test]
    fn smacof_improves_or_matches_classical_on_non_euclidean() {
        // Jaccard-like distances: not exactly Euclidean.
        let mut d = Matrix::zeros(4, 4);
        let vals = [
            (0, 1, 0.9),
            (0, 2, 0.5),
            (0, 3, 1.0),
            (1, 2, 0.4),
            (1, 3, 0.7),
            (2, 3, 0.6),
        ];
        for &(i, j, v) in &vals {
            d.set(i, j, v);
            d.set(j, i, v);
        }
        let c = classical_mds(&d, 2);
        let s = smacof(&d, 2, 300, 1e-10, 11);
        assert!(
            s.stress <= c.stress + 1e-9,
            "SMACOF ({}) must not be worse than its classical start ({})",
            s.stress,
            c.stress
        );
    }

    #[test]
    fn smacof_monotone_stress_overall() {
        let (_, d) = planar_distances();
        // Perturb to make it non-trivially non-Euclidean.
        let mut dd = d.clone();
        dd.set(0, 1, 1.4);
        dd.set(1, 0, 1.4);
        let s1 = smacof(&dd, 2, 5, 0.0, 3);
        let s2 = smacof(&dd, 2, 200, 0.0, 3);
        assert!(s2.stress <= s1.stress + 1e-12, "more iterations can't hurt");
    }

    #[test]
    fn embedding_shape_and_determinism() {
        let (_, d) = planar_distances();
        let e1 = smacof(&d, 2, 50, 1e-9, 42);
        let e2 = smacof(&d, 2, 50, 1e-9, 42);
        assert_eq!(e1.points, e2.points);
        assert_eq!(e1.points.shape(), (5, 2));
    }

    #[test]
    fn empty_and_zero_dim() {
        let d = Matrix::zeros(0, 0);
        let e = classical_mds(&d, 2);
        assert_eq!(e.points.shape(), (0, 2));
        let d1 = Matrix::zeros(3, 3);
        let e1 = classical_mds(&d1, 2);
        // All-zero distances: every point at the origin, zero stress.
        assert!(e1.stress.abs() < 1e-12);
    }
}
