//! Warm-started NNMF: seed the solver from a previous model's factors.
//!
//! The online-serving regime refits the same corpus over and over, each
//! time with a handful of freshly folded-in rows appended. A cold fit
//! throws the previous solution away and pays the full restart ladder
//! (random or NNDSVD inits, tens to hundreds of HALS sweeps); a warm fit
//! starts *at* the previous solution:
//!
//! * **`H₀` = previous `H`** — the type → tag profiles. Appending rows
//!   to `A` does not move the row space much, so the old `H` is already
//!   near the new fixed point.
//! * **`W₀`** — either the caller's stacked loadings (previous `W` rows
//!   plus the fold-in solutions for the new rows, which solved exactly
//!   this NNLS subproblem already), or, when no usable `W` is supplied,
//!   one batched-NNLS lift of the data onto the frozen `H₀` — the same
//!   exact projection the sketched path uses.
//!
//! From that start the ordinary guarded HALS/MU/ANLS loop runs with all
//! of [`NnmfConfig`]'s divergence and budget guards; since the start is
//! deterministic there is exactly one restart. When the warm start is
//! *bad* — an adversarial or stale `H` whose guarded fit diverges — the
//! fit falls back to the full cold ladder of [`crate::try_nnmf`], so a
//! warm refit is never less robust than a cold one, only (usually)
//! faster. The [`WarmReport`] records which path ran and how many
//! iterations it took, which is what the serving diagnostics and the
//! `online_smoke` bench gate on.
//!
//! **When warm starting can't help:** if the appended rows change the
//! latent structure itself (a new dominant topic, a rank the old model
//! never represented), `H₀` is a poor start and the warm fit converges
//! to the old basin or takes as long as cold — the measured
//! iterations-to-converge delta in [`WarmReport`] is the honest signal,
//! not an assumption. Warm starts also cannot change `k`: the previous
//! `H` pins the rank, so rank re-selection still requires a cold scan.

use crate::error::NnmfError;
use crate::nnmf::{
    fit_guarded_scaled, loss, validate, FitDiverged, NnmfConfig, NnmfModel, NnmfWorkspace,
};
use crate::sketched::SketchReport;
use anchors_linalg::sketch::{sketch_rows, SketchConfig};
use anchors_linalg::solve::try_nnls_multi;
use anchors_linalg::{LinalgError, MatKernels, Matrix};
use serde::{Deserialize, Serialize};

/// NNLS tolerance of the warm `W₀` lift — same as the sketched lift.
const WARM_LIFT_TOL: f64 = 1e-12;

/// Factors from a previous fit to seed the next one with.
#[derive(Debug, Clone, Copy)]
pub struct WarmStart<'a> {
    /// The previous `H` (`k × n`): required, pins the rank and the tag
    /// space width.
    pub h: &'a Matrix,
    /// Optional previous `W` rows (`m × k`, matching the *new* data's
    /// row count). When absent or mis-shaped, `W₀` is recovered by one
    /// exact batched-NNLS lift against `h` instead.
    pub w: Option<&'a Matrix>,
}

/// How a warm-started fit behaved — the audit trail the refresh loop
/// and `FlavorDiagnostics` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmReport {
    /// Iterations the warm path used (of the fit that produced the
    /// returned model — cold-ladder iterations if it fell back).
    pub warm_iterations: usize,
    /// Final loss of the returned model.
    pub warm_loss: f64,
    /// Whether the caller's `W` seeded the fit (vs. the NNLS lift).
    pub seeded_w: bool,
    /// Whether the warm start diverged and the cold ladder produced the
    /// returned model instead.
    pub fell_back_cold: bool,
}

/// A warm-started model plus its audit trail.
#[derive(Debug, Clone)]
pub struct WarmModel {
    /// The fitted factors.
    pub model: NnmfModel,
    /// Which path ran and what it cost.
    pub report: WarmReport,
}

/// A warm-started *sketched* model: sketch audit and warm audit side by
/// side.
#[derive(Debug, Clone)]
pub struct WarmSketchedModel {
    /// The lifted factors (exact loss on the full data).
    pub model: NnmfModel,
    /// Sketch parameters and quality.
    pub sketch: SketchReport,
    /// Warm-path audit of the sketch-side fit.
    pub warm: WarmReport,
}

/// Shape/content checks on the warm factors. Coordinates in the value
/// errors refer to the offending entry of the *warm `H`*, not the data.
fn validate_warm<A: MatKernels>(
    a: &A,
    config: &NnmfConfig,
    warm: &WarmStart,
) -> Result<(), NnmfError> {
    let (_, n) = a.shape();
    if warm.h.shape() != (config.k, n) {
        return Err(NnmfError::Linalg(LinalgError::ShapeMismatch {
            op: "nnmf_warm",
            left: (config.k, n),
            right: warm.h.shape(),
        }));
    }
    if let Some((row, col, value)) = warm.h.find_non_finite() {
        return Err(NnmfError::NonFinite { row, col, value });
    }
    if let Some((row, col, value)) = warm.h.find_negative() {
        return Err(NnmfError::NegativeEntry { row, col, value });
    }
    Ok(())
}

/// Fit NNMF warm-started from a previous model's factors. See the
/// module docs for the algorithm and its limits.
///
/// Errors mirror [`crate::try_nnmf`] for malformed data and rank
/// trouble; a mis-shaped warm `H` surfaces as a typed
/// [`LinalgError::ShapeMismatch`]. A diverging warm start falls back to
/// the cold ladder rather than erroring, so [`NnmfError::Diverged`]
/// means even the cold ladder failed.
pub fn try_nnmf_warm<A: MatKernels>(
    a: &A,
    config: &NnmfConfig,
    warm: &WarmStart,
) -> Result<WarmModel, NnmfError> {
    try_nnmf_warm_with(a, config, warm, &mut NnmfWorkspace::new())
}

/// [`try_nnmf_warm`] with a caller-provided workspace, so a refresh loop
/// reuses one set of buffers across periodic refits.
pub fn try_nnmf_warm_with<A: MatKernels>(
    a: &A,
    config: &NnmfConfig,
    warm: &WarmStart,
    ws: &mut NnmfWorkspace,
) -> Result<WarmModel, NnmfError> {
    validate(a, config)?;
    validate_warm(a, config, warm)?;
    let (m, _) = a.shape();

    ws.bind(a, config);
    let seeded_w = matches!(
        warm.w,
        Some(w) if w.shape() == (m, config.k)
            && w.find_non_finite().is_none()
            && w.find_negative().is_none()
    );
    let w0 = if seeded_w {
        warm.w.expect("seeded_w checked presence").clone()
    } else {
        try_nnls_multi(&warm.h.transpose(), a, WARM_LIFT_TOL).map_err(NnmfError::Linalg)?
    };

    // Convergence and divergence are referenced against ½‖A‖² — the
    // magnitude a cold init's loss would have — not the warm start's
    // (possibly already-converged, near-zero) loss, which would turn
    // the relative tolerance into an absolute one near machine epsilon.
    let scale = 0.5 * a.frobenius_sq();
    match fit_guarded_scaled(a, w0, warm.h.clone(), config, config.seed, ws, Some(scale)) {
        Ok(model) => Ok(WarmModel {
            report: WarmReport {
                warm_iterations: model.iterations,
                warm_loss: model.loss,
                seeded_w,
                fell_back_cold: false,
            },
            model,
        }),
        Err(FitDiverged) => {
            // A stale or adversarial H blew the divergence guard: pay
            // the cold ladder instead of failing — warm is an
            // optimization, never a robustness regression.
            let model = crate::try_nnmf_with(a, config, ws)?;
            Ok(WarmModel {
                report: WarmReport {
                    warm_iterations: model.iterations,
                    warm_loss: model.loss,
                    seeded_w,
                    fell_back_cold: true,
                },
                model,
            })
        }
    }
}

/// Warm-started sketched NNMF: sketch the data as
/// [`crate::try_nnmf_sketched`] does, warm-start the sketch-side fit
/// from the previous `H` (the sketch preserves the row space the `H`
/// lives in, so the same seed applies), then lift `W` back with one
/// exact batched-NNLS pass.
pub fn try_nnmf_sketched_warm<A: MatKernels>(
    a: &A,
    config: &NnmfConfig,
    sketch: &SketchConfig,
    warm: &WarmStart,
) -> Result<WarmSketchedModel, NnmfError> {
    validate(a, config)?;
    validate_warm(a, config, warm)?;
    let (m, n) = a.shape();
    if sketch.rows < config.k {
        return Err(NnmfError::RankTooLarge {
            k: config.k,
            shape: (sketch.rows, n),
        });
    }
    let b = sketch_rows(a, sketch).map_err(NnmfError::Linalg)?;

    // Warm fit on the sketch. The caller's W rows are full-data loadings
    // and do not apply to sketch rows, so the sketch-side W₀ always
    // comes from the NNLS lift of B onto the frozen H.
    let mut ws = NnmfWorkspace::new();
    let inner = try_nnmf_warm_with(&b, config, &WarmStart { h: warm.h, w: None }, &mut ws)?;

    let ht = inner.model.h.transpose();
    let w = try_nnls_multi(&ht, a, WARM_LIFT_TOL).map_err(NnmfError::Linalg)?;
    debug_assert_eq!(w.shape(), (m, config.k));
    let exact_loss = loss(a, &w, &inner.model.h);
    if !exact_loss.is_finite() {
        return Err(NnmfError::Linalg(LinalgError::NotFinite {
            op: "nnmf_sketched_warm",
            row: 0,
            col: 0,
            value: exact_loss,
        }));
    }
    let fro2 = a.frobenius_sq();
    let relative_error = if fro2 > 0.0 {
        (2.0 * exact_loss.max(0.0) / fro2).sqrt()
    } else if exact_loss > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let sketch_report = SketchReport {
        kind: sketch.kind.to_string(),
        sketch_rows: sketch.rows,
        sketch_seed: sketch.seed,
        sketch_iterations: inner.model.iterations,
        sketched_loss: inner.model.loss,
        exact_loss,
        relative_error,
    };
    let model = NnmfModel {
        w,
        h: inner.model.h,
        loss: exact_loss,
        iterations: inner.model.iterations,
        converged: inner.model.converged,
        winning_seed: inner.model.winning_seed,
        recovery: inner.model.recovery,
    };
    Ok(WarmSketchedModel {
        model,
        sketch: sketch_report,
        warm: inner.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::try_nnmf;
    use anchors_linalg::{CsrMatrix, SketchKind};

    /// Planted rank-3 nonnegative matrix, same shape family as the
    /// sketched tests.
    fn planted(m: usize, n: usize) -> Matrix {
        let k = 3;
        let w0 = Matrix::from_fn(m, k, |i, t| {
            if i % k == t {
                1.0 + (i % 5) as f64 * 0.1
            } else {
                0.0
            }
        });
        let h0 = Matrix::from_fn(k, n, |t, j| {
            if j % k == t {
                0.8 + (j % 7) as f64 * 0.05
            } else {
                0.02
            }
        });
        anchors_linalg::matmul(&w0, &h0)
    }

    fn cfg(k: usize) -> NnmfConfig {
        NnmfConfig {
            max_iter: 400,
            tol: 1e-6,
            ..NnmfConfig::paper_default(k)
        }
    }

    /// Append `extra` new rows (shifted copies of early rows) to `a`.
    fn grown(a: &Matrix, extra: usize) -> Matrix {
        let (m, n) = a.shape();
        Matrix::from_fn(m + extra, n, |i, j| {
            if i < m {
                a.get(i, j)
            } else {
                a.get((i * 7 + 3) % m, j) * 1.1
            }
        })
    }

    #[test]
    fn warm_refit_on_same_data_stays_at_the_fixed_point() {
        // The parity property: warm-starting from a converged fit of the
        // *same* data must converge immediately to (essentially) the
        // same fixed point — loss within tolerance, and H pointwise
        // close.
        let a = planted(60, 24);
        let cold = try_nnmf(&a, &cfg(3)).expect("cold fit");
        let warm = try_nnmf_warm(
            &a,
            &cfg(3),
            &WarmStart {
                h: &cold.h,
                w: Some(&cold.w),
            },
        )
        .expect("warm fit");
        assert!(!warm.report.fell_back_cold);
        assert!(warm.report.seeded_w);
        assert!(
            warm.model.loss <= cold.loss * 1.001 + 1e-9,
            "warm loss {} must not regress from cold {}",
            warm.model.loss,
            cold.loss
        );
        assert!(
            warm.model.iterations <= cold.iterations,
            "warm from the fixed point ({} iters) must not exceed cold ({})",
            warm.model.iterations,
            cold.iterations
        );
        let max_h_diff = (0..cold.h.rows())
            .flat_map(|i| (0..cold.h.cols()).map(move |j| (i, j)))
            .map(|(i, j)| (cold.h.get(i, j) - warm.model.h.get(i, j)).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_h_diff < 1e-2,
            "warm H drifted {max_h_diff} from the cold fixed point"
        );
    }

    #[test]
    fn warm_refit_on_grown_data_converges_and_reports() {
        let a = planted(60, 24);
        let cold = try_nnmf(&a, &cfg(3)).expect("cold fit");
        let big = grown(&a, 6);
        // New rows exist, so the caller has no full W — the NNLS lift
        // path builds W₀.
        let warm = try_nnmf_warm(
            &big,
            &cfg(3),
            &WarmStart {
                h: &cold.h,
                w: None,
            },
        )
        .expect("warm fit on grown data");
        assert!(!warm.report.seeded_w);
        assert!(!warm.report.fell_back_cold);
        assert!(warm.model.w.is_nonnegative());
        assert!(warm.model.h.is_nonnegative());
        assert_eq!(warm.model.w.shape(), (66, 3));
        let rel = warm.model.relative_error_on(&big);
        assert!(rel < 0.05, "grown-data warm refit err {rel}");
        assert_eq!(warm.report.warm_iterations, warm.model.iterations);
        assert_eq!(warm.report.warm_loss, warm.model.loss);
    }

    #[test]
    fn warm_is_deterministic_and_storage_independent() {
        let a = planted(40, 16);
        let cold = try_nnmf(&a, &cfg(3)).expect("cold");
        let csr = CsrMatrix::from_dense(&a);
        let ws = WarmStart {
            h: &cold.h,
            w: None,
        };
        let m1 = try_nnmf_warm(&a, &cfg(3), &ws).expect("dense");
        let m2 = try_nnmf_warm(&a, &cfg(3), &ws).expect("dense again");
        let m3 = try_nnmf_warm(&csr, &cfg(3), &ws).expect("csr");
        assert_eq!(m1.model.w, m2.model.w);
        assert_eq!(m1.model.h, m2.model.h);
        assert_eq!(m1.model.w, m3.model.w, "dense/CSR bitwise-paired");
        assert_eq!(m1.model.h, m3.model.h);
        assert_eq!(m1.report, m3.report);
    }

    #[test]
    fn misshaped_or_malformed_warm_factors_surface_typed_errors() {
        let a = planted(20, 10);
        let wrong = Matrix::zeros(3, 7); // wrong column count
        let err = try_nnmf_warm(&a, &cfg(3), &WarmStart { h: &wrong, w: None }).unwrap_err();
        assert!(
            matches!(
                err,
                NnmfError::Linalg(LinalgError::ShapeMismatch {
                    op: "nnmf_warm",
                    ..
                })
            ),
            "{err:?}"
        );
        let mut neg = Matrix::zeros(3, 10);
        neg.set(1, 2, -0.5);
        assert!(matches!(
            try_nnmf_warm(&a, &cfg(3), &WarmStart { h: &neg, w: None }),
            Err(NnmfError::NegativeEntry { row: 1, col: 2, .. })
        ));
        let mut nan = Matrix::zeros(3, 10);
        nan.set(0, 0, f64::NAN);
        assert!(matches!(
            try_nnmf_warm(&a, &cfg(3), &WarmStart { h: &nan, w: None }),
            Err(NnmfError::NonFinite { .. })
        ));
    }

    #[test]
    fn misshaped_w_falls_back_to_the_lift_not_an_error() {
        let a = planted(30, 12);
        let cold = try_nnmf(&a, &cfg(3)).expect("cold");
        let wrong_rows = Matrix::zeros(7, 3);
        let warm = try_nnmf_warm(
            &a,
            &cfg(3),
            &WarmStart {
                h: &cold.h,
                w: Some(&wrong_rows),
            },
        )
        .expect("lift path");
        assert!(!warm.report.seeded_w, "unusable W is ignored, not fatal");
    }

    #[test]
    fn sketched_warm_fit_is_feasible_and_accurate() {
        let a = planted(60, 24);
        let cold = try_nnmf(&a, &cfg(3)).expect("cold");
        let big = grown(&a, 6);
        for kind in [SketchKind::Gaussian, SketchKind::CountSketch] {
            let sk = SketchConfig {
                kind,
                rows: 24,
                seed: 11,
            };
            let fitted = try_nnmf_sketched_warm(
                &big,
                &cfg(3),
                &sk,
                &WarmStart {
                    h: &cold.h,
                    w: None,
                },
            )
            .expect("sketched warm fit");
            assert!(fitted.model.w.is_nonnegative(), "{kind}: W ≥ 0");
            assert!(fitted.model.h.is_nonnegative(), "{kind}: H ≥ 0");
            assert!(
                fitted.sketch.relative_error < 0.05,
                "{kind}: planted rank-3 should nearly factor, err {}",
                fitted.sketch.relative_error
            );
            assert_eq!(fitted.sketch.exact_loss, fitted.model.loss);
            assert!(!fitted.warm.fell_back_cold);
        }
    }
}
