//! Non-negative matrix factorization (Section 4.1 of the paper).
//!
//! Factors a nonnegative `A` (courses × curriculum tags) into `W × H` with
//! `W ≥ 0` (courses × k: course → type intensities) and `H ≥ 0`
//! (k × tags: type → curriculum profile), minimizing the Frobenius loss
//! `½‖A − WH‖_F²`.
//!
//! Two iterative solvers are provided:
//!
//! * [`Solver::MultiplicativeUpdate`] — Lee & Seung (2000). Monotone in the
//!   Frobenius objective; simple and robust.
//! * [`Solver::Hals`] — hierarchical alternating least squares (the
//!   coordinate-descent family scikit-learn defaults to). Typically
//!   converges in far fewer iterations.
//!
//! The paper computes its NNMF "using scikit learn v1.3.0 with default
//! parameters and random initialization"; [`NnmfConfig::paper_default`]
//! mirrors that setup (HALS/CD solver, random init) with multi-restart,
//! keeping the best of several seeded runs since random-init NNMF is only
//! locally optimal.
//!
//! ## Storage-generic solving
//!
//! [`try_nnmf`] is generic over [`MatKernels`], so the same code path —
//! including restarts, divergence guards, wall-clock budgets, and the
//! recovery ladder — serves dense [`Matrix`] and [`anchors_linalg::CsrMatrix`] inputs. The
//! kernels are bitwise-paired across backends (see
//! `anchors_linalg::kernels`), so for a CSR matrix obtained by exact-zero
//! sparsification the factors, winning seed, and [`NnmfRecovery`] flags are
//! identical to the dense fit.
//!
//! ## Allocation-free iteration
//!
//! All per-iteration products live in a reusable [`NnmfWorkspace`]
//! (`AᵀW`, `WᵀW`, `AHᵀ`, `HHᵀ`, the MU denominators, and update scratch).
//! After the workspace is warm, HALS and MU sweeps and the amortized loss
//! checks perform zero heap allocations; [`try_nnmf_with`] lets
//! rank-selection and consensus loops share one workspace across fits.
//!
//! ## Deterministic restart fan-out
//!
//! The restart loop fans out across threads via
//! [`anchors_linalg::parallel`] (a [`WorkspacePool`] hands each worker its
//! own reusable buffers), then reduces the collected outcomes serially in
//! restart order — first strictly-better loss wins, exactly the serial
//! rule. The winning model, `winning_seed`, and all [`NnmfRecovery`]
//! accounting (including `failed_restarts` from divergent fits) are
//! bitwise identical at any thread count, including fully serial runs.

use crate::error::NnmfError;
use crate::init::{init_factors, random_from_stats, Init};
use anchors_linalg::microkernel;
use anchors_linalg::ops::{dot, matmul, matmul_a_bt_into, matmul_at_b_into, matmul_into};
#[cfg(test)]
use anchors_linalg::CsrMatrix;
use anchors_linalg::{parallel, MatKernels, Matrix};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// Epsilon guarding divisions in the multiplicative updates.
const EPS: f64 = 1e-12;

/// Loss blow-up factor (relative to the initial loss) beyond which a
/// restart is declared divergent. The monotone solvers only reach this
/// under numerical breakdown (overflow, NaN poisoning).
const DIVERGENCE_FACTOR: f64 = 1e6;

/// Salt mixed into the seed for the reseeded recovery round, so retries
/// explore a disjoint set of initializations.
const RESEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// NNMF solver family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Solver {
    /// Lee–Seung multiplicative updates (Frobenius objective).
    MultiplicativeUpdate,
    /// Hierarchical alternating least squares (coordinate descent).
    Hals,
    /// Alternating non-negative least squares: each block subproblem is
    /// solved exactly with Lawson–Hanson NNLS. Few sweeps, expensive
    /// sweeps — the quality reference for the other solvers.
    Anls,
}

/// Configuration of one NNMF computation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NnmfConfig {
    /// Number of latent types `k`.
    pub k: usize,
    /// Solver family.
    pub solver: Solver,
    /// Initialization scheme.
    pub init: Init,
    /// Maximum iterations per restart.
    pub max_iter: usize,
    /// Relative-improvement convergence tolerance on the loss.
    pub tol: f64,
    /// Number of random restarts (best loss wins). Ignored for
    /// deterministic inits (NNDSVD), which run once.
    pub restarts: usize,
    /// RNG seed for the first restart; restart `r` uses `seed + r`.
    pub seed: u64,
    /// Optional wall-clock budget per restart, in milliseconds. When a
    /// restart exceeds it the current iterate is returned as-is (marked
    /// unconverged) rather than running out the iteration budget. `None`
    /// (the default, and the value deserialized from configs predating the
    /// field) disables the check.
    #[serde(default)]
    pub max_wall_ms: Option<u64>,
}

impl NnmfConfig {
    /// Mirror of the paper's setup: scikit-learn defaults (CD solver, `tol
    /// = 1e-4`, `max_iter = 200`) with random initialization, plus 8
    /// restarts for stability.
    pub fn paper_default(k: usize) -> Self {
        NnmfConfig {
            k,
            solver: Solver::Hals,
            init: Init::Random,
            max_iter: 200,
            tol: 1e-4,
            restarts: 8,
            seed: 0x5C_2023,
            max_wall_ms: None,
        }
    }

    /// Multiplicative-update variant of the same configuration (ablation
    /// baseline; MU needs more iterations to reach the same loss).
    pub fn multiplicative(k: usize) -> Self {
        NnmfConfig {
            solver: Solver::MultiplicativeUpdate,
            max_iter: 500,
            ..Self::paper_default(k)
        }
    }

    /// ANLS variant (exact block subproblems, few sweeps).
    pub fn anls(k: usize) -> Self {
        NnmfConfig {
            solver: Solver::Anls,
            max_iter: 30,
            restarts: 2,
            ..Self::paper_default(k)
        }
    }
}

/// What the recovery ladder had to do to produce a model. All-default
/// means the fit succeeded on the configured restarts with no failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NnmfRecovery {
    /// Restarts that diverged (non-finite or runaway loss) and were
    /// discarded, across all rounds.
    pub failed_restarts: usize,
    /// Whether a reseeded round of restarts was needed.
    pub reseeded: bool,
    /// Whether the deterministic NNDSVD fallback produced the model.
    pub nndsvd_fallback: bool,
    /// Restarts cut short by the per-restart wall-clock budget.
    pub budget_exceeded: usize,
}

impl NnmfRecovery {
    /// True iff the fit needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        *self == NnmfRecovery::default()
    }
}

/// A fitted factorization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NnmfModel {
    /// Courses × k loadings.
    pub w: Matrix,
    /// k × tags type profiles.
    pub h: Matrix,
    /// Final loss `½‖A − WH‖_F²`.
    pub loss: f64,
    /// Iterations used by the winning restart.
    pub iterations: usize,
    /// Whether the winning restart met `tol` before `max_iter`.
    pub converged: bool,
    /// Seed of the winning restart.
    pub winning_seed: u64,
    /// Recovery actions taken to obtain this model.
    pub recovery: NnmfRecovery,
}

impl NnmfModel {
    /// Reconstruction `W × H`.
    pub fn reconstruct(&self) -> Matrix {
        matmul(&self.w, &self.h)
    }

    /// Relative reconstruction error `‖A − WH‖_F / ‖A‖_F`.
    pub fn relative_error(&self, a: &Matrix) -> f64 {
        anchors_linalg::relative_error(a, &self.reconstruct())
    }

    /// Relative reconstruction error against either storage backend,
    /// computed without materializing `W × H` (`√(2·loss / ‖A‖²)` with the
    /// residual evaluated rowwise).
    pub fn relative_error_on<A: MatKernels>(&self, a: &A) -> f64 {
        let fro2 = a.frobenius_sq();
        let mut scratch = vec![0.0; a.cols()];
        let l = a.residual_loss(&self.w, &self.h, &mut scratch).max(0.0);
        if fro2 > 0.0 {
            (2.0 * l / fro2).sqrt()
        } else if l > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Rank (number of types).
    pub fn k(&self) -> usize {
        self.w.cols()
    }

    /// Index of the dominant type of each row of `W` (course → type).
    pub fn dominant_types(&self) -> Vec<usize> {
        (0..self.w.rows())
            .map(|i| {
                let row = self.w.row(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite W"))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Normalize so each row of `H` has unit norm, rescaling `W` columns to
    /// keep `W × H` unchanged. Makes `W` intensities comparable across
    /// types (used before rendering the Figure 2/5/7 heat maps).
    pub fn normalize(&mut self) {
        for t in 0..self.h.rows() {
            let n = anchors_linalg::norms::norm2(self.h.row(t));
            if n > 0.0 {
                for v in self.h.row_mut(t) {
                    *v /= n;
                }
                for i in 0..self.w.rows() {
                    let v = self.w.get(i, t);
                    self.w.set(i, t, v * n);
                }
            }
        }
    }

    /// Top-`n` column indices of type `t`'s profile in `H`, by weight —
    /// the curriculum tags that define the type.
    pub fn top_tags_of_type(&self, t: usize, n: usize) -> Vec<(usize, f64)> {
        let row = self.h.row(t);
        let mut idx: Vec<(usize, f64)> = row.iter().copied().enumerate().collect();
        idx.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite H"));
        idx.truncate(n);
        idx
    }
}

/// Loss `½‖A − WH‖_F²` on either storage backend, evaluated rowwise
/// without materializing `W × H`.
pub fn loss<A: MatKernels>(a: &A, w: &Matrix, h: &Matrix) -> f64 {
    let mut scratch = vec![0.0; a.cols()];
    a.residual_loss(w, h, &mut scratch)
}

/// Reusable buffers for the fit loop, sized once per `(shape, k, solver)`
/// and reused across iterations, restarts, and — via [`try_nnmf_with`] —
/// across entire fits. A warm workspace makes HALS/MU iterations and the
/// amortized loss checks allocation-free.
#[derive(Debug, Clone)]
pub struct NnmfWorkspace {
    shape: (usize, usize, usize),
    mu_bufs: bool,
    /// `Aᵀ W`, `n × k` (transposed form of `Wᵀ A`).
    atw: Matrix,
    /// `Wᵀ W`, `k × k`.
    wtw: Matrix,
    /// `A Hᵀ`, `m × k`.
    aht: Matrix,
    /// `H Hᵀ`, `k × k`.
    hht: Matrix,
    /// `WᵀW H`, `k × n` (multiplicative updates only).
    wtwh: Matrix,
    /// `W HHᵀ`, `m × k` (multiplicative updates only).
    whht: Matrix,
    /// HALS row-update scratch, length `n`.
    delta: Vec<f64>,
    /// Negated Gram-row scratch for the HALS H-update, length `k`.
    neg_coeffs: Vec<f64>,
    /// Residual-loss reconstruction scratch, length `n`.
    row_scratch: Vec<f64>,
    /// `‖A‖_F²` of the matrix currently being fitted. Non-finite values
    /// switch the loss to the direct residual evaluation.
    a_frob_sq: f64,
    /// Dense view of the input, materialized lazily for the SVD-based
    /// initializers and the ANLS solver; cached across restarts of one fit.
    dense_view: Option<Matrix>,
}

impl NnmfWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        NnmfWorkspace {
            shape: (0, 0, 0),
            mu_bufs: false,
            atw: Matrix::zeros(0, 0),
            wtw: Matrix::zeros(0, 0),
            aht: Matrix::zeros(0, 0),
            hht: Matrix::zeros(0, 0),
            wtwh: Matrix::zeros(0, 0),
            whht: Matrix::zeros(0, 0),
            delta: Vec::new(),
            neg_coeffs: Vec::new(),
            row_scratch: Vec::new(),
            a_frob_sq: 0.0,
            dense_view: None,
        }
    }

    /// Size buffers for an `m × n` input at rank `k`; a no-op when the
    /// workspace is already warm for those dimensions.
    fn ensure(&mut self, m: usize, n: usize, k: usize, solver: Solver) {
        if self.shape != (m, n, k) {
            self.shape = (m, n, k);
            self.atw = Matrix::zeros(n, k);
            self.wtw = Matrix::zeros(k, k);
            self.aht = Matrix::zeros(m, k);
            self.hht = Matrix::zeros(k, k);
            self.wtwh = Matrix::zeros(0, 0);
            self.whht = Matrix::zeros(0, 0);
            self.mu_bufs = false;
            self.delta = vec![0.0; n];
            self.neg_coeffs = vec![0.0; k];
            self.row_scratch = vec![0.0; n];
        }
        if matches!(solver, Solver::MultiplicativeUpdate) && !self.mu_bufs {
            self.wtwh = Matrix::zeros(k, n);
            self.whht = Matrix::zeros(m, k);
            self.mu_bufs = true;
        }
    }

    /// Bind the workspace to a new input matrix: drop the previous dense
    /// view, cache `‖A‖²`, and size the buffers.
    pub(crate) fn bind<A: MatKernels>(&mut self, a: &A, config: &NnmfConfig) {
        self.dense_view = None;
        self.a_frob_sq = a.frobenius_sq();
        let (m, n) = a.shape();
        self.ensure(m, n, config.k, config.solver);
    }

    /// The dense view of `a`, materialized on first request.
    fn dense_view<A: MatKernels>(&mut self, a: &A) -> &Matrix {
        if self.dense_view.is_none() {
            self.dense_view = Some(a.to_dense());
        }
        self.dense_view.as_ref().expect("just materialized")
    }
}

impl Default for NnmfWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// A pool of [`NnmfWorkspace`]s backing the outer-parallel fit loops
/// (restart fan-out, rank scans, consensus runs).
///
/// Each concurrent fit borrows a workspace for the duration of one fit and
/// returns it afterwards, so a fan-out of `R` fits across `T` threads warms
/// at most `T` workspaces and then reuses them — the allocation-free
/// iteration property survives parallelism. Under a serial run the pool
/// holds a single workspace that every fit reuses, exactly like the old
/// threaded-through `&mut NnmfWorkspace`.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<NnmfWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created (then recycled) on demand.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Take a free workspace, or a cold one if none is available.
    pub fn acquire(&self) -> NnmfWorkspace {
        self.free
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Return a workspace for reuse by later fits.
    pub fn release(&self, ws: NnmfWorkspace) {
        self.free.lock().expect("workspace pool poisoned").push(ws);
    }

    /// Run `f` with a pooled workspace, recycling it afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut NnmfWorkspace) -> R) -> R {
        let mut ws = self.acquire();
        let out = f(&mut ws);
        self.release(ws);
        out
    }
}

/// Fan `f` out over `0..n`, each call running on a pooled workspace.
/// Delegates the parallel/serial decision (and the nested-fan-out and
/// inner-kernel gating) to [`parallel::outer_map`]; results come back in
/// index order either way.
pub(crate) fn fan_out_pooled<T: Send>(
    n: usize,
    pool: &WorkspacePool,
    f: impl Fn(usize, &mut NnmfWorkspace) -> T + Sync + Send,
) -> Vec<T> {
    parallel::outer_map(n, |i| pool.with(|ws| f(i, ws)))
}

/// Validate NNMF inputs, mapping each contract violation to its typed
/// error. Shared with the sketched path, which adds its own sketch-shape
/// checks on top.
pub(crate) fn validate<A: MatKernels>(a: &A, config: &NnmfConfig) -> Result<(), NnmfError> {
    if let Some((row, col, value)) = a.find_non_finite() {
        return Err(NnmfError::NonFinite { row, col, value });
    }
    if let Some((row, col, value)) = a.find_negative() {
        return Err(NnmfError::NegativeEntry { row, col, value });
    }
    if config.k == 0 {
        return Err(NnmfError::ZeroRank);
    }
    if config.k > a.rows().min(a.cols()).max(1) {
        return Err(NnmfError::RankTooLarge {
            k: config.k,
            shape: a.shape(),
        });
    }
    Ok(())
}

/// Initial factors on either backend. Random init needs only shape and
/// mean (no dense view); the SVD-based inits run on the cached dense view.
fn initial_factors<A: MatKernels>(
    a: &A,
    k: usize,
    init: Init,
    seed: u64,
    ws: &mut NnmfWorkspace,
) -> (Matrix, Matrix) {
    match init {
        Init::Random => {
            let (m, n) = a.shape();
            let mean = if m == 0 || n == 0 {
                0.0
            } else {
                a.sum() / (m * n) as f64
            };
            random_from_stats(m, n, k, mean, seed)
        }
        _ => init_factors(ws.dense_view(a), k, init, seed),
    }
}

/// Fit an NNMF model, returning a typed error instead of panicking on
/// malformed input, and recovering from numerically divergent restarts.
///
/// Recovery ladder, applied when every configured restart diverges
/// (non-finite or runaway loss):
///
/// 1. one extra round of restarts with salted seeds (disjoint inits);
/// 2. deterministic NNDSVD initialization (then NNDSVDa);
/// 3. give up with [`NnmfError::Diverged`].
///
/// The actions taken are recorded in [`NnmfModel::recovery`]. Works
/// identically on dense and CSR storage.
pub fn try_nnmf<A: MatKernels>(a: &A, config: &NnmfConfig) -> Result<NnmfModel, NnmfError> {
    try_nnmf_with(a, config, &mut NnmfWorkspace::new())
}

/// [`try_nnmf`] with a caller-provided workspace, so loops over many fits
/// (rank scans, consensus restarts) reuse one set of buffers.
pub fn try_nnmf_with<A: MatKernels>(
    a: &A,
    config: &NnmfConfig,
    ws: &mut NnmfWorkspace,
) -> Result<NnmfModel, NnmfError> {
    validate(a, config)?;
    let deterministic_init = matches!(config.init, Init::Nndsvd | Init::NndsvdA);
    let restarts = if deterministic_init {
        1
    } else {
        config.restarts.max(1)
    };

    // Seed a per-call pool with the caller's (possibly warm) workspace so
    // a serial run reuses exactly the buffers the threaded-through `ws`
    // used to; under fan-out the pool grows to one workspace per worker.
    let pool = WorkspacePool::new();
    pool.release(std::mem::take(ws));

    let mut recovery = NnmfRecovery::default();
    let mut attempts = 0;
    let mut last_seed = config.seed;
    let mut best: Option<NnmfModel> = None;

    // One round of seeded restarts: fan the fits out, then reduce the
    // collected outcomes sequentially in restart order. The reduction
    // keeps the serial rule — first strictly-better loss wins, ties keep
    // the earliest restart — a total order on (loss, restart index), so
    // the winning model, `attempts`/`last_seed`, and every recovery
    // counter are bitwise identical to a serial run at any thread count.
    let run_round = |init: Init,
                     base_seed: u64,
                     rounds: usize,
                     best: &mut Option<NnmfModel>,
                     recovery: &mut NnmfRecovery,
                     attempts: &mut usize,
                     last_seed: &mut u64| {
        let outcomes = fan_out_pooled(rounds, &pool, |r, ws| {
            let seed = base_seed.wrapping_add(r as u64);
            ws.bind(a, config);
            let (w0, h0) = initial_factors(a, config.k, init, seed, ws);
            fit_guarded(a, w0, h0, config, seed, ws)
        });
        for (r, outcome) in outcomes.into_iter().enumerate() {
            *attempts += 1;
            *last_seed = base_seed.wrapping_add(r as u64);
            match outcome {
                Ok(model) => {
                    if model.recovery.budget_exceeded > 0 {
                        recovery.budget_exceeded += 1;
                    }
                    let better = best.as_ref().map(|b| model.loss < b.loss).unwrap_or(true);
                    if better {
                        *best = Some(model);
                    }
                }
                Err(FitDiverged) => recovery.failed_restarts += 1,
            }
        }
    };

    run_round(
        config.init,
        config.seed,
        restarts,
        &mut best,
        &mut recovery,
        &mut attempts,
        &mut last_seed,
    );
    if best.is_none() && !deterministic_init {
        // Round 2: disjoint seeds. Only meaningful for random init — a
        // deterministic init would reproduce the identical failure.
        recovery.reseeded = true;
        run_round(
            config.init,
            config.seed ^ RESEED_SALT,
            restarts,
            &mut best,
            &mut recovery,
            &mut attempts,
            &mut last_seed,
        );
    }
    if best.is_none() {
        // Round 3: deterministic SVD-based inits, which pre-scale extreme
        // inputs and tend to start close enough to avoid overflow.
        for init in [Init::Nndsvd, Init::NndsvdA] {
            if init == config.init {
                continue;
            }
            recovery.nndsvd_fallback = true;
            run_round(
                init,
                config.seed,
                1,
                &mut best,
                &mut recovery,
                &mut attempts,
                &mut last_seed,
            );
            if best.is_some() {
                break;
            }
        }
    }

    // Hand a (warm) workspace back to the caller for its next fit.
    *ws = pool.acquire();

    match best {
        Some(mut model) => {
            let budget = model.recovery.budget_exceeded;
            model.recovery = recovery;
            // Keep the winning restart's own budget flag if the round
            // counter missed it (it can't, but stay conservative).
            model.recovery.budget_exceeded = model.recovery.budget_exceeded.max(budget);
            Ok(model)
        }
        None => Err(NnmfError::Diverged {
            attempts,
            last_seed,
        }),
    }
}

/// Fit an NNMF model on either storage backend.
///
/// # Panics
/// Panics if `a` has negative or non-finite entries, or `k == 0`, or `k`
/// exceeds `min(rows, cols)` of a nonempty matrix, or every restart (and
/// the recovery ladder) diverges. Use [`try_nnmf`] to handle these as
/// typed [`NnmfError`]s instead.
pub fn nnmf<A: MatKernels>(a: &A, config: &NnmfConfig) -> NnmfModel {
    match try_nnmf(a, config) {
        Ok(model) => model,
        Err(e) => panic!("{e}"),
    }
}

/// Marker for a restart whose loss went non-finite or blew past the
/// divergence threshold.
pub(crate) struct FitDiverged;

/// Loss `½‖A − WH‖²` through the workspace, allocation-free. Uses the Gram
/// identity `½(‖A‖² − 2·tr(Wᵀ(AHᵀ)) + Σ(WᵀW)⊙(HHᵀ))`; when `‖A‖²` itself
/// overflows, falls back to the direct rowwise residual, which stays
/// finite whenever the reconstruction is relatively accurate.
fn loss_ws<A: MatKernels>(a: &A, w: &Matrix, h: &Matrix, ws: &mut NnmfWorkspace) -> f64 {
    if !ws.a_frob_sq.is_finite() {
        return a.residual_loss(w, h, &mut ws.row_scratch);
    }
    a.a_bt_into(h, &mut ws.aht);
    matmul_at_b_into(w, w, &mut ws.wtw);
    matmul_a_bt_into(h, h, &mut ws.hht);
    let cross = dot(w.as_slice(), ws.aht.as_slice());
    let quad = dot(ws.wtw.as_slice(), ws.hht.as_slice());
    0.5 * (ws.a_frob_sq - 2.0 * cross + quad)
}

/// One guarded restart: the historical `fit_single` loop plus divergence
/// detection at every amortized loss check and an optional per-restart
/// wall-clock budget.
pub(crate) fn fit_guarded<A: MatKernels>(
    a: &A,
    w: Matrix,
    h: Matrix,
    config: &NnmfConfig,
    seed: u64,
    ws: &mut NnmfWorkspace,
) -> Result<NnmfModel, FitDiverged> {
    fit_guarded_scaled(a, w, h, config, seed, ws, None)
}

/// [`fit_guarded`] with an explicit convergence/divergence reference
/// scale. The default (`None`) keeps the historical behavior — both the
/// relative-improvement tolerance and the divergence threshold are
/// measured against the *initial* loss, which for a cold init is
/// O(½‖A‖²). A warm start that begins at an already-converged loss would
/// make that reference pathologically small (grinding out improvements
/// relative to a near-zero denominator), so the warm path passes
/// `Some(½‖A‖²)` — the same magnitude a cold init would have had.
pub(crate) fn fit_guarded_scaled<A: MatKernels>(
    a: &A,
    mut w: Matrix,
    mut h: Matrix,
    config: &NnmfConfig,
    seed: u64,
    ws: &mut NnmfWorkspace,
    loss_scale: Option<f64>,
) -> Result<NnmfModel, FitDiverged> {
    let started = Instant::now();
    let mut prev_loss = loss_ws(a, &w, &h, ws);
    if !prev_loss.is_finite() {
        return Err(FitDiverged);
    }
    let init_loss = loss_scale.unwrap_or(prev_loss).max(EPS);
    let mut iterations = 0;
    let mut converged = false;
    let mut budget_hit = false;
    for it in 0..config.max_iter {
        match config.solver {
            Solver::MultiplicativeUpdate => mu_step_ws(a, &mut w, &mut h, ws),
            Solver::Hals => hals_step_ws(a, &mut w, &mut h, ws),
            Solver::Anls => anls_step_ws(a, &mut w, &mut h, ws),
        }
        iterations = it + 1;
        // Convergence is checked every 10 iterations like scikit-learn to
        // amortize the loss evaluation; divergence piggybacks on the same
        // checkpoints so the happy path stays cost-identical.
        if iterations % 10 == 0 || iterations == config.max_iter {
            let cur = loss_ws(a, &w, &h, ws);
            if !cur.is_finite() || cur > init_loss * DIVERGENCE_FACTOR {
                return Err(FitDiverged);
            }
            if (prev_loss - cur).abs() / init_loss < config.tol {
                converged = true;
                break;
            }
            prev_loss = cur;
        }
        if let Some(ms) = config.max_wall_ms {
            if started.elapsed().as_millis() as u64 >= ms {
                budget_hit = true;
                break;
            }
        }
    }
    let final_loss = loss_ws(a, &w, &h, ws);
    if !final_loss.is_finite() {
        return Err(FitDiverged);
    }
    Ok(NnmfModel {
        w,
        h,
        loss: final_loss,
        iterations,
        converged,
        winning_seed: seed,
        recovery: NnmfRecovery {
            budget_exceeded: usize::from(budget_hit),
            ..NnmfRecovery::default()
        },
    })
}

/// Single restart with caller-provided initialization, kept for the
/// solver-comparison tests.
#[cfg(test)]
fn fit_single<A: MatKernels>(
    a: &A,
    w: Matrix,
    h: Matrix,
    config: &NnmfConfig,
    seed: u64,
) -> NnmfModel {
    let mut ws = NnmfWorkspace::new();
    ws.bind(a, config);
    match fit_guarded(a, w, h, config, seed, &mut ws) {
        Ok(model) => model,
        Err(FitDiverged) => {
            panic!("NNMF restart diverged (seed {seed}); use try_nnmf for typed recovery")
        }
    }
}

/// One Lee–Seung multiplicative sweep (H then W), allocation-free through
/// the workspace.
fn mu_step_ws<A: MatKernels>(a: &A, w: &mut Matrix, h: &mut Matrix, ws: &mut NnmfWorkspace) {
    // H ← H ⊙ (WᵀA) / (WᵀW H); the numerator is read from AᵀW transposed.
    a.at_b_into(w, &mut ws.atw);
    matmul_at_b_into(w, w, &mut ws.wtw);
    matmul_into(&ws.wtw, h, &mut ws.wtwh);
    let k = h.rows();
    for t in 0..k {
        let denom = ws.wtwh.row(t);
        let hrow = h.row_mut(t);
        for (j, (hv, dv)) in hrow.iter_mut().zip(denom).enumerate() {
            *hv *= ws.atw.get(j, t) / (dv + EPS);
        }
    }
    // W ← W ⊙ (AHᵀ) / (W H Hᵀ)
    a.a_bt_into(h, &mut ws.aht);
    matmul_a_bt_into(h, h, &mut ws.hht);
    matmul_into(w, &ws.hht, &mut ws.whht);
    for (wv, (nv, dv)) in w
        .as_mut_slice()
        .iter_mut()
        .zip(ws.aht.as_slice().iter().zip(ws.whht.as_slice()))
    {
        *wv *= nv / (dv + EPS);
    }
}

/// One HALS sweep: update each column of `W` and each row of `H` in closed
/// form holding the rest fixed. Allocation-free through the workspace.
#[allow(clippy::needless_range_loop)] // Gram indices follow the update rule
fn hals_step_ws<A: MatKernels>(a: &A, w: &mut Matrix, h: &mut Matrix, ws: &mut NnmfWorkspace) {
    let k = w.cols();
    // --- Update H rows: H[t,:] ← max(0, H[t,:] + (WᵀA − WᵀW H)[t,:] / (WᵀW)[t,t])
    a.at_b_into(w, &mut ws.atw);
    matmul_at_b_into(w, w, &mut ws.wtw);
    for t in 0..k {
        let gtt = ws.wtw.get(t, t);
        if gtt <= EPS {
            continue;
        }
        // delta = (WᵀA)[t,:] − Σ_s (WᵀW)[t,s] H[s,:], with (WᵀA)[t,:] read
        // as the t-th column of AᵀW.
        for (j, d) in ws.delta.iter_mut().enumerate() {
            *d = ws.atw.get(j, t);
        }
        // `d -= g·hv` ≡ `d += (−g)·hv` bitwise (IEEE negation is exact), so
        // the subtraction routes through the shape-dispatched axpy kernel
        // with the Gram row negated; the kernel's `coeff == 0.0` skip is the
        // historical `g == 0.0` skip (−0.0 == 0.0 compares equal).
        for (s, nc) in ws.neg_coeffs.iter_mut().enumerate() {
            *nc = -ws.wtw.get(t, s);
        }
        microkernel::axpy_rows(&ws.neg_coeffs, h, &mut ws.delta);
        let hrow = h.row_mut(t);
        for (hv, d) in hrow.iter_mut().zip(&ws.delta) {
            *hv = (*hv + d / gtt).max(0.0);
        }
    }
    // --- Update W columns symmetrically with the fresh H. The Gauss-Seidel
    // column sweep lives in the microkernel crate so large problems take the
    // register-tiled row-panel path (bitwise identical to the scalar loop).
    a.a_bt_into(h, &mut ws.aht);
    matmul_a_bt_into(h, h, &mut ws.hht);
    microkernel::hals_w_update(w, &ws.aht, &ws.hht, EPS);
}

/// One ANLS sweep through the cached dense view (NNLS needs dense column
/// access; this is the expensive reference solver, not the scaling path).
fn anls_step_ws<A: MatKernels>(a: &A, w: &mut Matrix, h: &mut Matrix, ws: &mut NnmfWorkspace) {
    anls_step(ws.dense_view(a), w, h);
}

/// One ANLS sweep: solve `min ‖A − WH‖` exactly for `H` (columnwise NNLS
/// against `W`), then for `W` (rowwise NNLS against `Hᵀ`).
fn anls_step(a: &Matrix, w: &mut Matrix, h: &mut Matrix) {
    use anchors_linalg::solve::nnls;
    let tol = 1e-12;
    // H columns: min ‖W h_j − a_j‖, h_j ≥ 0.
    for j in 0..a.cols() {
        let b = a.col(j);
        let hj = nnls(w, &b, tol);
        for (t, &v) in hj.iter().enumerate() {
            h.set(t, j, v);
        }
    }
    // W rows: min ‖Hᵀ w_iᵀ − a_iᵀ‖, w_i ≥ 0.
    let ht = h.transpose();
    for i in 0..a.rows() {
        let b = a.row(i).to_vec();
        let wi = nnls(&ht, &b, tol);
        w.row_mut(i).copy_from_slice(&wi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_linalg::Matrix;

    /// A synthetic nonnegative matrix with clear rank-2 block structure.
    fn block_matrix() -> Matrix {
        // Rows 0..4 use columns 0..5; rows 4..8 use columns 5..10.
        Matrix::from_fn(8, 10, |i, j| {
            let block = (i < 4) == (j < 5);
            if block {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Workspace pre-bound to `a` for driving solver steps directly.
    fn bound_ws(a: &Matrix, cfg: &NnmfConfig) -> NnmfWorkspace {
        let mut ws = NnmfWorkspace::new();
        ws.bind(a, cfg);
        ws
    }

    #[test]
    fn factors_are_nonnegative() {
        let a = block_matrix();
        for solver in [Solver::MultiplicativeUpdate, Solver::Hals] {
            let cfg = NnmfConfig {
                solver,
                ..NnmfConfig::paper_default(2)
            };
            let m = nnmf(&a, &cfg);
            assert!(m.w.is_nonnegative(), "{solver:?}: W must be ≥ 0");
            assert!(m.h.is_nonnegative(), "{solver:?}: H must be ≥ 0");
        }
    }

    #[test]
    fn recovers_block_structure() {
        let a = block_matrix();
        let m = nnmf(&a, &NnmfConfig::paper_default(2));
        assert!(
            m.relative_error(&a) < 0.05,
            "rank-2 block matrix should factor nearly exactly, err {}",
            m.relative_error(&a)
        );
        // The two row groups must land on different dominant types.
        let types = m.dominant_types();
        assert_eq!(types[0], types[3]);
        assert_eq!(types[4], types[7]);
        assert_ne!(types[0], types[4]);
    }

    #[test]
    fn mu_loss_is_monotone() {
        let a = block_matrix();
        let cfg = NnmfConfig::multiplicative(3);
        let mut ws = bound_ws(&a, &cfg);
        let (mut w, mut h) = crate::init::init_factors(&a, 3, Init::Random, 7);
        let mut prev = loss(&a, &w, &h);
        for _ in 0..50 {
            mu_step_ws(&a, &mut w, &mut h, &mut ws);
            let cur = loss(&a, &w, &h);
            assert!(
                cur <= prev + 1e-9,
                "multiplicative updates must not increase the loss ({prev} → {cur})"
            );
            prev = cur;
        }
    }

    #[test]
    fn hals_converges_faster_than_mu() {
        let a = block_matrix();
        let (w0, h0) = crate::init::init_factors(&a, 2, Init::Random, 3);
        let cfg_h = NnmfConfig {
            solver: Solver::Hals,
            restarts: 1,
            ..NnmfConfig::paper_default(2)
        };
        let cfg_m = NnmfConfig {
            solver: Solver::MultiplicativeUpdate,
            restarts: 1,
            max_iter: 30,
            ..NnmfConfig::paper_default(2)
        };
        let mh = fit_single(&a, w0.clone(), h0.clone(), &cfg_h, 0);
        let mm = fit_single(&a, w0, h0, &cfg_m, 0);
        assert!(
            mh.loss <= mm.loss + 1e-9,
            "HALS {} should beat/match MU {} at equal budget",
            mh.loss,
            mm.loss
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = block_matrix();
        let cfg = NnmfConfig::paper_default(2);
        let m1 = nnmf(&a, &cfg);
        let m2 = nnmf(&a, &cfg);
        assert_eq!(m1.w, m2.w);
        assert_eq!(m1.h, m2.h);
        assert_eq!(m1.winning_seed, m2.winning_seed);
    }

    #[test]
    fn restarts_never_hurt() {
        let a = block_matrix();
        let one = NnmfConfig {
            restarts: 1,
            ..NnmfConfig::paper_default(3)
        };
        let many = NnmfConfig {
            restarts: 6,
            ..NnmfConfig::paper_default(3)
        };
        let m1 = nnmf(&a, &one);
        let m6 = nnmf(&a, &many);
        assert!(m6.loss <= m1.loss + 1e-12);
    }

    #[test]
    fn normalize_preserves_product() {
        let a = block_matrix();
        let mut m = nnmf(&a, &NnmfConfig::paper_default(2));
        let before = m.reconstruct();
        m.normalize();
        let after = m.reconstruct();
        assert!(before.approx_eq(&after, 1e-8));
        for t in 0..m.h.rows() {
            let n = anchors_linalg::norms::norm2(m.h.row(t));
            assert!(n.abs() < 1e-9 || (n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn top_tags_sorted_descending() {
        let a = block_matrix();
        let m = nnmf(&a, &NnmfConfig::paper_default(2));
        let top = m.top_tags_of_type(0, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn nndsvd_init_runs_single_restart() {
        let a = block_matrix();
        let cfg = NnmfConfig {
            init: Init::Nndsvd,
            ..NnmfConfig::paper_default(2)
        };
        let m = nnmf(&a, &cfg);
        assert!(m.relative_error(&a) < 0.1);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_input_panics() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let _ = nnmf(&a, &NnmfConfig::paper_default(1));
    }

    #[test]
    #[should_panic(expected = "exceeds min dimension")]
    fn oversized_k_panics() {
        let a = Matrix::full(2, 3, 1.0);
        let _ = nnmf(&a, &NnmfConfig::paper_default(3));
    }

    #[test]
    fn anls_reaches_reference_quality() {
        let a = block_matrix();
        let anls = nnmf(&a, &NnmfConfig::anls(2));
        assert!(anls.w.is_nonnegative() && anls.h.is_nonnegative());
        let hals = nnmf(&a, &NnmfConfig::paper_default(2));
        assert!(
            anls.loss <= hals.loss * 1.05 + 1e-9,
            "exact block solves must match HALS quality: {} vs {}",
            anls.loss,
            hals.loss
        );
    }

    #[test]
    fn anls_monotone_loss() {
        let a = block_matrix();
        let cfg = NnmfConfig::anls(2);
        let mut ws = bound_ws(&a, &cfg);
        let (mut w, mut h) = crate::init::init_factors(&a, 2, Init::Random, 11);
        let mut prev = loss(&a, &w, &h);
        for _ in 0..5 {
            anls_step_ws(&a, &mut w, &mut h, &mut ws);
            let cur = loss(&a, &w, &h);
            assert!(
                cur <= prev + 1e-9,
                "ANLS decreases the loss ({prev} → {cur})"
            );
            prev = cur;
        }
    }

    #[test]
    fn zero_matrix_yields_zero_loss_model() {
        let a = Matrix::zeros(4, 6);
        let m = nnmf(&a, &NnmfConfig::paper_default(2));
        assert!(m.loss < 1e-9);
        assert!(m.recovery.is_clean());
    }

    #[test]
    fn try_nnmf_reports_typed_input_errors() {
        use crate::error::NnmfError;
        let nan = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![0.5, 2.0]]);
        assert!(matches!(
            try_nnmf(&nan, &NnmfConfig::paper_default(1)),
            Err(NnmfError::NonFinite { row: 0, col: 1, .. })
        ));
        let neg = Matrix::from_rows(&[vec![1.0, 2.0], vec![-0.5, 2.0]]);
        assert!(matches!(
            try_nnmf(&neg, &NnmfConfig::paper_default(1)),
            Err(NnmfError::NegativeEntry { row: 1, col: 0, .. })
        ));
        let ok = Matrix::full(2, 2, 1.0);
        assert!(matches!(
            try_nnmf(&ok, &NnmfConfig::paper_default(0)),
            Err(NnmfError::ZeroRank)
        ));
        assert!(matches!(
            try_nnmf(&ok, &NnmfConfig::paper_default(3)),
            Err(NnmfError::RankTooLarge {
                k: 3,
                shape: (2, 2)
            })
        ));
    }

    #[test]
    fn typed_input_errors_identical_on_csr() {
        use crate::error::NnmfError;
        let nan = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![0.5, 2.0]]);
        assert!(matches!(
            try_nnmf(&CsrMatrix::from_dense(&nan), &NnmfConfig::paper_default(1)),
            Err(NnmfError::NonFinite { row: 0, col: 1, .. })
        ));
        let neg = Matrix::from_rows(&[vec![1.0, 2.0], vec![-0.5, 2.0]]);
        assert!(matches!(
            try_nnmf(&CsrMatrix::from_dense(&neg), &NnmfConfig::paper_default(1)),
            Err(NnmfError::NegativeEntry { row: 1, col: 0, .. })
        ));
    }

    #[test]
    fn divergence_guard_recovers_via_nndsvd_fallback() {
        // Entries near sqrt(f64::MAX): any random-init restart's initial
        // loss ½‖A − WH‖² overflows to Inf (the residual is ~6e153 per
        // entry, squared and summed over 80 entries), so every seeded
        // restart diverges regardless of RNG stream. The rank-1 structure
        // is exactly recoverable by the pre-scaled NNDSVD fallback.
        let a = Matrix::full(8, 10, 6e153);
        let cfg = NnmfConfig {
            restarts: 3,
            ..NnmfConfig::paper_default(2)
        };
        let m = try_nnmf(&a, &cfg).expect("recovery ladder must rescue the fit");
        assert!(m.loss.is_finite());
        assert!(m.w.is_finite() && m.h.is_finite());
        assert!(
            m.recovery.nndsvd_fallback,
            "NNDSVD fallback should have fired"
        );
        assert!(m.recovery.reseeded, "reseed round precedes the fallback");
        assert!(
            m.recovery.failed_restarts >= 6,
            "both random rounds must be recorded as failures: {:?}",
            m.recovery
        );
        // Reconstruction is tight in relative terms.
        let rec = m.reconstruct();
        let rel = (0..a.rows())
            .flat_map(|i| (0..a.cols()).map(move |j| (i, j)))
            .map(|(i, j)| ((a.get(i, j) - rec.get(i, j)) / a.get(i, j)).abs())
            .fold(0.0_f64, f64::max);
        assert!(rel < 1e-6, "relative reconstruction error too large: {rel}");
    }

    #[test]
    fn recovery_ladder_bitwise_identical_on_csr() {
        // The same overflow-prone input through both storage backends must
        // walk the identical recovery ladder and produce identical factors
        // — byte-for-byte availability of restart/recovery behavior on CSR.
        let dense = Matrix::full(8, 10, 6e153);
        let sparse = CsrMatrix::from_dense(&dense);
        let cfg = NnmfConfig {
            restarts: 3,
            ..NnmfConfig::paper_default(2)
        };
        let dm = try_nnmf(&dense, &cfg).expect("dense recovery");
        let sm = try_nnmf(&sparse, &cfg).expect("sparse recovery");
        assert_eq!(dm.recovery, sm.recovery);
        assert_eq!(dm.winning_seed, sm.winning_seed);
        assert_eq!(dm.iterations, sm.iterations);
        assert_eq!(dm.converged, sm.converged);
        assert_eq!(dm.w, sm.w, "factors must be bitwise identical");
        assert_eq!(dm.h, sm.h);
        assert!((dm.loss - sm.loss).abs() == 0.0 || (dm.loss - sm.loss).abs() < f64::EPSILON);
    }

    #[test]
    fn fan_out_bitwise_matches_serial() {
        use anchors_linalg::parallel::{self, ParMode};
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                parallel::set_par_mode(None);
                parallel::set_num_threads(None);
            }
        }
        let _reset = Reset;
        // Results are mode-independent by contract, so racing other tests
        // that flip the global policy cannot change any assertion here.
        let clean = block_matrix();
        let extreme = Matrix::full(8, 10, 6e153); // every random restart diverges
        for a in [clean, extreme] {
            let cfg = NnmfConfig {
                restarts: 4,
                ..NnmfConfig::paper_default(2)
            };
            parallel::set_par_mode(Some(ParMode::Serial));
            let serial = try_nnmf(&a, &cfg).expect("fit");
            for threads in [1usize, 2, 4] {
                parallel::set_par_mode(Some(ParMode::Outer));
                parallel::set_num_threads(Some(threads));
                let par = try_nnmf(&a, &cfg).expect("fit");
                assert_eq!(serial.w, par.w, "{threads} threads: W must match");
                assert_eq!(serial.h, par.h, "{threads} threads: H must match");
                assert_eq!(serial.loss, par.loss);
                assert_eq!(serial.winning_seed, par.winning_seed);
                assert_eq!(serial.iterations, par.iterations);
                assert_eq!(serial.converged, par.converged);
                assert_eq!(
                    serial.recovery, par.recovery,
                    "{threads} threads: failed_restarts accounting must match"
                );
            }
        }
    }

    #[test]
    fn workspace_pool_recycles_buffers() {
        let pool = WorkspacePool::new();
        let a = block_matrix();
        let cfg = NnmfConfig::paper_default(2);
        let first = pool.with(|ws| {
            ws.bind(&a, &cfg);
            ws.atw.as_slice().as_ptr() as usize
        });
        // A sequential reuse must hand back the same (still warm) buffers.
        let second = pool.with(|ws| ws.atw.as_slice().as_ptr() as usize);
        assert_eq!(first, second, "pool must recycle the released workspace");
        let m1 = pool.with(|ws| try_nnmf_with(&a, &cfg, ws).unwrap());
        let m2 = try_nnmf(&a, &cfg).unwrap();
        assert_eq!(m1.w, m2.w, "pooled workspaces must not change results");
        assert_eq!(m1.h, m2.h);
    }

    #[test]
    fn wall_clock_budget_truncates_restart() {
        let a = block_matrix();
        let cfg = NnmfConfig {
            max_wall_ms: Some(0),
            restarts: 1,
            ..NnmfConfig::paper_default(2)
        };
        let m = try_nnmf(&a, &cfg).expect("budget exhaustion is not an error");
        assert!(m.loss.is_finite());
        assert!(
            m.recovery.budget_exceeded >= 1,
            "zero budget must trip the wall-clock guard"
        );
        assert!(m.iterations < cfg.max_iter);
    }

    #[test]
    fn wall_clock_budget_works_on_csr() {
        let a = CsrMatrix::from_dense(&block_matrix());
        let cfg = NnmfConfig {
            max_wall_ms: Some(0),
            restarts: 1,
            ..NnmfConfig::paper_default(2)
        };
        let m = try_nnmf(&a, &cfg).expect("budget exhaustion is not an error");
        assert!(m.recovery.budget_exceeded >= 1);
        assert!(m.iterations < cfg.max_iter);
    }

    #[test]
    fn clean_fit_reports_clean_recovery() {
        let a = block_matrix();
        let m = try_nnmf(&a, &NnmfConfig::paper_default(2)).unwrap();
        assert!(m.recovery.is_clean(), "{:?}", m.recovery);
    }

    #[test]
    fn workspace_reuse_matches_fresh_fits() {
        let a = block_matrix();
        let b = Matrix::from_fn(6, 9, |i, j| ((i * 2 + j) % 3) as f64);
        let mut ws = NnmfWorkspace::new();
        // Interleave shapes, ranks, and solvers through one workspace.
        for cfg in [
            NnmfConfig::paper_default(2),
            NnmfConfig::multiplicative(3),
            NnmfConfig::paper_default(4),
        ] {
            let shared_a = try_nnmf_with(&a, &cfg, &mut ws).unwrap();
            let fresh_a = try_nnmf(&a, &cfg).unwrap();
            assert_eq!(
                shared_a.w, fresh_a.w,
                "workspace reuse must not change results"
            );
            assert_eq!(shared_a.h, fresh_a.h);
            let shared_b = try_nnmf_with(&b, &cfg, &mut ws).unwrap();
            let fresh_b = try_nnmf(&b, &cfg).unwrap();
            assert_eq!(shared_b.w, fresh_b.w);
            assert_eq!(shared_b.h, fresh_b.h);
        }
    }

    #[test]
    fn dense_and_csr_fits_bitwise_identical() {
        let a = block_matrix();
        let s = CsrMatrix::from_dense(&a);
        for cfg in [
            NnmfConfig {
                restarts: 2,
                ..NnmfConfig::paper_default(2)
            },
            NnmfConfig {
                restarts: 2,
                max_iter: 60,
                ..NnmfConfig::multiplicative(2)
            },
        ] {
            let dm = nnmf(&a, &cfg);
            let sm = nnmf(&s, &cfg);
            assert_eq!(dm.winning_seed, sm.winning_seed, "{:?}", cfg.solver);
            assert_eq!(dm.iterations, sm.iterations);
            assert_eq!(dm.w, sm.w, "{:?}: W must be bitwise identical", cfg.solver);
            assert_eq!(dm.h, sm.h, "{:?}: H must be bitwise identical", cfg.solver);
            assert_eq!(dm.loss, sm.loss);
        }
    }

    #[test]
    fn fit_iterations_allocate_nothing_after_warmup() {
        // Everything here is far below the parallel work threshold, so all
        // arithmetic stays on this thread and the thread-local allocation
        // counter in `crate::alloc_probe` sees every heap allocation a
        // sweep would make. ANLS is exempt (NNLS allocates by design).
        let dense = block_matrix();
        let sparse = CsrMatrix::from_dense(&dense);
        let cfg = NnmfConfig::multiplicative(2); // sizes HALS + MU buffers
        let mut ws_d = bound_ws(&dense, &cfg);
        let mut ws_s = NnmfWorkspace::new();
        ws_s.bind(&sparse, &cfg);
        let (mut w_d, mut h_d) = crate::init::init_factors(&dense, 2, Init::Random, 9);
        let (mut w_s, mut h_s) = (w_d.clone(), h_d.clone());
        // Warm up every code path once (buffers sized, loss paths taken).
        hals_step_ws(&dense, &mut w_d, &mut h_d, &mut ws_d);
        mu_step_ws(&dense, &mut w_d, &mut h_d, &mut ws_d);
        let _ = loss_ws(&dense, &w_d, &h_d, &mut ws_d);
        hals_step_ws(&sparse, &mut w_s, &mut h_s, &mut ws_s);
        mu_step_ws(&sparse, &mut w_s, &mut h_s, &mut ws_s);
        let _ = loss_ws(&sparse, &w_s, &h_s, &mut ws_s);

        let before = crate::alloc_probe::allocations_on_this_thread();
        for _ in 0..10 {
            hals_step_ws(&dense, &mut w_d, &mut h_d, &mut ws_d);
            mu_step_ws(&dense, &mut w_d, &mut h_d, &mut ws_d);
            let _ = loss_ws(&dense, &w_d, &h_d, &mut ws_d);
            hals_step_ws(&sparse, &mut w_s, &mut h_s, &mut ws_s);
            mu_step_ws(&sparse, &mut w_s, &mut h_s, &mut ws_s);
            let _ = loss_ws(&sparse, &w_s, &h_s, &mut ws_s);
        }
        let after = crate::alloc_probe::allocations_on_this_thread();
        assert_eq!(
            after - before,
            0,
            "fit iterations must not allocate once the workspace is warm"
        );
    }

    #[test]
    fn gram_loss_matches_direct_residual() {
        let a = block_matrix();
        let cfg = NnmfConfig::paper_default(3);
        let mut ws = bound_ws(&a, &cfg);
        let (w, h) = crate::init::init_factors(&a, 3, Init::Random, 5);
        let gram = loss_ws(&a, &w, &h, &mut ws);
        let direct = loss(&a, &w, &h);
        assert!(
            (gram - direct).abs() < 1e-9,
            "Gram-identity loss must agree with the residual: {gram} vs {direct}"
        );
    }
}
