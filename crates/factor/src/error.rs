//! Typed errors for the factorization layer.
//!
//! [`try_nnmf`](crate::nnmf::try_nnmf) surfaces these instead of panicking;
//! the legacy [`nnmf`](crate::nnmf::nnmf) entry point formats them into its
//! panic message, preserving the historical wording that downstream
//! `#[should_panic(expected = ...)]` tests match on.

use anchors_linalg::LinalgError;
use std::fmt;

/// Errors produced by checked NNMF entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum NnmfError {
    /// The input matrix contains a NaN or infinite entry.
    NonFinite {
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// The input matrix contains a negative entry.
    NegativeEntry {
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// The requested rank is zero.
    ZeroRank,
    /// The requested rank exceeds `min(rows, cols)` of a nonempty matrix.
    RankTooLarge {
        /// Requested rank.
        k: usize,
        /// Input shape.
        shape: (usize, usize),
    },
    /// Every restart — including reseeded retries and the NNDSVD fallback —
    /// produced a non-finite or runaway loss.
    Diverged {
        /// Total fit attempts made across the recovery ladder.
        attempts: usize,
        /// Seed of the last attempt.
        last_seed: u64,
    },
    /// A checked linear-algebra kernel failed underneath the solver.
    Linalg(LinalgError),
}

impl fmt::Display for NnmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // The "nonnegative" substring below is load-bearing: the
            // panicking wrapper's message must keep matching
            // `#[should_panic(expected = "nonnegative")]` tests.
            NnmfError::NonFinite { row, col, value } => write!(
                f,
                "NNMF requires a nonnegative matrix: non-finite entry {value} at ({row}, {col})"
            ),
            NnmfError::NegativeEntry { row, col, value } => write!(
                f,
                "NNMF requires a nonnegative matrix: negative entry {value} at ({row}, {col})"
            ),
            NnmfError::ZeroRank => write!(f, "k must be positive"),
            NnmfError::RankTooLarge { k, shape } => {
                write!(f, "k = {k} exceeds min dimension of {shape:?}")
            }
            NnmfError::Diverged {
                attempts,
                last_seed,
            } => write!(
                f,
                "NNMF diverged: non-finite loss persisted through {attempts} attempts \
                 (reseeded restarts and NNDSVD fallback; last seed {last_seed})"
            ),
            NnmfError::Linalg(e) => write!(f, "linear algebra failure in NNMF: {e}"),
        }
    }
}

impl std::error::Error for NnmfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnmfError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for NnmfError {
    fn from(e: LinalgError) -> Self {
        NnmfError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_panic_compatible_wording() {
        let e = NnmfError::NegativeEntry {
            row: 0,
            col: 1,
            value: -1.0,
        };
        assert!(e.to_string().contains("nonnegative"));
        let e = NnmfError::NonFinite {
            row: 0,
            col: 0,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("nonnegative"));
        let e = NnmfError::RankTooLarge {
            k: 3,
            shape: (2, 3),
        };
        assert!(e.to_string().contains("exceeds min dimension"));
        assert!(NnmfError::ZeroRank
            .to_string()
            .contains("k must be positive"));
    }
}
