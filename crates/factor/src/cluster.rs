//! Clustering substrates: k-means (used by spectral co-clustering and
//! consensus analysis) and agglomerative hierarchical clustering with
//! cophenetic correlation (a standard NNMF rank-stability diagnostic).

use anchors_linalg::stats::pearson;
use anchors_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster index per row of the input.
    pub labels: Vec<usize>,
    /// Centroids (`k × features`).
    pub centroids: Matrix,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Lloyd's k-means with k-means++ seeding. Deterministic for a fixed seed.
///
/// # Panics
/// Panics if `k == 0` or `k > rows`.
#[allow(clippy::needless_range_loop)] // index form mirrors the math
pub fn kmeans(data: &Matrix, k: usize, max_iter: usize, seed: u64) -> KMeans {
    let (n, p) = data.shape();
    assert!(k > 0 && k <= n, "k = {k} out of range for {n} points");
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids = Matrix::zeros(k, p);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut d2 = vec![f64::INFINITY; n];
    for c in 1..k {
        for i in 0..n {
            let dist = sq_dist(data.row(i), centroids.row(c - 1));
            if dist < d2[i] {
                d2[i] = dist;
            }
        }
        let total: f64 = d2.iter().sum();
        let pick = if total > 0.0 {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        } else {
            rng.gen_range(0..n)
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
    }

    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = sq_dist(data.row(i), centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut counts = vec![0usize; k];
        let mut sums = Matrix::zeros(k, p);
        for i in 0..n {
            counts[labels[i]] += 1;
            let row = data.row(i);
            for (s, &v) in sums.row_mut(labels[i]).iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for (cv, &sv) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *cv = sv * inv;
                }
            } else {
                // Empty cluster: reseed on the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(data.row(a), centroids.row(labels[a]))
                            .partial_cmp(&sq_dist(data.row(b), centroids.row(labels[b])))
                            .expect("finite distances")
                    })
                    .unwrap_or(0);
                centroids.row_mut(c).copy_from_slice(data.row(far));
            }
        }
        if !changed && it > 0 {
            break;
        }
    }
    let inertia = (0..n)
        .map(|i| sq_dist(data.row(i), centroids.row(labels[i])))
        .sum();
    KMeans {
        labels,
        centroids,
        inertia,
        iterations,
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Linkage criterion for hierarchical clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between clusters.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Mean pairwise distance (UPGMA).
    Average,
}

/// One merge step of a dendrogram: clusters `a` and `b` (indices into the
/// sequence `0..n` of leaves followed by earlier merges `n..n+step`) joined
/// at `height`.
#[derive(Debug, Clone)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Merge height (linkage distance).
    pub height: f64,
    /// Size of the merged cluster.
    pub size: usize,
}

/// A dendrogram over `n` leaves (`n − 1` merges).
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n: usize,
    /// Merge steps in order of increasing height.
    pub merges: Vec<Merge>,
}

/// Agglomerative clustering of a distance matrix (Lance–Williams updates).
///
/// # Panics
/// Panics if `d` is not square.
#[allow(clippy::needless_range_loop)] // slot indices address several arrays
pub fn hierarchical(d: &Matrix, linkage: Linkage) -> Dendrogram {
    let n = d.rows();
    assert_eq!(n, d.cols(), "hierarchical clustering needs a square matrix");
    if n == 0 {
        return Dendrogram { n, merges: vec![] };
    }
    // Active cluster list; distances kept in a mutable working copy indexed
    // by cluster slot.
    let mut dist = d.clone();
    let mut active: Vec<usize> = (0..n).collect(); // cluster ids
    let mut sizes = vec![1usize; n];
    let mut slot_of: Vec<usize> = (0..n).collect(); // cluster id → slot
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;

    // Work over slots; a merge frees one slot.
    let mut alive: Vec<bool> = vec![true; n];
    for _step in 0..n.saturating_sub(1) {
        // Find closest pair of alive slots.
        let (mut bi, mut bj, mut bd) = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !alive[j] {
                    continue;
                }
                let v = dist.get(i, j);
                if v < bd {
                    bd = v;
                    bi = i;
                    bj = j;
                }
            }
        }
        let (si, sj) = (sizes[bi], sizes[bj]);
        // Update distances of the merged cluster (kept in slot bi).
        for t in 0..n {
            if !alive[t] || t == bi || t == bj {
                continue;
            }
            let dti = dist.get(t, bi);
            let dtj = dist.get(t, bj);
            let nd = match linkage {
                Linkage::Single => dti.min(dtj),
                Linkage::Complete => dti.max(dtj),
                Linkage::Average => (si as f64 * dti + sj as f64 * dtj) / (si + sj) as f64,
            };
            dist.set(t, bi, nd);
            dist.set(bi, t, nd);
        }
        merges.push(Merge {
            a: active[bi],
            b: active[bj],
            height: bd,
            size: si + sj,
        });
        sizes[bi] = si + sj;
        active[bi] = next_id;
        slot_of.push(bi);
        alive[bj] = false;
        next_id += 1;
    }
    Dendrogram { n, merges }
}

impl Dendrogram {
    /// Cut the dendrogram into `k` clusters; returns a label per leaf.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > n`.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k > 0 && k <= self.n.max(1), "cut k out of range");
        // Union-find over leaves applying merges until k clusters remain.
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                parent[r] = parent[parent[r]];
                r = parent[r];
            }
            r
        }
        let to_apply = self.n.saturating_sub(k);
        for (step, m) in self.merges.iter().take(to_apply).enumerate() {
            let id = self.n + step;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = id;
            parent[rb] = id;
        }
        // Relabel roots densely.
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n);
        for leaf in 0..self.n {
            let r = find(&mut parent, leaf);
            let next = label_of_root.len();
            let l = *label_of_root.entry(r).or_insert(next);
            labels.push(l);
        }
        labels
    }

    /// Cophenetic distance matrix: entry `(i, j)` is the height at which
    /// leaves `i` and `j` first share a cluster.
    pub fn cophenetic_matrix(&self) -> Matrix {
        let total = self.n + self.merges.len();
        let mut members: Vec<Vec<usize>> = (0..self.n).map(|i| vec![i]).collect();
        members.resize(total, vec![]);
        let mut coph = Matrix::zeros(self.n, self.n);
        for (step, m) in self.merges.iter().enumerate() {
            let id = self.n + step;
            let (la, lb) = (members[m.a].clone(), members[m.b].clone());
            for &x in &la {
                for &y in &lb {
                    coph.set(x, y, m.height);
                    coph.set(y, x, m.height);
                }
            }
            let mut merged = la;
            merged.extend(lb);
            members[id] = merged;
        }
        coph
    }

    /// Cophenetic correlation coefficient against the original distances:
    /// Pearson correlation of the upper triangles. Close to 1 means the
    /// dendrogram faithfully preserves the distances — used as the NNMF
    /// rank-stability score.
    pub fn cophenetic_correlation(&self, d: &Matrix) -> f64 {
        let coph = self.cophenetic_matrix();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                xs.push(d.get(i, j));
                ys.push(coph.get(i, j));
            }
        }
        pearson(&xs, &ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_linalg::{pairwise_distances, Metric};

    fn two_blobs() -> Matrix {
        Matrix::from_fn(10, 2, |i, j| {
            let base = if i < 5 { 0.0 } else { 10.0 };
            base + ((i * 7 + j * 3) % 5) as f64 * 0.1
        })
    }

    #[test]
    fn kmeans_separates_blobs() {
        let data = two_blobs();
        let km = kmeans(&data, 2, 100, 1);
        let first = km.labels[0];
        assert!(km.labels[..5].iter().all(|&l| l == first));
        assert!(km.labels[5..].iter().all(|&l| l != first));
        assert!(km.inertia < 5.0);
    }

    #[test]
    fn kmeans_deterministic_and_k_equals_n() {
        let data = two_blobs();
        let a = kmeans(&data, 2, 50, 9);
        let b = kmeans(&data, 2, 50, 9);
        assert_eq!(a.labels, b.labels);
        let full = kmeans(&data, 10, 10, 1);
        assert!(full.inertia < 1e-12, "k = n puts every point on a centroid");
    }

    #[test]
    fn hierarchical_merges_blobs_last() {
        let data = two_blobs();
        let d = pairwise_distances(&data, Metric::Euclidean);
        for link in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = hierarchical(&d, link);
            assert_eq!(dend.merges.len(), 9);
            // The final merge joins the two blobs: its height is large.
            let last = dend.merges.last().unwrap();
            assert!(last.height > 5.0, "{link:?}: {}", last.height);
            assert_eq!(last.size, 10);
            // Heights non-decreasing for single/average/complete on metric data.
            let labels = dend.cut(2);
            let first = labels[0];
            assert!(labels[..5].iter().all(|&l| l == first));
            assert!(labels[5..].iter().all(|&l| l != first));
        }
    }

    #[test]
    fn cut_extremes() {
        let data = two_blobs();
        let d = pairwise_distances(&data, Metric::Euclidean);
        let dend = hierarchical(&d, Linkage::Average);
        let all = dend.cut(1);
        assert!(all.iter().all(|&l| l == 0));
        let each = dend.cut(10);
        let mut sorted = each.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "k = n gives singleton clusters");
    }

    #[test]
    fn cophenetic_correlation_high_on_clean_blobs() {
        let data = two_blobs();
        let d = pairwise_distances(&data, Metric::Euclidean);
        let dend = hierarchical(&d, Linkage::Average);
        let c = dend.cophenetic_correlation(&d);
        assert!(
            c > 0.9,
            "clean blob structure should have high CCC, got {c}"
        );
    }

    #[test]
    fn cophenetic_matrix_properties() {
        let data = two_blobs();
        let d = pairwise_distances(&data, Metric::Euclidean);
        let dend = hierarchical(&d, Linkage::Single);
        let coph = dend.cophenetic_matrix();
        // Symmetric, zero diagonal, and single-linkage cophenetic ≤ original.
        for i in 0..10 {
            assert_eq!(coph.get(i, i), 0.0);
            for j in 0..10 {
                assert_eq!(coph.get(i, j), coph.get(j, i));
                if i != j {
                    assert!(coph.get(i, j) <= d.get(i, j) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let dend = hierarchical(&Matrix::zeros(0, 0), Linkage::Average);
        assert!(dend.merges.is_empty());
        let one = hierarchical(&Matrix::zeros(1, 1), Linkage::Average);
        assert!(one.merges.is_empty());
        assert_eq!(one.cut(1), vec![0]);
    }
}
