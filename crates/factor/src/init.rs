//! NNMF initialization schemes.
//!
//! * [`Init::Random`] — the paper's choice: entries uniform in
//!   `(0, sqrt(mean(A)/k)]`, scikit-learn's scaling for random init.
//! * [`Init::Nndsvd`] / [`Init::NndsvdA`] — Boutsidis & Gallopoulos (2008)
//!   SVD-based initialization. Deterministic; NNDSVDa fills zeros with the
//!   matrix mean, which suits dense solvers.

use anchors_linalg::{thin_svd, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Initialization scheme for the `W`/`H` factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Init {
    /// Scaled uniform random entries (the paper's setup).
    Random,
    /// Nonnegative double SVD; zeros stay zero.
    Nndsvd,
    /// NNDSVD with zeros replaced by the matrix mean.
    NndsvdA,
}

/// Produce initial `(W, H)` for `A ≈ W H` with rank `k`.
pub fn init_factors(a: &Matrix, k: usize, init: Init, seed: u64) -> (Matrix, Matrix) {
    match init {
        Init::Random => random_init(a, k, seed),
        Init::Nndsvd => nndsvd(a, k, false),
        Init::NndsvdA => nndsvd(a, k, true),
    }
}

fn random_init(a: &Matrix, k: usize, seed: u64) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let mean = if a.is_empty() {
        0.0
    } else {
        a.sum() / a.len() as f64
    };
    random_from_stats(m, n, k, mean, seed)
}

/// Random initialization from shape and mean alone — the storage-generic
/// entry used by the solver so sparse inputs never need a dense view.
/// Identical RNG stream and scaling to the dense [`Init::Random`] path.
pub fn random_from_stats(m: usize, n: usize, k: usize, mean: f64, seed: u64) -> (Matrix, Matrix) {
    let scale = (mean / k as f64).sqrt().max(1e-6);
    let mut rng = StdRng::seed_from_u64(seed);
    let w = Matrix::from_fn(m, k, |_, _| rng.gen_range(f64::EPSILON..=1.0) * scale);
    let h = Matrix::from_fn(k, n, |_, _| rng.gen_range(f64::EPSILON..=1.0) * scale);
    (w, h)
}

/// Entry magnitude above which NNDSVD pre-scales the input: the Gram-route
/// SVD squares entries, so anything near `sqrt(f64::MAX) ≈ 1e154` overflows
/// `AᵀA`. Scaling is gated on extremeness to keep the factorization
/// bitwise identical for ordinary inputs.
const PRESCALE_THRESHOLD: f64 = 1e100;

/// NNDSVD: split each singular triplet into its positive and negative parts
/// and keep the dominant side.
///
/// For matrices with extreme entries the computation runs on `A / c`
/// (`c = max |a_ij|`) and the factors are rescaled by `sqrt(c)`, which is
/// exact: `A = c·A' = (W'·√c)(H'·√c)`.
fn nndsvd(a: &Matrix, k: usize, fill_mean: bool) -> (Matrix, Matrix) {
    let maxabs = a
        .as_slice()
        .iter()
        .fold(0.0_f64, |acc, &v| acc.max(v.abs()));
    if maxabs > PRESCALE_THRESHOLD && maxabs.is_finite() {
        let scaled = a.map(|v| v / maxabs);
        let (mut w, mut h) = nndsvd_unscaled(&scaled, k, fill_mean);
        let s = maxabs.sqrt();
        w.map_inplace(|v| v * s);
        h.map_inplace(|v| v * s);
        return (w, h);
    }
    nndsvd_unscaled(a, k, fill_mean)
}

#[allow(clippy::needless_range_loop)] // column scatter follows the derivation
fn nndsvd_unscaled(a: &Matrix, k: usize, fill_mean: bool) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let mut w = Matrix::zeros(m, k);
    let mut h = Matrix::zeros(k, n);
    let svd = thin_svd(a);
    let r = svd.s.len();
    if r == 0 {
        if fill_mean {
            let mean = if a.is_empty() {
                0.0
            } else {
                a.sum() / a.len() as f64
            };
            return (
                Matrix::full(m, k, mean.max(1e-6)),
                Matrix::full(k, n, mean.max(1e-6)),
            );
        }
        return (w, h);
    }

    // Leading factor: |u1| sqrt(s1), |v1| sqrt(s1).
    let s0 = svd.s[0].sqrt();
    for i in 0..m {
        w.set(i, 0, svd.u.get(i, 0).abs() * s0);
    }
    for j in 0..n {
        h.set(0, j, svd.v.get(j, 0).abs() * s0);
    }

    for t in 1..k.min(r) {
        let u: Vec<f64> = (0..m).map(|i| svd.u.get(i, t)).collect();
        let v: Vec<f64> = (0..n).map(|j| svd.v.get(j, t)).collect();
        let up: Vec<f64> = u.iter().map(|&x| x.max(0.0)).collect();
        let un: Vec<f64> = u.iter().map(|&x| (-x).max(0.0)).collect();
        let vp: Vec<f64> = v.iter().map(|&x| x.max(0.0)).collect();
        let vn: Vec<f64> = v.iter().map(|&x| (-x).max(0.0)).collect();
        let nup = anchors_linalg::norms::norm2(&up);
        let nun = anchors_linalg::norms::norm2(&un);
        let nvp = anchors_linalg::norms::norm2(&vp);
        let nvn = anchors_linalg::norms::norm2(&vn);
        let pos = nup * nvp;
        let neg = nun * nvn;
        let (uu, vv, sigma) = if pos >= neg {
            (up, vp, pos)
        } else {
            (un, vn, neg)
        };
        if sigma <= 0.0 {
            continue;
        }
        let lam = (svd.s[t] * sigma).sqrt();
        let (nu, nv) = if pos >= neg { (nup, nvp) } else { (nun, nvn) };
        for i in 0..m {
            w.set(i, t, lam * uu[i] / nu.max(1e-12));
        }
        for j in 0..n {
            h.set(t, j, lam * vv[j] / nv.max(1e-12));
        }
    }

    if fill_mean {
        let mean = if a.is_empty() {
            0.0
        } else {
            (a.sum() / a.len() as f64).max(1e-6)
        };
        w.map_inplace(|x| if x <= 0.0 { mean } else { x });
        h.map_inplace(|x| if x <= 0.0 { mean } else { x });
    }
    (w, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_fn(6, 8, |i, j| ((i * 3 + j) % 4) as f64 / 3.0)
    }

    #[test]
    fn random_init_bounds_and_determinism() {
        let a = sample();
        let (w1, h1) = init_factors(&a, 3, Init::Random, 42);
        let (w2, h2) = init_factors(&a, 3, Init::Random, 42);
        assert_eq!(w1, w2);
        assert_eq!(h1, h2);
        assert!(w1.is_nonnegative() && h1.is_nonnegative());
        assert!(w1.min() > 0.0, "random init is strictly positive");
        let (w3, _) = init_factors(&a, 3, Init::Random, 43);
        assert_ne!(w1, w3, "different seeds differ");
    }

    #[test]
    fn nndsvd_nonnegative_and_deterministic() {
        let a = sample();
        let (w1, h1) = init_factors(&a, 3, Init::Nndsvd, 0);
        let (w2, h2) = init_factors(&a, 3, Init::Nndsvd, 99);
        assert_eq!(w1, w2, "NNDSVD ignores the seed");
        assert_eq!(h1, h2);
        assert!(w1.is_nonnegative() && h1.is_nonnegative());
    }

    #[test]
    fn nndsvd_leading_factor_tracks_svd() {
        let a = sample();
        let (w, h) = init_factors(&a, 2, Init::Nndsvd, 0);
        // First factor reconstruction should already capture a large share
        // of the matrix energy (it is |u1| s1 |v1|ᵀ).
        let w1 = w.select_cols(&[0]);
        let h1 = h.select_rows(&[0]);
        let approx = anchors_linalg::matmul(&w1, &h1);
        let err = anchors_linalg::relative_error(&a, &approx);
        assert!(err < 0.8, "leading NNDSVD factor too weak: {err}");
    }

    #[test]
    fn nndsvda_has_no_zeros() {
        let a = sample();
        let (w, h) = init_factors(&a, 4, Init::NndsvdA, 0);
        assert!(w.as_slice().iter().all(|&x| x > 0.0));
        assert!(h.as_slice().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn zero_matrix_handled() {
        let a = Matrix::zeros(3, 4);
        let (w, h) = init_factors(&a, 2, Init::Nndsvd, 0);
        assert_eq!(w.shape(), (3, 2));
        assert_eq!(h.shape(), (2, 4));
        let (w, h) = init_factors(&a, 2, Init::NndsvdA, 0);
        assert!(w.min() > 0.0 && h.min() > 0.0);
    }
}
