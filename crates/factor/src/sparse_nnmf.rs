//! NNMF over CSR sparse inputs.
//!
//! The course×tag matrices are 0-1 with ~10% density; at corpus scale the
//! dense solver is fine, but the scaling benchmarks factor synthetic
//! corpora with thousands of courses where the data-side products dominate.
//! This solver runs HALS with the two data products computed sparsely
//! (`A Hᵀ` and `Aᵀ W`), so each sweep costs `O(nnz · k + (m + n) · k²)`.
//!
//! The iteration is *identical in exact arithmetic* to the dense
//! [`crate::nnmf`] HALS path given the same initialization, which the tests
//! verify.

use crate::init::{init_factors, Init};
use crate::nnmf::{NnmfConfig, NnmfModel, Solver};
use anchors_linalg::ops::{matmul_a_bt, matmul_at_b};
use anchors_linalg::sparse::CsrMatrix;
use anchors_linalg::Matrix;

const EPS: f64 = 1e-12;

/// Frobenius loss `½‖A − WH‖²` computed without materializing `WH`:
/// `½(‖A‖² − 2·tr(Hᵀ(WᵀA)) + tr((WᵀW)(HHᵀ)))`.
pub fn sparse_loss(a: &CsrMatrix, w: &Matrix, h: &Matrix) -> f64 {
    let wta = a.matmul_at_dense(w); // n × k  (= (WᵀA)ᵀ)
    let cross: f64 = (0..h.rows())
        .map(|t| {
            let hrow = h.row(t);
            (0..h.cols()).map(|j| wta.get(j, t) * hrow[j]).sum::<f64>()
        })
        .sum();
    let wtw = matmul_at_b(w, w);
    let hht = matmul_a_bt(h, h);
    let quad: f64 = wtw
        .as_slice()
        .iter()
        .zip(hht.as_slice())
        .map(|(x, y)| x * y)
        .sum();
    0.5 * (a.frobenius_sq() - 2.0 * cross + quad)
}

/// Fit NNMF on a sparse matrix with HALS.
///
/// # Panics
/// Panics if the matrix has negative stored values, `k == 0`, or the
/// configured solver is not [`Solver::Hals`] (the multiplicative-update
/// path exists only for dense inputs).
pub fn nnmf_sparse(a: &CsrMatrix, config: &NnmfConfig) -> NnmfModel {
    assert!(
        config.solver == Solver::Hals,
        "sparse NNMF implements the HALS solver only"
    );
    assert!(config.k > 0, "k must be positive");
    let (m, n) = a.shape();
    assert!(
        config.k <= m.min(n).max(1),
        "k = {} exceeds min dimension of {:?}",
        config.k,
        a.shape()
    );
    let dense_seed_view = || a.to_dense();
    let deterministic_init = matches!(config.init, Init::Nndsvd | Init::NndsvdA);
    let restarts = if deterministic_init {
        1
    } else {
        config.restarts.max(1)
    };

    let mut best: Option<NnmfModel> = None;
    for r in 0..restarts {
        let seed = config.seed.wrapping_add(r as u64);
        // Initialization mirrors the dense path exactly (NNDSVD needs the
        // dense view; random init only needs shape + mean).
        let (w0, h0) = match config.init {
            Init::Random => {
                // Mean of A from the sparse sum, replicating the dense
                // scaling formula.
                init_random_like(a, config.k, seed)
            }
            _ => init_factors(&dense_seed_view(), config.k, config.init, seed),
        };
        let model = fit_sparse(a, w0, h0, config, seed);
        if best.as_ref().map(|b| model.loss < b.loss).unwrap_or(true) {
            best = Some(model);
        }
    }
    best.expect("at least one restart")
}

/// Random initialization identical to the dense crate's for the same shape,
/// mean, and seed.
fn init_random_like(a: &CsrMatrix, k: usize, seed: u64) -> (Matrix, Matrix) {
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    let (m, n) = a.shape();
    let mean = if m == 0 || n == 0 {
        0.0
    } else {
        a.sum() / (m * n) as f64
    };
    let scale = (mean / k as f64).sqrt().max(1e-6);
    let mut rng = StdRng::seed_from_u64(seed);
    let w = Matrix::from_fn(m, k, |_, _| rng.gen_range(f64::EPSILON..=1.0) * scale);
    let h = Matrix::from_fn(k, n, |_, _| rng.gen_range(f64::EPSILON..=1.0) * scale);
    (w, h)
}

fn fit_sparse(
    a: &CsrMatrix,
    mut w: Matrix,
    mut h: Matrix,
    config: &NnmfConfig,
    seed: u64,
) -> NnmfModel {
    let mut prev_loss = sparse_loss(a, &w, &h);
    let init_loss = prev_loss.max(EPS);
    let mut iterations = 0;
    let mut converged = false;
    for it in 0..config.max_iter {
        sparse_hals_step(a, &mut w, &mut h);
        iterations = it + 1;
        if iterations % 10 == 0 || iterations == config.max_iter {
            let cur = sparse_loss(a, &w, &h);
            if (prev_loss - cur).abs() / init_loss < config.tol {
                converged = true;
                break;
            }
            prev_loss = cur;
        }
    }
    let loss = sparse_loss(a, &w, &h);
    NnmfModel {
        w,
        h,
        loss,
        iterations,
        converged,
        winning_seed: seed,
        recovery: crate::nnmf::NnmfRecovery::default(),
    }
}

/// One HALS sweep with sparse data products; algebraically identical to the
/// dense `hals_step`.
#[allow(clippy::needless_range_loop)] // Gram indices follow the update rule
fn sparse_hals_step(a: &CsrMatrix, w: &mut Matrix, h: &mut Matrix) {
    let k = w.cols();
    // --- H update: needs WᵀA (k × n) and WᵀW (k × k).
    let atw = a.matmul_at_dense(w); // n × k
    let wtw = matmul_at_b(w, w);
    for t in 0..k {
        let gtt = wtw.get(t, t);
        if gtt <= EPS {
            continue;
        }
        let mut delta: Vec<f64> = (0..h.cols()).map(|j| atw.get(j, t)).collect();
        for s in 0..k {
            let g = wtw.get(t, s);
            if g == 0.0 {
                continue;
            }
            let hrow = h.row(s);
            for (d, &hv) in delta.iter_mut().zip(hrow) {
                *d -= g * hv;
            }
        }
        let hrow = h.row_mut(t);
        for (hv, d) in hrow.iter_mut().zip(&delta) {
            *hv = (*hv + d / gtt).max(0.0);
        }
    }
    // --- W update: needs A Hᵀ (m × k) and H Hᵀ (k × k).
    let aht = a.matmul_dense_bt(h); // m × k
    let hht = matmul_a_bt(h, h);
    for t in 0..k {
        let gtt = hht.get(t, t);
        if gtt <= EPS {
            continue;
        }
        for i in 0..w.rows() {
            let mut d = aht.get(i, t);
            let wrow = w.row(i);
            for s in 0..k {
                d -= hht.get(t, s) * wrow[s];
            }
            let nv = (w.get(i, t) + d / gtt).max(0.0);
            w.set(i, t, nv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnmf::nnmf;

    fn block_dense() -> Matrix {
        Matrix::from_fn(10, 14, |i, j| if (i < 5) == (j < 7) { 1.0 } else { 0.0 })
    }

    #[test]
    fn sparse_matches_dense_hals_exactly() {
        let dense = block_dense();
        let sparse = CsrMatrix::from_dense(&dense);
        let cfg = NnmfConfig {
            restarts: 2,
            ..NnmfConfig::paper_default(2)
        };
        let dm = nnmf(&dense, &cfg);
        let sm = nnmf_sparse(&sparse, &cfg);
        assert_eq!(dm.winning_seed, sm.winning_seed);
        assert!(
            dm.w.approx_eq(&sm.w, 1e-9),
            "sparse and dense HALS must iterate identically"
        );
        assert!(dm.h.approx_eq(&sm.h, 1e-9));
        assert!((dm.loss - sm.loss).abs() < 1e-9);
    }

    #[test]
    fn sparse_loss_matches_dense_loss() {
        let dense = block_dense();
        let sparse = CsrMatrix::from_dense(&dense);
        let (w, h) = init_factors(&dense, 3, Init::Random, 5);
        let dl = crate::nnmf::loss(&dense, &w, &h);
        let sl = sparse_loss(&sparse, &w, &h);
        assert!((dl - sl).abs() < 1e-9, "{dl} vs {sl}");
    }

    #[test]
    fn factors_nonnegative_and_reconstruct() {
        let dense = block_dense();
        let sparse = CsrMatrix::from_dense(&dense);
        let m = nnmf_sparse(&sparse, &NnmfConfig::paper_default(2));
        assert!(m.w.is_nonnegative());
        assert!(m.h.is_nonnegative());
        assert!(m.relative_error(&dense) < 0.05);
    }

    #[test]
    fn nndsvd_init_works_sparse() {
        let dense = block_dense();
        let sparse = CsrMatrix::from_dense(&dense);
        let cfg = NnmfConfig {
            init: Init::Nndsvd,
            ..NnmfConfig::paper_default(2)
        };
        let m = nnmf_sparse(&sparse, &cfg);
        assert!(m.relative_error(&dense) < 0.1);
    }

    #[test]
    #[should_panic(expected = "HALS solver only")]
    fn mu_solver_rejected() {
        let sparse = CsrMatrix::from_dense(&block_dense());
        let _ = nnmf_sparse(&sparse, &NnmfConfig::multiplicative(2));
    }
}
