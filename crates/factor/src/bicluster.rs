//! Spectral co-clustering (Dhillon 2001) for the CS Materials matrix view.
//!
//! Section 3.1.1: "entries in the matrix view are bi-clustered to highlight
//! related material/tag patterns in the curriculum". Co-clustering
//! simultaneously groups the rows (tags) and columns (materials) of the 0-1
//! matrix; reordering rows and columns by cluster exposes the block
//! structure.

use crate::cluster::kmeans;
use anchors_linalg::{thin_svd, Matrix};

/// Result of a co-clustering: row and column labels plus permutations that
/// sort rows/columns by cluster (for rendering).
#[derive(Debug, Clone)]
pub struct Bicluster {
    /// Cluster label per row.
    pub row_labels: Vec<usize>,
    /// Cluster label per column.
    pub col_labels: Vec<usize>,
    /// Row permutation grouping rows by label (stable within label).
    pub row_order: Vec<usize>,
    /// Column permutation grouping columns by label.
    pub col_order: Vec<usize>,
}

/// Spectral co-clustering of a nonnegative matrix into `k` biclusters.
///
/// Normalizes `A_n = D_1^{-1/2} A D_2^{-1/2}`, takes singular vectors
/// `2..=⌈log2 k⌉+1`, stacks scaled row and column embeddings, and k-means
/// them jointly (Dhillon's algorithm). Deterministic for a fixed seed.
///
/// # Panics
/// Panics if `a` has negative entries or `k` is 0 or exceeds both dims.
pub fn spectral_cocluster(a: &Matrix, k: usize, seed: u64) -> Bicluster {
    assert!(
        a.is_nonnegative(),
        "co-clustering requires nonnegative input"
    );
    let (m, n) = a.shape();
    assert!(
        k > 0 && (k <= m || k <= n),
        "k = {k} out of range for {m}x{n}"
    );
    if m == 0 || n == 0 {
        return Bicluster {
            row_labels: vec![],
            col_labels: vec![],
            row_order: vec![],
            col_order: vec![],
        };
    }

    // Degree-normalize; all-zero rows/cols get degree 1 (they end up near
    // the origin and cluster arbitrarily but deterministically).
    let r1: Vec<f64> = a.row_sums().iter().map(|&s| safe_inv_sqrt(s)).collect();
    let c1: Vec<f64> = a.col_sums().iter().map(|&s| safe_inv_sqrt(s)).collect();
    let an = Matrix::from_fn(m, n, |i, j| r1[i] * a.get(i, j) * c1[j]);

    // Number of singular vector pairs to use: l = ceil(log2 k), at least 1,
    // skipping the trivial first pair.
    let l = ((k as f64).log2().ceil() as usize).max(1);
    let svd = thin_svd(&an);
    let avail = svd.s.len();
    let take: Vec<usize> = (1..(1 + l).min(avail)).collect();
    if take.is_empty() {
        // Rank-1 matrix: everything is one bicluster.
        return Bicluster {
            row_labels: vec![0; m],
            col_labels: vec![0; n],
            row_order: (0..m).collect(),
            col_order: (0..n).collect(),
        };
    }
    let u = svd.u.select_cols(&take);
    let v = svd.v.select_cols(&take);

    // Scale embeddings by the degree factors and stack.
    let zu = Matrix::from_fn(m, take.len(), |i, t| r1[i] * u.get(i, t));
    let zv = Matrix::from_fn(n, take.len(), |j, t| c1[j] * v.get(j, t));
    let z = zu.vstack(&zv);
    let km = kmeans(&z, k.min(m + n), 200, seed);

    let row_labels = km.labels[..m].to_vec();
    let col_labels = km.labels[m..].to_vec();
    Bicluster {
        row_order: order_by_label(&row_labels),
        col_order: order_by_label(&col_labels),
        row_labels,
        col_labels,
    }
}

fn safe_inv_sqrt(s: f64) -> f64 {
    if s > 0.0 {
        1.0 / s.sqrt()
    } else {
        1.0
    }
}

/// Stable permutation grouping indices by label.
fn order_by_label(labels: &[usize]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..labels.len()).collect();
    idx.sort_by_key(|&i| (labels[i], i));
    idx
}

/// Block purity of a co-clustered 0-1 matrix: the fraction of ones that lie
/// in blocks where row and column share a label. 1.0 on perfectly
/// block-diagonal data (diagnostic used by tests and benches).
pub fn block_purity(a: &Matrix, bc: &Bicluster) -> f64 {
    let mut inside = 0.0;
    let mut total = 0.0;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let v = a.get(i, j);
            if v > 0.5 {
                total += 1.0;
                if bc.row_labels[i] == bc.col_labels[j] {
                    inside += 1.0;
                }
            }
        }
    }
    if total == 0.0 {
        1.0
    } else {
        inside / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block-diagonal 0-1 matrix with two blocks.
    fn two_block() -> Matrix {
        Matrix::from_fn(8, 10, |i, j| if (i < 4) == (j < 5) { 1.0 } else { 0.0 })
    }

    #[test]
    fn recovers_two_blocks() {
        let a = two_block();
        let bc = spectral_cocluster(&a, 2, 0);
        assert_eq!(bc.row_labels.len(), 8);
        assert_eq!(bc.col_labels.len(), 10);
        // Rows 0..4 together, 4..8 together; and each row block shares its
        // label with its column block.
        assert!(bc.row_labels[..4].iter().all(|&l| l == bc.row_labels[0]));
        assert!(bc.row_labels[4..].iter().all(|&l| l == bc.row_labels[4]));
        assert_ne!(bc.row_labels[0], bc.row_labels[4]);
        assert!(
            (block_purity(&a, &bc) - 1.0).abs() < 1e-12,
            "purity on block-diagonal input"
        );
    }

    #[test]
    fn permutations_are_valid() {
        let a = two_block();
        let bc = spectral_cocluster(&a, 2, 0);
        let mut ro = bc.row_order.clone();
        ro.sort_unstable();
        assert_eq!(ro, (0..8).collect::<Vec<_>>());
        let mut co = bc.col_order.clone();
        co.sort_unstable();
        assert_eq!(co, (0..10).collect::<Vec<_>>());
        // Reordered labels are sorted (grouped).
        let sorted_labels: Vec<usize> = bc.row_order.iter().map(|&i| bc.row_labels[i]).collect();
        assert!(sorted_labels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = two_block();
        let b1 = spectral_cocluster(&a, 2, 5);
        let b2 = spectral_cocluster(&a, 2, 5);
        assert_eq!(b1.row_labels, b2.row_labels);
        assert_eq!(b1.col_labels, b2.col_labels);
    }

    #[test]
    fn noisy_blocks_mostly_pure() {
        // Flip a few entries of the clean block matrix.
        let mut a = two_block();
        a.set(0, 9, 1.0);
        a.set(7, 0, 1.0);
        let bc = spectral_cocluster(&a, 2, 1);
        assert!(
            block_purity(&a, &bc) > 0.85,
            "noise should only slightly reduce purity, got {}",
            block_purity(&a, &bc)
        );
    }

    #[test]
    fn rank_one_collapses_to_single_cluster() {
        let a = Matrix::full(4, 6, 1.0);
        let bc = spectral_cocluster(&a, 2, 0);
        // All-ones matrix has no second singular direction worth splitting;
        // purity is trivially fine either way, but labels must be valid.
        assert_eq!(bc.row_labels.len(), 4);
        assert!(bc.row_labels.iter().all(|&l| l < 2));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_input_panics() {
        let a = Matrix::from_rows(&[vec![-1.0, 2.0]]);
        let _ = spectral_cocluster(&a, 1, 0);
    }
}
