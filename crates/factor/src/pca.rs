//! Principal component analysis — the baseline the paper's threats-to-
//! validity section names as an alternative to NNMF ("there are other
//! dimension reduction techniques, such as PCA, MDS that could be
//! considered").

use anchors_linalg::stats::center_cols;
use anchors_linalg::{matmul, sym_eigen, Matrix};
use serde::{Deserialize, Serialize};

/// A fitted PCA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Column means of the training data (for centering new data).
    pub means: Vec<f64>,
    /// Principal axes as columns (`features × k`), orthonormal.
    pub components: Matrix,
    /// Variance explained by each component, descending.
    pub explained_variance: Vec<f64>,
    /// Fraction of total variance captured by each component.
    pub explained_ratio: Vec<f64>,
}

/// Fit a `k`-component PCA on `data` (rows = observations, cols = features).
///
/// Uses the covariance route (feature count in this project is at most a few
/// hundred tags, so the Jacobi eigensolver is adequate).
///
/// # Panics
/// Panics if `k` is 0 or exceeds the feature count.
pub fn pca(data: &Matrix, k: usize) -> Pca {
    let (n, p) = data.shape();
    assert!(k > 0 && k <= p, "k = {k} out of range for {p} features");
    let mut centered = data.clone();
    let means = center_cols(&mut centered);
    let cov = if n < 2 {
        Matrix::zeros(p, p)
    } else {
        anchors_linalg::ops::scale(&anchors_linalg::gram(&centered), 1.0 / (n as f64 - 1.0))
    };
    let eig = sym_eigen(&cov);
    let total: f64 = eig.values.iter().map(|&l| l.max(0.0)).sum();
    let idx: Vec<usize> = (0..k).collect();
    let components = eig.vectors.select_cols(&idx);
    let explained_variance: Vec<f64> = eig.values[..k].iter().map(|&l| l.max(0.0)).collect();
    let explained_ratio = explained_variance
        .iter()
        .map(|&v| if total > 0.0 { v / total } else { 0.0 })
        .collect();
    Pca {
        means,
        components,
        explained_variance,
        explained_ratio,
    }
}

impl Pca {
    /// Project data (rows = observations) onto the principal axes.
    ///
    /// # Panics
    /// Panics if the feature count differs from the training data.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.means.len(), "feature count mismatch");
        let mut centered = data.clone();
        for i in 0..centered.rows() {
            for (j, v) in centered.row_mut(i).iter_mut().enumerate() {
                *v -= self.means[j];
            }
        }
        matmul(&centered, &self.components)
    }

    /// Map scores back to the original feature space (adds the means back).
    pub fn inverse_transform(&self, scores: &Matrix) -> Matrix {
        let mut x = matmul(scores, &self.components.transpose());
        for i in 0..x.rows() {
            for (j, v) in x.row_mut(i).iter_mut().enumerate() {
                *v += self.means[j];
            }
        }
        x
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along the direction (1, 1) with small orthogonal noise.
    fn line_data() -> Matrix {
        Matrix::from_fn(20, 2, |i, j| {
            let t = i as f64 - 10.0;
            let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
            if j == 0 {
                t + noise
            } else {
                t - noise
            }
        })
    }

    #[test]
    fn first_component_captures_line() {
        let d = line_data();
        let p = pca(&d, 2);
        assert!(
            p.explained_ratio[0] > 0.99,
            "first PC should dominate, got {:?}",
            p.explained_ratio
        );
        // Direction ≈ (1,1)/√2 up to sign.
        let c0 = p.components.col(0);
        assert!((c0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
        assert!((c0[0] - c0[1]).abs() < 0.02 || (c0[0] + c0[1]).abs() < 0.02);
    }

    #[test]
    fn transform_centers_scores() {
        let d = line_data();
        let p = pca(&d, 2);
        let scores = p.transform(&d);
        for j in 0..2 {
            let mean: f64 = scores.col(j).iter().sum::<f64>() / scores.rows() as f64;
            assert!(mean.abs() < 1e-9, "scores must be centered");
        }
    }

    #[test]
    fn inverse_transform_roundtrip_full_rank() {
        let d = line_data();
        let p = pca(&d, 2);
        let rec = p.inverse_transform(&p.transform(&d));
        assert!(rec.approx_eq(&d, 1e-8));
    }

    #[test]
    fn truncated_reconstruction_close_on_near_rank1() {
        let d = line_data();
        let p = pca(&d, 1);
        let rec = p.inverse_transform(&p.transform(&d));
        let err = anchors_linalg::relative_error(&d, &rec);
        assert!(err < 0.02, "1-PC reconstruction error {err}");
    }

    #[test]
    fn explained_variance_descending_nonnegative() {
        let d = Matrix::from_fn(15, 4, |i, j| ((i * (j + 1)) % 7) as f64);
        let p = pca(&d, 4);
        for w in p.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(p.explained_variance.iter().all(|&v| v >= 0.0));
        let ratio_sum: f64 = p.explained_ratio.iter().sum();
        assert!(ratio_sum <= 1.0 + 1e-9);
    }

    #[test]
    fn single_observation_yields_zero_variance() {
        let d = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let p = pca(&d, 2);
        assert!(p.explained_variance.iter().all(|&v| v == 0.0));
    }
}
