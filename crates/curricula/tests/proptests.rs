//! Property-based tests of the ontology tree laws over the real CS2013 and
//! PDC12 data.

use anchors_curricula::{cs2013, pdc12, Level, NodeId, Ontology};
use proptest::prelude::*;

fn guideline() -> impl Strategy<Value = &'static Ontology> {
    prop_oneof![Just(cs2013()), Just(pdc12())]
}

proptest! {
    #[test]
    fn path_starts_at_root_ends_at_node(g in guideline(), idx in 0usize..600) {
        let id = NodeId((idx % g.len()) as u32);
        let path = g.path(id);
        prop_assert_eq!(path[0], g.root());
        prop_assert_eq!(*path.last().unwrap(), id);
        // Consecutive path entries are parent/child.
        for w in path.windows(2) {
            prop_assert_eq!(g.node(w[1]).parent, Some(w[0]));
        }
    }

    #[test]
    fn ancestorhood_is_reflexive_and_antisymmetric(g in guideline(), i in 0usize..600, j in 0usize..600) {
        let a = NodeId((i % g.len()) as u32);
        let b = NodeId((j % g.len()) as u32);
        prop_assert!(g.is_ancestor(a, a));
        if a != b && g.is_ancestor(a, b) {
            prop_assert!(!g.is_ancestor(b, a), "two distinct nodes cannot be mutual ancestors");
        }
    }

    #[test]
    fn knowledge_area_is_on_path(g in guideline(), idx in 0usize..600) {
        let id = NodeId((idx % g.len()) as u32);
        if let Some(ka) = g.knowledge_area_of(id) {
            prop_assert!(g.is_ancestor(ka, id));
            prop_assert_eq!(g.node(ka).level, Level::KnowledgeArea);
        } else {
            prop_assert_eq!(id, g.root());
        }
    }

    #[test]
    fn leaves_under_are_descendants(g in guideline(), idx in 0usize..600) {
        let id = NodeId((idx % g.len()) as u32);
        for leaf in g.leaves_under(id) {
            prop_assert!(g.is_ancestor(id, leaf));
            prop_assert!(matches!(
                g.node(leaf).level,
                Level::Topic | Level::LearningOutcome
            ));
        }
    }

    #[test]
    fn preorder_of_subtree_contains_exactly_descendants(g in guideline(), idx in 0usize..600) {
        let id = NodeId((idx % g.len()) as u32);
        let sub = g.preorder(id);
        for &n in &sub {
            prop_assert!(g.is_ancestor(id, n));
        }
        // Size sanity: leaves_under is a subset of the preorder.
        prop_assert!(g.leaves_under(id).len() < sub.len() || sub.len() == 1);
    }

    #[test]
    fn codes_roundtrip(g in guideline(), idx in 0usize..600) {
        let id = NodeId((idx % g.len()) as u32);
        let code = &g.node(id).code;
        prop_assert_eq!(g.by_code(code), Some(id));
    }
}

#[test]
fn ontologies_validate() {
    cs2013().validate().expect("CS2013 valid");
    pdc12().validate().expect("PDC12 valid");
}

#[test]
fn serde_roundtrip_full_guidelines() {
    for g in [cs2013(), pdc12()] {
        let json = serde_json::to_string(g).expect("serialize");
        let mut back: Ontology = serde_json::from_str(&json).expect("deserialize");
        back.reindex();
        back.validate().expect("valid after roundtrip");
        assert_eq!(back.len(), g.len());
        assert_eq!(back.leaf_items().len(), g.leaf_items().len());
    }
}
