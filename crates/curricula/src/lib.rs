//! # anchors-curricula
//!
//! Curriculum-guideline ontologies for the `pdc-anchors` reproduction of
//! *Data-Driven Discovery of Anchor Points for PDC Content* (SC-W 2023).
//!
//! Two guidelines are encoded as static data and lowered into tree
//! ontologies:
//!
//! * [`cs2013()`] — the ACM/IEEE Computer Science Curricula 2013 body of
//!   knowledge (all 18 knowledge areas; knowledge units → topics and
//!   learning outcomes with core-1/core-2/elective tiers and mastery
//!   levels). Course classifications in the paper reference these items.
//! * [`pdc12()`] — the NSF/IEEE-TCPP 2012 Parallel and Distributed
//!   Computing curriculum (four areas; topics with Bloom levels and a
//!   core/elective split). The recommender maps its topics onto CS2013
//!   anchor points.
//!
//! Both builders are deterministic; [`cs2013()`]/[`pdc12()`] memoize the
//! built tree for the lifetime of the process.

pub mod crosswalk;
pub mod cs2013;
pub mod ontology;
pub mod pdc12;
pub mod spec;

pub use crosswalk::{crosswalk, cs_anchors_of_pdc_topic, pdc_units_anchorable_at};
pub use ontology::{Bloom, Level, Mastery, Node, NodeId, Ontology, OntologyBuilder, Tier};

use std::sync::OnceLock;

static CS2013: OnceLock<Ontology> = OnceLock::new();
static PDC12: OnceLock<Ontology> = OnceLock::new();

/// The process-wide CS2013 ontology.
pub fn cs2013() -> &'static Ontology {
    CS2013.get_or_init(cs2013::build)
}

/// The process-wide PDC12 ontology.
pub fn pdc12() -> &'static Ontology {
    PDC12.get_or_init(pdc12::build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_instances_are_stable() {
        let a = cs2013() as *const Ontology;
        let b = cs2013() as *const Ontology;
        assert_eq!(a, b);
        assert_eq!(pdc12() as *const Ontology, pdc12() as *const Ontology);
    }

    #[test]
    fn guidelines_do_not_collide() {
        assert_ne!(cs2013().name, pdc12().name);
        assert!(cs2013().len() > pdc12().len());
    }
}
