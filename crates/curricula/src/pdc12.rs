//! The NSF/IEEE-TCPP 2012 curriculum for Parallel and Distributed Computing
//! (PDC12).
//!
//! Encoded per the published structure: four areas (Architecture,
//! Programming, Algorithms, Cross-Cutting and Advanced Topics); topics carry
//! Bloom levels (Know / Comprehend / Apply) and a core/elective tier.
//! Contrary to CS2013, PDC12 presents learning outcomes as topic
//! descriptions rather than separate items, so this ontology has topics
//! only.

use crate::ontology::Bloom::*;
use crate::ontology::Ontology;
use crate::ontology::Tier::{Core1, Elective};
use crate::spec::{build_pdc_ontology, PdcArea, PdcTopic, PdcUnit};

const fn t(
    label: &'static str,
    bloom: crate::ontology::Bloom,
    tier: crate::ontology::Tier,
) -> PdcTopic {
    PdcTopic { label, bloom, tier }
}

static ARCHITECTURE: PdcArea = PdcArea {
    code: "ARCH",
    label: "Architecture",
    units: &[
        PdcUnit {
            code: "CLS",
            label: "Classes of Architecture",
            topics: &[
                t(
                    "Taxonomy: Flynn's classification (SISD, SIMD, MIMD)",
                    Know,
                    Core1,
                ),
                t("Superscalar (ILP) execution", Know, Core1),
                t(
                    "SIMD and vector units: the idea of a single instruction on multiple data",
                    Know,
                    Core1,
                ),
                t(
                    "Pipelines as overlapped execution (instruction pipelining)",
                    Comprehend,
                    Core1,
                ),
                t("Streams and GPU architectures", Know, Core1),
                t(
                    "MIMD: multicore and clusters as the dominant classes",
                    Know,
                    Core1,
                ),
                t("Simultaneous multithreading", Know, Elective),
                t("Highly multithreaded architectures", Know, Elective),
                t(
                    "Heterogeneous architectures combining CPUs and accelerators",
                    Know,
                    Elective,
                ),
            ],
        },
        PdcUnit {
            code: "MEM",
            label: "Memory Hierarchy and Communication",
            topics: &[
                t(
                    "Cyber-physical view of memory: latency grows with distance",
                    Know,
                    Core1,
                ),
                t(
                    "Cache organization in multicore processors",
                    Comprehend,
                    Core1,
                ),
                t(
                    "Atomicity of memory operations and its hardware support",
                    Know,
                    Core1,
                ),
                t(
                    "Consistency and coherence in shared-memory multiprocessors",
                    Know,
                    Core1,
                ),
                t("Sequential consistency as the intuitive model", Know, Core1),
                t("False sharing and its performance impact", Know, Elective),
                t(
                    "Interconnects: buses, crossbars, and network topologies",
                    Know,
                    Elective,
                ),
                t(
                    "Latency and bandwidth as the two axes of communication cost",
                    Comprehend,
                    Core1,
                ),
            ],
        },
        PdcUnit {
            code: "PERF",
            label: "Performance Metrics (architecture)",
            topics: &[
                t("Peak versus sustained performance", Know, Core1),
                t("MIPS/FLOPS as measures of machine rate", Know, Core1),
                t("Benchmarks such as LINPACK and their role", Know, Elective),
                t(
                    "Effects of non-uniform memory access on performance",
                    Know,
                    Elective,
                ),
            ],
        },
    ],
};

static PROGRAMMING: PdcArea = PdcArea {
    code: "PROG",
    label: "Programming",
    units: &[
        PdcUnit {
            code: "PAR",
            label: "Parallel Programming Paradigms and Notations",
            topics: &[
                t(
                    "Programming by task decomposition versus data decomposition",
                    Comprehend,
                    Core1,
                ),
                t("Shared-memory programming with threads", Apply, Core1),
                t(
                    "Language extensions and compiler directives (OpenMP-style parallel-for)",
                    Apply,
                    Core1,
                ),
                t("Libraries for threading and tasking", Apply, Core1),
                t("Message-passing programming (MPI-style SPMD)", Apply, Core1),
                t(
                    "Client-server and distributed-object paradigms (CORBA/RPC style)",
                    Know,
                    Elective,
                ),
                t(
                    "Task/thread spawning and fork-join (cilk-style) parallelism",
                    Apply,
                    Core1,
                ),
                t(
                    "Data-parallel constructs: parallel loops over independent iterations",
                    Apply,
                    Core1,
                ),
                t(
                    "Futures and promises as asynchronous result handles",
                    Know,
                    Elective,
                ),
                t("Hybrid programming models", Know, Elective),
                t(
                    "GPU/accelerator kernels as a programming model",
                    Know,
                    Elective,
                ),
            ],
        },
        PdcUnit {
            code: "SEM",
            label: "Semantics and Correctness Issues",
            topics: &[
                t(
                    "Tasks and threads: the unit of asynchronous execution",
                    Apply,
                    Core1,
                ),
                t(
                    "Synchronization: critical sections, producer-consumer, barriers",
                    Apply,
                    Core1,
                ),
                t(
                    "Concurrency defects: data races, deadlock, livelock",
                    Comprehend,
                    Core1,
                ),
                t(
                    "Memory models: why data races void intuitive semantics",
                    Know,
                    Core1,
                ),
                t(
                    "Mutual exclusion primitives: locks, semaphores, monitors",
                    Apply,
                    Core1,
                ),
                t(
                    "Thread safety of library types and containers",
                    Comprehend,
                    Core1,
                ),
                t(
                    "Nondeterminism in parallel execution and reproducibility",
                    Comprehend,
                    Core1,
                ),
                t(
                    "Floating-point reduction order: why parallel sums can differ run to run",
                    Comprehend,
                    Core1,
                ),
                t("Tools that detect concurrency defects", Know, Elective),
            ],
        },
        PdcUnit {
            code: "PPP",
            label: "Performance Issues (programming)",
            topics: &[
                t(
                    "Computation decomposition strategies and granularity",
                    Comprehend,
                    Core1,
                ),
                t(
                    "Load balancing: static versus dynamic assignment",
                    Comprehend,
                    Core1,
                ),
                t(
                    "Scheduling and mapping of tasks to execution resources",
                    Comprehend,
                    Core1,
                ),
                t(
                    "Data distribution and its effect on communication",
                    Know,
                    Core1,
                ),
                t(
                    "Data locality and memory-hierarchy-aware programming",
                    Know,
                    Core1,
                ),
                t("Performance monitoring and profiling tools", Know, Elective),
                t("Speedup measurement methodology", Apply, Core1),
            ],
        },
    ],
};

static ALGORITHMS: PdcArea = PdcArea {
    code: "ALG",
    label: "Algorithms",
    units: &[
        PdcUnit {
            code: "MOD",
            label: "Parallel and Distributed Models and Complexity",
            topics: &[
                t("Costs of computation: time, space, power", Comprehend, Core1),
                t("Cost reduction via parallelism: latency hiding and throughput", Know, Core1),
                t("Asymptotic analysis (Big-Oh) extended to parallel costs", Apply, Core1),
                t("Work and span; the work-time framework", Comprehend, Core1),
                t("Directed acyclic graphs as a model of parallel computation", Comprehend, Core1),
                t("Critical path length as the limit of parallel speedup", Comprehend, Core1),
                t("Speedup, efficiency, and Amdahl's law", Comprehend, Core1),
                t("Scalability: strong versus weak scaling", Know, Core1),
                t("PRAM as an idealized shared-memory model", Know, Elective),
                t("BSP and communication-cost models", Know, Elective),
                t("Notions of dependency and data flow between tasks", Comprehend, Core1),
            ],
        },
        PdcUnit {
            code: "AP",
            label: "Algorithmic Paradigms",
            topics: &[
                t("Divide and conquer as a source of task parallelism", Apply, Core1),
                t("Recursion and recursive task spawning", Apply, Core1),
                t("Reduction (map-reduce style aggregation)", Apply, Core1),
                t("Scan (parallel prefix) and its applications", Comprehend, Core1),
                t("Embarrassingly parallel (independent task) computations", Apply, Core1),
                t("Master-worker and work queues", Comprehend, Core1),
                t("Pipelines and streaming computations", Know, Core1),
                t("Dynamic programming: bottom-up wavefront parallelism versus top-down memoization", Comprehend, Elective),
                t("Brute-force and exhaustive search as parallel workloads", Apply, Core1),
                t("Blocking and tiling for locality", Know, Elective),
            ],
        },
        PdcUnit {
            code: "APROB",
            label: "Algorithmic Problems",
            topics: &[
                t("Parallel communication operations: broadcast, scatter, gather", Comprehend, Core1),
                t("Asynchrony and synchronization in algorithm design", Know, Core1),
                t("Parallel sorting algorithms such as parallel merge sort", Comprehend, Core1),
                t("Parallel search over structured and unstructured spaces", Know, Core1),
                t("Parallel matrix computations (matrix-vector, matrix-matrix)", Comprehend, Elective),
                t("Parallel graph algorithms: traversal and connectivity", Know, Elective),
                t("Topological sort and scheduling of task graphs", Comprehend, Elective),
                t("List scheduling and critical-path scheduling heuristics", Know, Elective),
                t("Termination detection of distributed computations", Know, Elective),
                t("Leader election and symmetry breaking", Know, Elective),
            ],
        },
    ],
};

static CROSSCUT: PdcArea = PdcArea {
    code: "XCUT",
    label: "Cross-Cutting and Advanced Topics",
    units: &[
        PdcUnit {
            code: "HLT",
            label: "High-Level Themes",
            topics: &[
                t(
                    "Why and what is parallel/distributed computing",
                    Know,
                    Core1,
                ),
                t(
                    "The power wall and the inevitability of parallel hardware",
                    Know,
                    Core1,
                ),
                t("Concurrency as a pervasive system phenomenon", Know, Core1),
                t(
                    "Locality as a cross-cutting performance principle",
                    Know,
                    Core1,
                ),
            ],
        },
        PdcUnit {
            code: "XTOP",
            label: "Cross-Cutting Topics",
            topics: &[
                t("Nondeterminism as a cross-cutting concern", Know, Core1),
                t("Power consumption as a design constraint", Know, Core1),
                t("Fault tolerance in large-scale systems", Know, Elective),
                t(
                    "Distributed resource management and scheduling",
                    Know,
                    Elective,
                ),
                t("Security in distributed systems", Know, Elective),
                t("Performance modeling across the stack", Know, Elective),
            ],
        },
        PdcUnit {
            code: "ADV",
            label: "Advanced Topics",
            topics: &[
                t("Cluster and data-center computing", Know, Elective),
                t("Cloud computing and elasticity", Know, Elective),
                t("Consistency in distributed transactions", Know, Elective),
                t(
                    "Web search as a massively parallel workload",
                    Know,
                    Elective,
                ),
                t("Social networking analysis at scale", Know, Elective),
                t("Collaborative and peer-to-peer systems", Know, Elective),
            ],
        },
    ],
};

/// Build a fresh PDC12 ontology. Prefer [`crate::pdc12()`] which caches.
pub fn build() -> Ontology {
    build_pdc_ontology(
        "NSF/IEEE-TCPP PDC 2012",
        &[&ARCHITECTURE, &PROGRAMMING, &ALGORITHMS, &CROSSCUT],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::{Bloom, Level, Tier};

    #[test]
    fn has_four_areas() {
        let o = build();
        let areas: Vec<&str> = o
            .at_level(Level::KnowledgeArea)
            .map(|id| o.node(id).code.as_str())
            .collect();
        assert_eq!(areas, vec!["ARCH", "PROG", "ALG", "XCUT"]);
    }

    #[test]
    fn every_topic_has_bloom() {
        let o = build();
        for id in o.at_level(Level::Topic) {
            assert!(
                o.node(id).bloom.is_some(),
                "{} lacks Bloom",
                o.node(id).code
            );
        }
    }

    #[test]
    fn two_tier_structure_core_and_elective_only() {
        let o = build();
        for id in o.at_level(Level::Topic) {
            let t = o.node(id).tier;
            assert!(
                t == Tier::Core1 || t == Tier::Elective,
                "PDC12 exposes only core and elective, found {t:?}"
            );
        }
    }

    #[test]
    fn anchors_named_in_section_5_2_are_present() {
        let o = build();
        let labels: Vec<String> = o.nodes().iter().map(|n| n.label.to_lowercase()).collect();
        for needle in [
            "floating-point reduction order",
            "parallel loops",
            "futures and promises",
            "thread safety of library types",
            "directed acyclic graphs",
            "critical path",
            "list scheduling",
            "topological sort",
            "dynamic programming",
            "brute-force",
        ] {
            assert!(
                labels.iter().any(|l| l.contains(needle)),
                "PDC12 must contain an anchorable topic for {needle:?}"
            );
        }
    }

    #[test]
    fn core_topics_have_sensible_blooms() {
        let o = build();
        let mut apply = 0;
        for id in o.at_level(Level::Topic) {
            if o.node(id).bloom == Some(Bloom::Apply) {
                apply += 1;
            }
        }
        assert!(
            apply >= 10,
            "expected a rich set of Apply-level topics, got {apply}"
        );
    }

    #[test]
    fn validates_and_has_size() {
        let o = build();
        o.validate().expect("valid");
        assert!(o.leaf_items().len() >= 80, "PDC12 should have 80+ topics");
    }
}
