//! CS2013 Knowledge Area: Information Assurance and Security (IAS).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "IAS",
    label: "Information Assurance and Security",
    units: &[
        Ku {
            code: "FC",
            label: "Foundational Concepts in Security",
            tier: Core1,
            topics: &[
                "CIA: confidentiality, integrity, availability",
                "Concepts of risk, threats, vulnerabilities, and attack vectors",
                "Authentication and authorization; access control",
                "The concept of trust and trustworthiness",
                "Ethics in security research and practice",
            ],
            outcomes: &[
                ("Analyze the tradeoffs of balancing key security properties (confidentiality, integrity, availability)", Usage),
                ("Describe the concepts of risk, threats, vulnerabilities and attack vectors", Familiarity),
                ("Explain the concepts of authentication, authorization, and access control", Familiarity),
                ("Explain the concept of trust and trustworthiness", Familiarity),
            ],
        },
        Ku {
            code: "DP",
            label: "Defensive Programming",
            tier: Core1,
            topics: &[
                "Input validation and data sanitization",
                "Choice of programming language and type-safe languages",
                "Examples of input validation and data sanitization errors: buffer overflows, integer errors, SQL injection",
                "Race conditions as a security concern",
                "Correct handling of exceptions and unexpected behaviors",
                "Correct usage of third-party components",
                "Security updates and patching",
            ],
            outcomes: &[
                ("Explain why input validation and data sanitization are necessary in the face of adversarial control of the input channel", Familiarity),
                ("Write a program that performs input validation correctly", Usage),
                ("Demonstrate using a high-level programming language how to prevent a race condition from occurring", Usage),
                ("Explain the risks of relying on third-party code and mitigation strategies", Familiarity),
                ("Rewrite a simple program to remove common vulnerabilities such as buffer overflows and integer overflows", Usage),
            ],
        },
        Ku {
            code: "TA",
            label: "Threats and Attacks",
            tier: Core2,
            topics: &[
                "Attacker goals, capabilities, and motivations",
                "Malware taxonomy: viruses, worms, trojans, ransomware",
                "Denial of service and distributed denial of service",
                "Social engineering and phishing",
            ],
            outcomes: &[
                ("Describe likely attacker types against a particular system", Familiarity),
                ("Discuss the limitations of malware countermeasures", Familiarity),
                ("Describe the different categories of network threats and attacks", Familiarity),
            ],
        },
        Ku {
            code: "CRY",
            label: "Cryptography",
            tier: Core2,
            topics: &[
                "Basic terminology: plaintext, ciphertext, keys",
                "Symmetric ciphers and block cipher modes",
                "Public-key cryptography and key exchange",
                "Cryptographic hash functions and integrity",
                "Digital signatures and certificates",
            ],
            outcomes: &[
                ("Describe the purpose of cryptography and list ways it is used in data communications", Familiarity),
                ("Explain how public key infrastructure supports digital signing and encryption", Familiarity),
                ("Use cryptographic primitives (hashing, symmetric and asymmetric encryption) in a small program", Usage),
            ],
        },
        Ku {
            code: "NS",
            label: "Network Security",
            tier: Core2,
            topics: &[
                "Network-specific threats and attack types: denial of service, spoofing, sniffing",
                "Use of cryptography for data and network security",
                "Firewalls and virtual private networks",
                "Architectures for secure networks: TLS and secure channels",
                "Intrusion detection basics",
            ],
            outcomes: &[
                ("Describe the different categories of network threats and attacks", Familiarity),
                ("Describe the architecture for public and private key cryptography and how public key infrastructure supports network security", Familiarity),
                ("Identify the appropriate defense mechanism and its limitations given a network threat", Usage),
            ],
        },
    ],
};
