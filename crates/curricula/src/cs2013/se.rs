//! CS2013 Knowledge Area: Software Engineering (SE).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "SE",
    label: "Software Engineering",
    units: &[
        Ku {
            code: "SP",
            label: "Software Processes",
            tier: Core1,
            topics: &[
                "Systems-level considerations: interaction of software with its intended environment",
                "Software process models such as waterfall, incremental, and agile",
                "Programming in the large versus individual programming",
                "Phases of software life-cycles",
                "Process tailoring and quality assurance",
            ],
            outcomes: &[
                ("Describe how software can interact with and participate in various systems", Familiarity),
                ("Describe the relative advantages and disadvantages among several major process models", Familiarity),
                ("Differentiate among the phases of software development", Familiarity),
                ("Explain the concept of a software life cycle and provide an example illustrating its phases", Familiarity),
            ],
        },
        Ku {
            code: "SPM",
            label: "Software Project Management",
            tier: Core2,
            topics: &[
                "Team participation: roles, processes, and conflict resolution",
                "Effort estimation at the personal level",
                "Risk identification and management",
                "Project scheduling and tracking",
                "Version control and configuration management in team settings",
            ],
            outcomes: &[
                ("Discuss common behaviors that contribute to the effective functioning of a team", Familiarity),
                ("Create and follow an agenda for a team meeting", Usage),
                ("Identify and justify necessary roles in a software development team", Usage),
                ("Use a version-control system as part of a team workflow", Usage),
            ],
        },
        Ku {
            code: "TE",
            label: "Tools and Environments",
            tier: Core2,
            topics: &[
                "Software configuration management and version control",
                "Release management",
                "Requirements tracing and bug tracking",
                "Build systems and continuous integration",
                "Testing tools and coverage measurement",
                "Programming environments that automate parts of software construction",
            ],
            outcomes: &[
                ("Describe the difference between centralized and distributed software configuration management", Familiarity),
                ("Describe how version control can be used to help manage software release management", Familiarity),
                ("Demonstrate the capability to use software tools in support of the development of a software product of medium size", Usage),
            ],
        },
        Ku {
            code: "RE",
            label: "Requirements Engineering",
            tier: Core2,
            topics: &[
                "Describing functional requirements using use cases and user stories",
                "Non-functional requirements and quality attributes",
                "Requirements elicitation from stakeholders",
                "Evaluation and negotiation of requirements",
                "Prototyping as a requirements validation technique",
            ],
            outcomes: &[
                ("List the key components of a use case or similar description of some behavior that is required for a system", Familiarity),
                ("Describe how the requirements engineering process supports the elicitation and validation of behavioral requirements", Familiarity),
                ("Interpret a given requirements model for a simple software system", Familiarity),
                ("Conduct a review of a set of software requirements to determine the quality of the requirements", Usage),
            ],
        },
        Ku {
            code: "SD",
            label: "Software Design",
            tier: Core1,
            topics: &[
                "System design principles: levels of abstraction, separation of concerns, information hiding",
                "Coupling and cohesion",
                "Design patterns and their applicability",
                "Structural and behavioral models of software designs",
                "Programming interfaces (APIs) as contracts",
                "Refactoring designs and architectural smells",
                "Software architecture styles such as layered and pipe-and-filter",
            ],
            outcomes: &[
                ("Articulate design principles including separation of concerns, information hiding, coupling and cohesion, and encapsulation", Familiarity),
                ("Use a design paradigm to design a simple software system, and explain how system design principles have been applied in this design", Usage),
                ("Construct models of the design of a simple software system that are appropriate for the paradigm used to design it", Usage),
                ("For the design of a simple software system within the context of a single design paradigm, describe the software architecture of that system", Familiarity),
                ("Apply simple examples of patterns in a software design", Usage),
            ],
        },
        Ku {
            code: "SC",
            label: "Software Construction",
            tier: Core2,
            topics: &[
                "Coding practices: techniques, idioms/patterns, mechanisms for building quality programs",
                "Defensive coding practices and secure coding",
                "Coding standards",
                "Potential security problems in programs: buffer overflows, input validation",
                "Documentation of code and APIs",
            ],
            outcomes: &[
                ("Describe techniques, coding idioms and mechanisms for implementing designs to achieve desired properties such as reliability, efficiency, and robustness", Familiarity),
                ("Write robust code using exception-handling mechanisms", Usage),
                ("Describe secure coding and defensive coding practices", Familiarity),
                ("Select and use a defined coding standard in a small software project", Usage),
            ],
        },
        Ku {
            code: "SVV",
            label: "Software Verification and Validation",
            tier: Core2,
            topics: &[
                "Verification and validation terminology",
                "Testing objectives and levels: unit, integration, system, acceptance",
                "Test-case generation from specifications",
                "Black-box and white-box testing techniques",
                "Regression testing and test suites",
                "Defect tracking and triage",
                "Inspections, reviews, and audits",
            ],
            outcomes: &[
                ("Distinguish between program validation and verification", Familiarity),
                ("Describe the role that tools can play in the validation of software", Familiarity),
                ("Undertake, as part of a team activity, an inspection of a medium-size code segment", Usage),
                ("Describe and distinguish among the different types and levels of testing", Familiarity),
                ("Create and execute a test plan for a medium-size code segment", Usage),
                ("Use a defect-tracking tool to manage software defects in a small software project", Usage),
            ],
        },
        Ku {
            code: "SEV",
            label: "Software Evolution",
            tier: Core2,
            topics: &[
                "Software development in the context of large, pre-existing code bases",
                "Software evolution and legacy systems",
                "Refactoring of existing code",
                "Backward compatibility and deprecation",
            ],
            outcomes: &[
                ("Identify the principal issues associated with software evolution and explain their impact on the software life cycle", Familiarity),
                ("Discuss the challenges of evolving systems in a changing environment", Familiarity),
                ("Identify weaknesses in a given simple design, and remove them through refactoring", Usage),
            ],
        },
        Ku {
            code: "FM",
            label: "Formal Methods",
            tier: Elective,
            topics: &[
                "Role of formal specification and analysis techniques in software development",
                "Pre and post assertions and Hoare-style reasoning",
                "Formal specification languages and their tool support",
                "Model checking and state-space exploration",
                "Program derivation and correctness-by-construction",
            ],
            outcomes: &[
                ("Describe the role that formal verification techniques can play in the software development process", Familiarity),
                ("Apply formal specification and analysis techniques to software designs and programs with low complexity", Usage),
                ("Explain the potential benefits and drawbacks of using formal specification languages", Familiarity),
            ],
        },
    ],
};
