//! CS2013 Knowledge Area: Networking and Communication (NC).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "NC",
    label: "Networking and Communication",
    units: &[
        Ku {
            code: "INT",
            label: "Introduction to Networking",
            tier: Core1,
            topics: &[
                "Organization of the Internet: ISPs, content providers, end systems",
                "Switching techniques: circuits and packets",
                "Layers and their roles: physical through application",
                "Layering as a design principle; encapsulation",
                "Roles of protocols and standards",
            ],
            outcomes: &[
                ("Articulate the organization of the Internet", Familiarity),
                ("List and define the appropriate network terminology", Familiarity),
                ("Describe the layered structure of a typical networked architecture", Familiarity),
                ("Identify the different types of complexity in a network (edges, core, etc.)", Familiarity),
            ],
        },
        Ku {
            code: "NA",
            label: "Networked Applications",
            tier: Core1,
            topics: &[
                "Naming and address schemes: DNS, IP addresses, URIs",
                "Distributed application paradigms: client/server, peer-to-peer",
                "HTTP as an application-layer protocol",
                "Multiplexing with TCP and UDP; sockets",
                "Socket APIs and simple networked programs",
            ],
            outcomes: &[
                ("List the differences and the relations between names and addresses in a network", Familiarity),
                ("Define the principles behind naming schemes and resource location", Familiarity),
                ("Implement a simple client-server socket-based application", Usage),
            ],
        },
        Ku {
            code: "RDD",
            label: "Reliable Data Delivery",
            tier: Core2,
            topics: &[
                "Error control: retransmission, error correction",
                "Flow control and sliding windows",
                "Congestion control principles",
                "TCP as an example of reliable transport",
            ],
            outcomes: &[
                ("Describe the operation of reliable delivery protocols", Familiarity),
                ("List the factors that affect the performance of reliable delivery protocols", Familiarity),
                ("Design and implement a simple reliable protocol over an unreliable channel", Usage),
            ],
        },
        Ku {
            code: "RF",
            label: "Routing and Forwarding",
            tier: Core2,
            topics: &[
                "Routing versus forwarding",
                "Shortest-path routing and distance vector protocols",
                "Hierarchical addressing and scalability of routing",
                "IP as the network-layer protocol",
            ],
            outcomes: &[
                ("Describe the organization of the network layer", Familiarity),
                ("Describe how packets are forwarded in an IP network", Familiarity),
                ("Compute a shortest-path routing table from a topology with link weights", Usage),
            ],
        },
        Ku {
            code: "LAN",
            label: "Local Area Networks",
            tier: Core2,
            topics: &[
                "Multiple access problem and approaches: random access, scheduled access",
                "Ethernet frames and switching",
                "Local area network topologies",
                "Wireless LANs and the hidden-terminal problem",
            ],
            outcomes: &[
                ("Describe how frames are forwarded in an Ethernet network", Familiarity),
                ("Identify the differences between IP and Ethernet addressing", Familiarity),
                ("Describe the steps used in one common approach to the multiple access problem", Familiarity),
            ],
        },
        Ku {
            code: "MOB",
            label: "Mobility",
            tier: Elective,
            topics: &[
                "Principles of cellular networks",
                "Wireless access protocols such as 802.11",
                "Device-to-device handoff and roaming",
                "Challenges of mobility for transport protocols",
            ],
            outcomes: &[
                ("Describe the organization of a wireless network", Familiarity),
                ("Describe how wireless networks support mobile users", Familiarity),
                ("Explain the impact of mobility on congestion control", Familiarity),
            ],
        },
    ],
};
