//! CS2013 Knowledge Area: Software Development Fundamentals (SDF).
//!
//! The area the paper's Figure 4 shows as the only locus of 4-course
//! agreement among CS1 offerings, with 12 of 13 agreed items inside the
//! Fundamental Programming Concepts knowledge unit.

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "SDF",
    label: "Software Development Fundamentals",
    units: &[
        Ku {
            code: "AD",
            label: "Algorithms and Design",
            tier: Core1,
            topics: &[
                "The concept and properties of algorithms",
                "The role of algorithms in the problem-solving process",
                "Problem-solving strategies: iteration, brute force, divide and conquer",
                "Abstraction and decomposition of problems",
                "Separation of behavior and implementation",
                "Implementation of algorithms in a programming language",
                "Tracing the execution of an algorithm by hand",
                "Pseudocode as a design notation",
            ],
            outcomes: &[
                ("Discuss the importance of algorithms in the problem-solving process", Familiarity),
                ("Discuss how a problem may be solved by multiple algorithms each with different properties", Familiarity),
                ("Create algorithms for solving simple problems", Usage),
                ("Use a programming language to implement, test, and debug algorithms for solving simple problems", Usage),
                ("Implement, test, and debug simple recursive functions and procedures", Usage),
                ("Determine whether a recursive or iterative solution is most appropriate for a problem", Assessment),
                ("Implement a divide-and-conquer algorithm for a problem", Usage),
                ("Apply the techniques of decomposition to break a program into smaller pieces", Usage),
                ("Identify the data components and behaviors of multiple abstract data types", Usage),
            ],
        },
        Ku {
            code: "FPC",
            label: "Fundamental Programming Concepts",
            tier: Core1,
            topics: &[
                "Basic syntax and semantics of a higher-level language",
                "Variables and primitive data types",
                "Expressions and assignments",
                "Simple I/O including file I/O",
                "Conditional control structures",
                "Iterative control structures (loops)",
                "Functions and parameter passing",
                "The concept of recursion",
                "Scope and lifetime of variables",
                "Operator precedence and evaluation order",
                "String processing",
            ],
            outcomes: &[
                ("Analyze and explain the behavior of simple programs involving the fundamental programming constructs", Assessment),
                ("Identify and describe uses of primitive data types", Familiarity),
                ("Write programs that use primitive data types", Usage),
                ("Modify and expand short programs that use standard conditional and iterative control structures and functions", Usage),
                ("Design, implement, test, and debug a program that uses fundamental programming constructs including basic computation, simple I/O, standard conditional and iterative structures, function definition, and recursion", Usage),
                ("Choose appropriate conditional and iteration constructs for a given programming task", Assessment),
                ("Describe the concept of parameter passing and its mechanisms", Familiarity),
                ("Write a program that processes text files", Usage),
            ],
        },
        Ku {
            code: "FDS",
            label: "Fundamental Data Structures",
            tier: Core1,
            topics: &[
                "Arrays and their representation",
                "Records, structs, and heterogeneous aggregates",
                "Strings and string processing",
                "Stacks and their applications",
                "Queues and their applications",
                "Linked lists: singly and doubly linked",
                "Sets as an abstract data type",
                "Maps and associative containers",
                "References and aliasing",
                "Choosing an appropriate data structure for a problem",
            ],
            outcomes: &[
                ("Discuss the appropriate use of built-in data structures", Familiarity),
                ("Describe common applications for each of the following data structures: stack, queue, priority queue, set, and map", Familiarity),
                ("Write programs that use each of the following data structures: arrays, records, strings, linked lists, stacks, queues, sets, and maps", Usage),
                ("Compare alternative implementations of data structures with respect to performance", Assessment),
                ("Choose the appropriate data structure for modeling a given problem", Assessment),
                ("Describe how references allow multiple names for the same object", Familiarity),
            ],
        },
        Ku {
            code: "DM",
            label: "Development Methods",
            tier: Core1,
            topics: &[
                "Program comprehension and code reading",
                "Program correctness: the concept of a specification",
                "Defensive programming and input validation",
                "Assertions, preconditions, and postconditions",
                "Testing fundamentals: test-case design",
                "Unit testing and test automation",
                "Debugging strategies and tools",
                "Documentation and program style",
                "Code reviews and pair programming",
                "Modern programming environments and IDEs",
                "Refactoring as behavior-preserving change",
            ],
            outcomes: &[
                ("Trace the execution of a variety of code segments and write summaries of their computations", Assessment),
                ("Explain why the creation of correct program components is important in the production of high-quality software", Familiarity),
                ("Identify common coding errors that lead to insecure programs and apply strategies for avoiding them", Usage),
                ("Conduct a personal code review focused on common coding errors", Usage),
                ("Contribute to a small-team code review focused on component correctness", Usage),
                ("Describe how a contract can be used to specify the behavior of a program component", Familiarity),
                ("Create a unit test plan for a medium-size code segment", Usage),
                ("Apply a variety of strategies to the testing and debugging of simple programs", Usage),
                ("Construct and debug programs using the standard libraries available with a chosen programming language", Usage),
                ("Apply consistent documentation and program style standards that contribute to the readability and maintainability of software", Usage),
            ],
        },
    ],
};
