//! CS2013 Knowledge Area: Information Management (IM).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "IM",
    label: "Information Management",
    units: &[
        Ku {
            code: "IMC",
            label: "Information Management Concepts",
            tier: Core1,
            topics: &[
                "Information systems as socio-technical systems",
                "Basic information storage and retrieval concepts",
                "Information capture, representation, and organization",
                "Quality issues: reliability, scalability, efficiency, and effectiveness of information access",
                "Datasets: acquisition, formats, and cleaning",
            ],
            outcomes: &[
                ("Describe how humans gain access to information and data to support their needs", Familiarity),
                ("Compare and contrast information with data and knowledge", Assessment),
                ("Demonstrate uses of explicitly stored metadata/schema associated with data", Usage),
                ("Read a structured dataset from a file and compute summary information from it", Usage),
            ],
        },
        Ku {
            code: "DBS",
            label: "Database Systems",
            tier: Core2,
            topics: &[
                "Approaches to and evolution of database systems",
                "Components of database systems",
                "Design of core DBMS functions: query mechanisms, transaction management, buffer management, access methods",
                "Database architecture and data independence",
                "Use of a declarative query language",
            ],
            outcomes: &[
                ("Explain the characteristics that distinguish the database approach from the approach of programming with data files", Familiarity),
                ("Cite the basic goals, functions, and models of database systems", Familiarity),
                ("Describe the components of a database system and give examples of their use", Familiarity),
                ("Write a simple declarative query and explain its evaluation", Usage),
            ],
        },
        Ku {
            code: "DM",
            label: "Data Modeling",
            tier: Core2,
            topics: &[
                "Data modeling concepts and conceptual models",
                "Relational data model: relations, keys, and constraints",
                "Entity-relationship modeling",
                "Normalization and functional dependencies",
                "Semi-structured data models such as trees of tagged elements",
            ],
            outcomes: &[
                ("Compare and contrast appropriate data models, including internal structures, for different types of data", Assessment),
                ("Produce a relational schema from a conceptual ER design", Usage),
                ("Explain the purpose of normalization and apply it to a small schema", Usage),
            ],
        },
        Ku {
            code: "IDX",
            label: "Indexing and Retrieval",
            tier: Elective,
            topics: &[
                "The impact of indices on query performance",
                "The basic structure of an index: B-trees and hash indexes",
                "Keeping a buffer of data in memory",
                "Introduction to information retrieval and ranking",
                "Inverted indexes for text search",
            ],
            outcomes: &[
                ("Generate an index file for a collection of resources", Usage),
                ("Explain the role of an inverted index in locating a document in a collection", Familiarity),
                ("Describe the tradeoff between maintaining indices and update cost", Familiarity),
            ],
        },
        Ku {
            code: "QL",
            label: "Query Languages",
            tier: Elective,
            topics: &[
                "Overview of database query languages",
                "SQL: data definition, query formulation, update sublanguage",
                "Selections, projections, and joins",
                "Aggregation and grouping",
                "Stored procedures and query optimization basics",
            ],
            outcomes: &[
                ("Create a relational database schema in SQL that incorporates key constraints", Usage),
                ("Compose SQL queries that use selection, projection, join, and aggregation", Usage),
                ("Explain at a high level how a declarative query is evaluated", Familiarity),
            ],
        },
    ],
};
