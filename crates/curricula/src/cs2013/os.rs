//! CS2013 Knowledge Area: Operating Systems (OS).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "OS",
    label: "Operating Systems",
    units: &[
        Ku {
            code: "OV",
            label: "Overview of Operating Systems",
            tier: Core1,
            topics: &[
                "Role and purpose of the operating system",
                "Functionality of a typical operating system",
                "Mechanisms to support client-server models and hand-held devices",
                "Design issues: efficiency, robustness, portability, security",
            ],
            outcomes: &[
                ("Explain the objectives and functions of modern operating systems", Familiarity),
                ("Analyze the tradeoffs inherent in operating system design", Usage),
                ("Describe how operating systems have evolved over time", Familiarity),
            ],
        },
        Ku {
            code: "OSP",
            label: "Operating System Principles",
            tier: Core1,
            topics: &[
                "Structuring methods: monolithic, layered, modular, micro-kernel",
                "Abstractions, processes, and resources",
                "Application program interfaces (system call interfaces)",
                "The user/system state split and protection",
                "Interrupts and the kernel as event handler",
            ],
            outcomes: &[
                ("Explain the concept of a logical layer", Familiarity),
                ("Describe how computing resources are used by application software and managed by system software", Familiarity),
                ("Explain the distinction between processes and resources", Familiarity),
                ("Describe the purpose of system calls and the transition between user and kernel mode", Familiarity),
            ],
        },
        Ku {
            code: "CON",
            label: "Concurrency",
            tier: Core2,
            topics: &[
                "States and state diagrams of processes and threads",
                "Dispatching and context switching",
                "The role of interrupts in concurrency",
                "Managing atomic access to OS objects",
                "Implementing synchronization primitives: semaphores, monitors, locks",
                "Multiprocessor issues: spin-locks and reentrancy",
                "Producer-consumer problems and bounded buffers",
                "Deadlock detection, avoidance, and recovery",
            ],
            outcomes: &[
                ("Describe the need for concurrency within the framework of an operating system", Familiarity),
                ("Demonstrate the potential run-time problems arising from the concurrent operation of many separate tasks", Usage),
                ("Summarize the range of mechanisms that can be employed at the operating system level to realize concurrent systems", Familiarity),
                ("Describe the producer-consumer problem and explain how it is solved with semaphores or monitors", Usage),
                ("Write a program that implements synchronization between two or more concurrent activities", Usage),
                ("Explain the four necessary conditions for deadlock and strategies for handling it", Familiarity),
            ],
        },
        Ku {
            code: "SCH",
            label: "Scheduling and Dispatch",
            tier: Core2,
            topics: &[
                "Preemptive and non-preemptive scheduling",
                "Schedulers and policies: FCFS, SJF, priority, round-robin",
                "Processes and threads as units of scheduling",
                "Real-time scheduling concerns",
                "Fairness, starvation, and aging",
            ],
            outcomes: &[
                ("Compare and contrast the common algorithms used for both preemptive and non-preemptive scheduling of tasks", Usage),
                ("Given a scheduling policy and a workload, compute waiting and turnaround times", Usage),
                ("Describe the difference between processes and threads as units of scheduling", Familiarity),
                ("Discuss the need for preemption and deadline scheduling", Familiarity),
            ],
        },
        Ku {
            code: "MM",
            label: "Memory Management",
            tier: Core2,
            topics: &[
                "Review of physical memory and memory management hardware",
                "Working sets and thrashing",
                "Caching as a general OS technique",
                "Paging and segmentation",
                "Page placement and replacement policies",
                "Allocation strategies and fragmentation",
            ],
            outcomes: &[
                ("Explain memory hierarchy and cost-performance trade-offs", Familiarity),
                ("Summarize the principles of virtual memory as applied to caching and paging", Familiarity),
                ("Evaluate the trade-offs in terms of memory size (main memory, cache memory, auxiliary memory) and processor speed", Assessment),
                ("Describe the reason for and use of cache memory", Familiarity),
                ("Compute the performance of a page-replacement policy on a reference string", Usage),
            ],
        },
        Ku {
            code: "FS",
            label: "File Systems",
            tier: Elective,
            topics: &[
                "Files: data, metadata, operations, organization",
                "Directories: contents and structure",
                "File system implementation: allocation and free-space management",
                "Naming, searching, and access",
                "Journaling and log-structured file systems",
            ],
            outcomes: &[
                ("Describe the choices to be made in designing file systems", Familiarity),
                ("Compare and contrast different approaches to file organization, recognizing the strengths and weaknesses of each", Usage),
                ("Summarize how hardware developments have led to changes in our priorities for the design and the management of file systems", Familiarity),
            ],
        },
        Ku {
            code: "VM",
            label: "Virtual Machines",
            tier: Elective,
            topics: &[
                "Types of virtualization: hardware, OS, server, network",
                "Hypervisors and paravirtualization",
                "Cost of virtualization",
                "Containers versus virtual machines",
            ],
            outcomes: &[
                ("Explain the concept of virtual memory and how it is realized in hardware and software", Familiarity),
                ("Differentiate emulation and isolation", Familiarity),
                ("Compare and contrast containers with full virtual machines", Usage),
            ],
        },
        Ku {
            code: "SEC",
            label: "Security and Protection",
            tier: Core2,
            topics: &[
                "Overview of operating system security mechanisms",
                "Policy/mechanism separation",
                "Security methods and devices: rings of protection, access control lists",
                "Protection, access control, and authentication at the OS level",
                "Memory protection and the role of virtual memory in isolation",
            ],
            outcomes: &[
                ("Articulate the need for protection and security in an OS", Assessment),
                ("Summarize the features and limitations of an operating system used to provide protection and security", Familiarity),
                ("Explain how hardware memory protection supports process isolation", Familiarity),
            ],
        },
    ],
};
