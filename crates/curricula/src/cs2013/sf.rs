//! CS2013 Knowledge Area: Systems Fundamentals (SF).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "SF",
    label: "Systems Fundamentals",
    units: &[
        Ku {
            code: "CPD",
            label: "Computational Paradigms",
            tier: Core1,
            topics: &[
                "Basic building blocks and components of a computer",
                "Hardware as a computational paradigm: fundamental logic building blocks",
                "Application-level sequential processing: a single thread",
                "Simple application-level parallel processing: request-level, task-level, pipelining",
                "Basic concept of pipelining and overlapped processing",
                "Multicore architectures and simultaneous multithreading",
            ],
            outcomes: &[
                ("List commonly encountered patterns of how computations are organized", Familiarity),
                ("Describe the basic building blocks of computers and their role in the historical development of computer architecture", Familiarity),
                ("Articulate the differences between single-thread versus multiple-thread, single-server versus multiple-server models, motivated by real-world examples", Familiarity),
                ("Write a simple sequential problem and a simple parallel version of the same program", Usage),
                ("Evaluate the performance of simple sequential and parallel versions of a program with different problem sizes", Assessment),
            ],
        },
        Ku {
            code: "SSM",
            label: "State and State Machines",
            tier: Core1,
            topics: &[
                "Digital versus analog/discrete versus continuous systems",
                "Simple logic gates, logical expressions, Boolean logic simplification",
                "Clocks, state, sequencing",
                "Combinational logic, sequential logic, registers, memories",
                "Computers and network protocols as examples of state machines",
            ],
            outcomes: &[
                ("Describe computations as a system characterized by a known set of configurations with transitions from one unique configuration (state) to another (state)", Familiarity),
                ("Describe the distinction between systems whose output is only a function of their input (combinational) and those with memory/history (sequential)", Familiarity),
                ("Develop a state machine descriptions for problem statement in natural language", Usage),
            ],
        },
        Ku {
            code: "PAR",
            label: "Parallelism (systems view)",
            tier: Core1,
            topics: &[
                "Sequential versus parallel processing",
                "Parallel programming versus concurrent programming",
                "Request parallelism versus task parallelism",
                "Client-server and interaction models",
                "Synchronization as a system primitive",
                "Performance limits of parallelism: dependencies and critical paths",
            ],
            outcomes: &[
                ("Distinguish parallelism from concurrency", Familiarity),
                ("Identify the (task, data, request) parallelism available in a given application", Usage),
                ("Write more than one parallel version of a simple program with different decompositions", Usage),
                ("Explain why a computation's critical path limits its parallel speedup", Familiarity),
            ],
        },
        Ku {
            code: "EVAL",
            label: "Evaluation",
            tier: Core1,
            topics: &[
                "Performance figures of merit: latency and throughput",
                "Workloads and representative benchmarks",
                "CPI and benchmarking as evaluation approaches",
                "Amdahl's law: the part of the computation that cannot be sped up limits the whole",
                "Speedup, efficiency, and scalability curves",
            ],
            outcomes: &[
                ("Explain how the components of system architecture contribute to improving its performance", Familiarity),
                ("Describe Amdahl's law and discuss its limitations", Familiarity),
                ("Design and conduct a performance-oriented experiment on a simple system", Usage),
                ("Use software tools to profile and measure program performance", Assessment),
            ],
        },
        Ku {
            code: "RAS",
            label: "Resource Allocation and Scheduling",
            tier: Core2,
            topics: &[
                "Kinds of resources: processor share, memory, disk, net bandwidth",
                "Kinds of scheduling: first-come-first-serve, priority-based",
                "Advantages of fairness and of priority allocation",
                "Throughput-latency tradeoffs in scheduling",
            ],
            outcomes: &[
                ("Define how finite computer resources are managed and shared", Familiarity),
                ("Discuss the benefits and limitations of several scheduling disciplines", Familiarity),
                ("Implement a simple scheduler and measure the latency and throughput it achieves", Usage),
            ],
        },
        Ku {
            code: "PRF",
            label: "Performance and Proximity",
            tier: Core2,
            topics: &[
                "The memory hierarchy and the reasons it works: locality",
                "Caching at many system levels",
                "Latency hiding: overlap of computation and communication",
                "Introduction into the effect of data locality on performance",
            ],
            outcomes: &[
                ("Explain the importance of locality in determining system performance", Familiarity),
                ("Calculate average memory access time given a cache configuration", Usage),
                ("Restructure a small computation to improve its locality and measure the effect", Usage),
            ],
        },
        Ku {
            code: "RR",
            label: "Reliability through Redundancy",
            tier: Core2,
            topics: &[
                "Distinction between bugs and faults",
                "Redundancy as the key to fault tolerance",
                "How errors increase the longer the distance between the communicating entities; the end-to-end principle",
                "Availability metrics: MTBF and MTTR",
            ],
            outcomes: &[
                ("Explain the distinction between program errors, system errors, and hardware faults and the context in which each may occur", Familiarity),
                ("Articulate the distinction between detecting, handling, and recovering from faults", Familiarity),
                ("Compute the availability of a system with redundant components", Usage),
            ],
        },
        Ku {
            code: "VI",
            label: "Virtualization and Isolation",
            tier: Elective,
            topics: &[
                "Rationale for protection and predictable performance",
                "Levels of indirection, illustrated by virtual memory",
                "Methods for implementing virtual machines and containers",
                "Isolation as a cross-cutting systems principle",
            ],
            outcomes: &[
                ("Explain why it is important to isolate and protect the execution of individual programs", Familiarity),
                ("Describe how the concept of indirection can create the illusion of a dedicated machine", Familiarity),
                ("Measure the overhead of a virtualization layer on a simple workload", Usage),
            ],
        },
        Ku {
            code: "CLC",
            label: "Cross-Layer Communications",
            tier: Core2,
            topics: &[
                "Programming abstractions and interfaces between layers",
                "Streams, datagrams, and events as communication styles",
                "Reliability guarantees offered by each layer",
                "Headers, encapsulation, and layering overhead",
            ],
            outcomes: &[
                ("Describe how computing systems are constructed of layers upon layers, based on separation of concerns", Familiarity),
                ("Recognize that hardware, VM, OS, and application layers offer interfaces through which clients make use of them", Familiarity),
                ("Trace a message through the layers of a simple protocol stack", Usage),
            ],
        },
    ],
};
