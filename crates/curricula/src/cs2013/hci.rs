//! CS2013 Knowledge Area: Human-Computer Interaction (HCI).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "HCI",
    label: "Human-Computer Interaction",
    units: &[
        Ku {
            code: "F",
            label: "Foundations",
            tier: Core1,
            topics: &[
                "Contexts for HCI: desktops, mobile, web, games",
                "Processes for user-centered development",
                "Usability heuristics and the principles supporting them",
                "Physical capabilities informing interaction design: color perception, ergonomics",
                "Cognitive models informing design: attention, memory, perception",
                "Accessibility and designing for diverse populations",
            ],
            outcomes: &[
                ("Discuss why human-centered software development is important", Familiarity),
                ("Summarize the basic precepts of psychological and social interaction", Familiarity),
                ("Create and conduct a simple usability test for an existing software application", Usage),
                ("Identify accessibility barriers in an existing interface", Usage),
            ],
        },
        Ku {
            code: "DI",
            label: "Designing Interaction",
            tier: Core2,
            topics: &[
                "Principles of graphical user interface design",
                "Elements of visual design: layout, color, fonts",
                "Handling human failure and error messages",
                "Interaction styles: command, menu, direct manipulation",
                "Low-fidelity prototyping and paper prototypes",
            ],
            outcomes: &[
                ("For an identified user group, undertake and document an analysis of their needs", Usage),
                ("Create a low-fidelity prototype for an identified user group", Usage),
                ("Describe the constraints and benefits of different interactive environments", Familiarity),
            ],
        },
        Ku {
            code: "PIS",
            label: "Programming Interactive Systems",
            tier: Elective,
            topics: &[
                "Software architecture patterns for interactive systems such as model-view-controller",
                "Event-driven GUI programming and widget toolkits",
                "Callbacks, listeners, and handler registration",
                "Layout management in GUI frameworks",
                "Handling touch and gesture input",
            ],
            outcomes: &[
                ("Explain the advantages of the model-view-controller decomposition", Familiarity),
                ("Implement a simple GUI application with event handlers", Usage),
                ("Identify pitfalls of long-running work on the UI thread and how to avoid them", Familiarity),
            ],
        },
    ],
};
