//! CS2013 Knowledge Area: Computational Science (CN).
//!
//! Abbreviated `CS` in the paper's Figures 6 and 7 axis labels; the
//! applied/datasets/visualization flavor of Data Structures courses (type 1
//! in Figure 7) loads on this area.

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "CN",
    label: "Computational Science",
    units: &[
        Ku {
            code: "IMS",
            label: "Introduction to Modeling and Simulation",
            tier: Core1,
            topics: &[
                "Models as abstractions of situations",
                "Simulations as dynamic modeling",
                "Simulation techniques and tools such as physical simulations and human-in-the-loop guided simulations",
                "Presentation of simulation results: tables, plots, animations",
                "Model validation against real-world observations",
            ],
            outcomes: &[
                ("Explain the concept of modeling and the use of abstraction that allows the use of a machine to solve a problem", Familiarity),
                ("Describe the relationship between modeling and simulation, i.e., thinking of simulation as dynamic modeling", Familiarity),
                ("Create a simple, formal mathematical model of a real-world situation and use that model in a simulation", Usage),
                ("Differentiate among the different types of simulations", Familiarity),
            ],
        },
        Ku {
            code: "MS",
            label: "Modeling and Simulation",
            tier: Elective,
            topics: &[
                "Purpose of modeling and simulation: prediction, optimization, what-if analysis",
                "Formalisms: discrete event simulation, cellular automata, agent-based models",
                "Random number generators and stochastic simulation",
                "Verification and validation of models",
                "Sensitivity analysis of simulation parameters",
            ],
            outcomes: &[
                ("Explain and give examples of the benefits of simulation and modeling in a range of important application areas", Familiarity),
                ("Create a simple discrete-event simulation and collect statistics from it", Usage),
                ("Use a random number generator correctly in a stochastic simulation", Usage),
            ],
        },
        Ku {
            code: "PRO",
            label: "Processing and Numerical Computation",
            tier: Elective,
            topics: &[
                "Fundamental programming concepts applied to science workloads",
                "Matrix and vector computations",
                "Floating-point error, accumulation of round-off, and conditioning",
                "Numerical integration and root finding",
                "Scaling computations to large datasets",
            ],
            outcomes: &[
                ("Write a program that computes with vectors and matrices", Usage),
                ("Describe how round-off error accumulates in iterative floating-point computation and how summation order affects results", Familiarity),
                ("Implement a simple numerical method and assess its accuracy empirically", Usage),
            ],
        },
        Ku {
            code: "IV",
            label: "Interactive Visualization",
            tier: Elective,
            topics: &[
                "Principles of data visualization",
                "Visualization of structured data: charts, graphs, trees, and networks",
                "Interactive exploration: filtering, zooming, details-on-demand",
                "APIs and libraries for visualization",
                "Visual encodings: position, color, size",
            ],
            outcomes: &[
                ("Describe the tradeoffs among different visual encodings of the same dataset", Familiarity),
                ("Use a visualization API to display a dataset as an interactive chart or network", Usage),
                ("Design a visualization that reveals the structure of a real-world dataset", Usage),
            ],
        },
        Ku {
            code: "DIK",
            label: "Data, Information, and Knowledge",
            tier: Elective,
            topics: &[
                "Standard dataset formats such as delimited text and hierarchical records",
                "Acquiring real-world datasets through APIs",
                "Cleaning, filtering, and reshaping data",
                "Aggregation and summarization of datasets",
                "From data to insight: exploratory analysis workflows",
            ],
            outcomes: &[
                ("Identify all of the data, information, and knowledge elements and related organizations for a computational science application", Usage),
                ("Acquire a dataset from a public API and parse it into program data structures", Usage),
                ("Use appropriate data structures to aggregate and summarize a real-world dataset", Usage),
            ],
        },
    ],
};
