//! CS2013 Knowledge Area: Platform-Based Development (PBD).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "PBD",
    label: "Platform-Based Development",
    units: &[
        Ku {
            code: "INT",
            label: "Introduction to Platforms",
            tier: Elective,
            topics: &[
                "Platforms as an abstraction: web, mobile, game, industrial",
                "Programming via platform-specific APIs",
                "Constraints imposed by platforms on development",
                "Comparing platform languages with general-purpose languages",
            ],
            outcomes: &[
                ("Describe how platform-based development differs from general purpose programming", Familiarity),
                ("List characteristics of platform languages", Familiarity),
                ("Write and execute a simple platform-based program", Usage),
            ],
        },
        Ku {
            code: "WEB",
            label: "Web Platforms",
            tier: Elective,
            topics: &[
                "Web programming languages and markup",
                "Web platform constraints: statelessness and sessions",
                "Client-side versus server-side computation",
                "Software as a service delivered through the web",
            ],
            outcomes: &[
                ("Design and implement a simple web application", Usage),
                ("Describe the constraints that the web puts on developers", Familiarity),
                ("Review an existing web application against a current web standard", Assessment),
            ],
        },
        Ku {
            code: "MOB",
            label: "Mobile Platforms",
            tier: Elective,
            topics: &[
                "Mobile programming languages and development frameworks",
                "Challenges with mobility and wireless communication",
                "Power and resource constraints of mobile devices",
                "Location-aware applications and sensors",
            ],
            outcomes: &[
                ("Design and implement a simple mobile application for a given platform", Usage),
                ("Discuss the constraints that mobile platforms put on developers", Familiarity),
                ("Discuss the performance versus power tradeoff in mobile applications", Familiarity),
            ],
        },
        Ku {
            code: "GAME",
            label: "Game Platforms",
            tier: Elective,
            topics: &[
                "Game platform ecosystems and their constraints",
                "Real-time loops: update, render, input",
                "Game engines as platform abstractions",
                "Resource budgets: frame time, memory, asset streaming",
            ],
            outcomes: &[
                ("Design and implement a simple interactive game", Usage),
                ("Describe the constraints that real-time interaction places on a game architecture", Familiarity),
                ("Measure and stay within a frame-time budget in a small game loop", Usage),
            ],
        },
    ],
};
