//! CS2013 Knowledge Area: Discrete Structures (DS).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "DS",
    label: "Discrete Structures",
    units: &[
        Ku {
            code: "SRF",
            label: "Sets, Relations, and Functions",
            tier: Core1,
            topics: &[
                "Sets: Venn diagrams, union, intersection, complement",
                "Set builder notation and the Cartesian product",
                "Power sets and cardinality of finite sets",
                "Relations: reflexivity, symmetry, transitivity",
                "Equivalence relations and partitions",
                "Functions: surjections, injections, bijections",
                "Function composition and inverses",
            ],
            outcomes: &[
                ("Explain with examples the basic terminology of functions, relations, and sets", Familiarity),
                ("Perform the operations associated with sets, functions, and relations", Usage),
                ("Relate practical examples to the appropriate set, function, or relation model, and interpret the associated operations and terminology in context", Assessment),
            ],
        },
        Ku {
            code: "BL",
            label: "Basic Logic",
            tier: Core1,
            topics: &[
                "Propositional logic: logical connectives and truth tables",
                "Normal forms: conjunctive and disjunctive",
                "Validity of well-formed formulas",
                "Propositional inference rules such as modus ponens",
                "Predicate logic: universal and existential quantification",
                "Limitations of propositional and predicate logic",
            ],
            outcomes: &[
                ("Convert logical statements from informal language to propositional and predicate logic expressions", Usage),
                ("Apply formal methods of symbolic propositional and predicate logic such as calculating validity of formulas and computing normal forms", Usage),
                ("Use the rules of inference to construct proofs in propositional and predicate logic", Usage),
                ("Describe how symbolic logic can be used to model real-life situations", Familiarity),
            ],
        },
        Ku {
            code: "PT",
            label: "Proof Techniques",
            tier: Core1,
            topics: &[
                "The structure of mathematical proofs",
                "Direct proofs and proof by counterexample",
                "Proof by contradiction",
                "Mathematical induction: weak and strong",
                "Structural induction over recursively defined structures",
                "Recursive mathematical definitions",
                "The well-ordering principle",
            ],
            outcomes: &[
                ("Identify the proof technique used in a given proof", Familiarity),
                ("Outline the basic structure of each proof technique", Usage),
                ("Apply each of the proof techniques correctly in the construction of a sound argument", Usage),
                ("Determine which type of proof is best for a given problem", Assessment),
                ("Explain the relationship between weak and strong induction and give examples of the appropriate use of each", Assessment),
                ("Explain the parallels between ideas of mathematical and/or structural induction to recursion and recursively defined structures", Assessment),
            ],
        },
        Ku {
            code: "BC",
            label: "Basics of Counting",
            tier: Core1,
            topics: &[
                "Counting arguments: sum and product rules",
                "The inclusion-exclusion principle",
                "The pigeonhole principle",
                "Permutations and combinations",
                "The binomial theorem and Pascal's identity",
                "Solving recurrence relations that arise in counting",
                "Basic modular arithmetic",
            ],
            outcomes: &[
                ("Apply counting arguments, including sum and product rules, inclusion-exclusion principle, and arithmetic/geometric progressions", Usage),
                ("Apply the pigeonhole principle in the context of a formal proof", Usage),
                ("Compute permutations and combinations of a set, and interpret the meaning in the context of the particular application", Usage),
                ("Solve a variety of basic recurrence relations", Usage),
                ("Analyze a problem to determine underlying recurrence relations", Usage),
            ],
        },
        Ku {
            code: "GT",
            label: "Graphs and Trees",
            tier: Core1,
            topics: &[
                "Trees: properties and terminology",
                "Undirected graphs: adjacency, paths, cycles",
                "Directed graphs and reachability",
                "Weighted graphs",
                "Traversal strategies for graphs and trees",
                "Spanning trees and spanning forests",
                "Graph isomorphism",
                "Bipartite graphs and matchings",
            ],
            outcomes: &[
                ("Illustrate by example the basic terminology of graph theory, and some of the properties and special cases of each type of graph/tree", Familiarity),
                ("Demonstrate different traversal methods for trees and graphs, including preorder, inorder, and postorder traversal of trees", Usage),
                ("Model a variety of real-world problems in computer science using appropriate forms of graphs and trees, such as representing a network topology or the organization of a hierarchical file system", Usage),
                ("Show how concepts from graphs and trees appear in data structures, algorithms, proof techniques, and counting", Usage),
            ],
        },
        Ku {
            code: "DP",
            label: "Discrete Probability",
            tier: Core1,
            topics: &[
                "Finite probability spaces and events",
                "Axioms of probability and probability measures",
                "Conditional probability and Bayes' theorem",
                "Independence of events",
                "Random variables, expectation, and variance",
                "Bernoulli trials and the binomial distribution",
            ],
            outcomes: &[
                ("Calculate probabilities of events and expectations of random variables for elementary problems such as games of chance", Usage),
                ("Differentiate between dependent and independent events", Usage),
                ("Identify a case of the binomial distribution and compute a probability using it", Usage),
                ("Apply Bayes' theorem to determine conditional probabilities in a problem", Usage),
                ("Apply the tools of probability to solve problems such as the average-case analysis of algorithms", Usage),
            ],
        },
    ],
};
