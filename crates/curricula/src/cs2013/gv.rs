//! CS2013 Knowledge Area: Graphics and Visualization (GV).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "GV",
    label: "Graphics and Visualization",
    units: &[
        Ku {
            code: "FC",
            label: "Fundamental Concepts",
            tier: Core1,
            topics: &[
                "Media applications: user interfaces, plotting, visualization, games",
                "Digital images: raster and vector representations",
                "Color models: RGB and additive color",
                "Image file formats and compression basics",
                "Coordinate systems and simple 2D transformations",
            ],
            outcomes: &[
                ("Identify common uses of digital presentation to humans", Familiarity),
                ("Explain in general terms how analog signals can be reasonably represented by discrete samples", Familiarity),
                ("Compute the memory requirement for storing a color image given its resolution", Usage),
                ("Describe color models and their use in graphics display devices", Familiarity),
            ],
        },
        Ku {
            code: "BR",
            label: "Basic Rendering",
            tier: Elective,
            topics: &[
                "Rendering in nature: the interaction of light and surfaces",
                "Rasterization of lines and polygons",
                "Affine transformations and the graphics pipeline",
                "Simple shading models",
                "Texture mapping basics",
            ],
            outcomes: &[
                ("Discuss the light transport problem and its relation to numerical integration", Familiarity),
                ("Implement a simple line or polygon rasterizer", Usage),
                ("Derive and apply 2D and 3D affine transformation matrices", Usage),
            ],
        },
        Ku {
            code: "VIS",
            label: "Visualization",
            tier: Elective,
            topics: &[
                "Visualization of scalar fields, vector fields, and flow data",
                "Visualization of graphs, trees, and networks",
                "Perceptual foundations: pre-attentive features",
                "Interaction techniques for exploring data",
                "Evaluation of visualization effectiveness",
            ],
            outcomes: &[
                ("Describe the basic algorithms behind scalar and vector visualization", Familiarity),
                ("Construct a node-link visualization of a tree or network dataset", Usage),
                ("Critique a visualization with respect to perceptual principles", Assessment),
            ],
        },
        Ku {
            code: "GM",
            label: "Geometric Modeling",
            tier: Elective,
            topics: &[
                "Polygonal representation of 3D objects",
                "Parametric curves and surfaces",
                "Implicit surfaces and constructive solid geometry",
                "Mesh simplification and level of detail",
            ],
            outcomes: &[
                ("Represent curves and surfaces using both implicit and parametric forms", Usage),
                ("Create simple polyhedral models by surface tessellation", Usage),
                ("Describe the tradeoffs among geometric representations", Familiarity),
            ],
        },
    ],
};
