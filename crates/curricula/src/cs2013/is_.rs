//! CS2013 Knowledge Area: Intelligent Systems (IS).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "IS",
    label: "Intelligent Systems",
    units: &[
        Ku {
            code: "FI",
            label: "Fundamental Issues",
            tier: Core2,
            topics: &[
                "Overview of AI problems and recent successes",
                "What is intelligent behavior: the Turing test",
                "Problem characteristics: observability, determinism",
                "The role of heuristics and tradeoffs among completeness, optimality, and time",
            ],
            outcomes: &[
                ("Describe Turing test and the Chinese Room thought experiment", Familiarity),
                ("Determine the characteristics of a given problem that an intelligent system must solve", Assessment),
            ],
        },
        Ku {
            code: "BSS",
            label: "Basic Search Strategies",
            tier: Core2,
            topics: &[
                "Problem spaces: states, goals, operators",
                "Uninformed search: breadth-first, depth-first, depth-first with iterative deepening",
                "Heuristic search: hill climbing, best-first, A*",
                "Admissibility of heuristics",
                "Two-player games and minimax search",
                "Constraint satisfaction and backtracking",
            ],
            outcomes: &[
                ("Formulate an efficient problem space for a problem expressed in natural language in terms of initial and goal states, and operators", Usage),
                ("Select and implement an appropriate uninformed search algorithm for a problem and characterize its time and space complexities", Usage),
                ("Select and implement an appropriate informed search algorithm for a problem by designing the necessary heuristic evaluation function", Usage),
                ("Implement minimax search with alpha-beta pruning for a two-player game", Usage),
            ],
        },
        Ku {
            code: "BML",
            label: "Basic Machine Learning",
            tier: Core2,
            topics: &[
                "Definition and examples of the broad variety of machine learning tasks",
                "Supervised learning: classification and regression",
                "Simple statistical learning such as naive Bayes and nearest neighbor",
                "Unsupervised learning: clustering and dimensionality reduction",
                "Matrix factorization as a learning technique",
                "Measuring model quality: training error versus generalization; overfitting",
            ],
            outcomes: &[
                ("List the differences among the three main styles of learning: supervised, reinforcement, and unsupervised", Familiarity),
                ("Implement a simple statistical learning algorithm such as nearest neighbor classification", Usage),
                ("Explain the problem of overfitting and techniques for detecting it", Familiarity),
                ("Apply an unsupervised technique such as clustering or matrix factorization to a dataset and interpret the result", Usage),
            ],
        },
        Ku {
            code: "AS",
            label: "Advanced Search",
            tier: Elective,
            topics: &[
                "Stochastic local search: simulated annealing, genetic algorithms",
                "Constructing admissible heuristics from relaxed problems",
                "Beam search and bounded-memory variants",
                "Monte-Carlo tree search for games",
            ],
            outcomes: &[
                ("Design and implement a genetic algorithm solution to a problem", Usage),
                ("Compare and contrast genetic algorithms with classic search techniques", Assessment),
                ("Apply simulated annealing and describe the role of the cooling schedule", Usage),
            ],
        },
    ],
};
