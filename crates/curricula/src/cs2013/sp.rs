//! CS2013 Knowledge Area: Social Issues and Professional Practice (SP).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "SP",
    label: "Social Issues and Professional Practice",
    units: &[
        Ku {
            code: "SC",
            label: "Social Context",
            tier: Core1,
            topics: &[
                "Social implications of computing in a networked world",
                "Impact of social media and computing on individualism and collectivism",
                "Growth and control of the Internet",
                "Accessibility issues and the digital divide",
            ],
            outcomes: &[
                ("Describe positive and negative ways in which computer technology alters modes of social interaction at the personal level", Familiarity),
                ("Identify developers' assumptions and values embedded in hardware and software design", Usage),
                ("Discuss how Internet access serves as a liberating force for people living under oppressive forms of government", Familiarity),
            ],
        },
        Ku {
            code: "PE",
            label: "Professional Ethics",
            tier: Core1,
            topics: &[
                "Community values and the laws by which we live",
                "The nature of professionalism including care, attention and discipline",
                "Codes of ethics such as the ACM Code of Ethics",
                "Accountability, responsibility, and liability",
                "Dealing with harassment and discrimination",
            ],
            outcomes: &[
                ("Identify ethical issues that arise in software development and determine how to address them technically and ethically", Usage),
                ("Explain the ethical responsibility of ensuring software correctness, reliability and safety", Familiarity),
                ("Describe the mechanisms that typically exist for a professional to keep up-to-date", Familiarity),
            ],
        },
        Ku {
            code: "IP",
            label: "Intellectual Property",
            tier: Core1,
            topics: &[
                "Philosophical foundations of intellectual property",
                "Copyrights, patents, trademarks, and trade secrets",
                "Software licensing including open-source models",
                "Plagiarism and academic integrity",
            ],
            outcomes: &[
                ("Discuss the philosophical bases of intellectual property", Familiarity),
                ("Distinguish among copyright, patent, and trademark protections", Familiarity),
                ("Contrast several open-source license models and their obligations", Usage),
            ],
        },
        Ku {
            code: "PC",
            label: "Professional Communication",
            tier: Core1,
            topics: &[
                "Reading, understanding, and summarizing technical material",
                "Writing effective technical documentation",
                "Dynamics of oral, written, and electronic team communication",
                "Communicating professionally with stakeholders",
            ],
            outcomes: &[
                ("Write clear, concise, and accurate technical documents following well-defined standards", Usage),
                ("Evaluate written technical documentation to detect problems of various kinds", Assessment),
                ("Develop and deliver a good quality formal presentation", Usage),
            ],
        },
        Ku {
            code: "PRIV",
            label: "Privacy and Civil Liberties",
            tier: Core1,
            topics: &[
                "Philosophical and legal conceptions of privacy",
                "Privacy implications of large-scale data collection",
                "Technology-based solutions for privacy protection",
                "Freedom of expression and its limitations online",
            ],
            outcomes: &[
                ("Discuss the philosophical basis for the legal protection of personal privacy", Familiarity),
                ("Evaluate solutions to privacy threats in transactional databases and data warehouses", Assessment),
                ("Describe the role of data anonymization and its limits", Familiarity),
            ],
        },
        Ku {
            code: "SUST",
            label: "Sustainability",
            tier: Core2,
            topics: &[
                "Environmental impacts of computing: manufacturing, energy, e-waste",
                "Sustainability as a software quality attribute",
                "Power consumption of data centers and end devices",
                "Computing for sustainability: monitoring and modeling",
            ],
            outcomes: &[
                ("Identify ways to be a sustainable practitioner of computing", Usage),
                ("Illustrate global social and environmental impacts of computer use and disposal", Familiarity),
                ("Describe the tradeoff between performance and energy consumption in a computing system", Familiarity),
            ],
        },
        Ku {
            code: "HIST",
            label: "History of Computing",
            tier: Elective,
            topics: &[
                "Prehistory: computing before electronic computers",
                "Pioneers of computing and their contributions",
                "Generations of hardware: tubes, transistors, integrated circuits",
                "The personal computer, the Internet, and mobile revolutions",
            ],
            outcomes: &[
                ("Identify significant trends in the history of the computing field", Familiarity),
                ("Identify the contributions of several pioneers in the computing field", Familiarity),
                ("Discuss the historical context for important moments in the history of computing", Familiarity),
            ],
        },
    ],
};
