//! CS2013 Knowledge Area: Architecture and Organization (AR).

use crate::ontology::Mastery::*;
use crate::ontology::Tier::*;
use crate::spec::{Ka, Ku};

pub(super) const KA: Ka = Ka {
    code: "AR",
    label: "Architecture and Organization",
    units: &[
        Ku {
            code: "MLRD",
            label: "Machine Level Representation of Data",
            tier: Core2,
            topics: &[
                "Bits, bytes, and words",
                "Numeric data representation and number bases",
                "Fixed- and floating-point systems",
                "Signed and twos-complement representations",
                "Representation of non-numeric data: characters and strings",
                "Representation of records and arrays in memory",
                "Endianness and byte ordering",
            ],
            outcomes: &[
                ("Explain why everything is data, including instructions, in computers", Familiarity),
                ("Explain the reasons for using alternative formats to represent numerical data", Familiarity),
                ("Describe how negative integers are stored in sign-magnitude and twos-complement representations", Familiarity),
                ("Explain how fixed-length number representations affect accuracy and precision", Familiarity),
                ("Describe the internal representation of non-numeric data, such as characters, strings, records, and arrays", Familiarity),
                ("Convert numerical data from one format to another", Usage),
                ("Write simple programs at the assembly/machine level for string processing and manipulation", Usage),
            ],
        },
        Ku {
            code: "ALMO",
            label: "Assembly Level Machine Organization",
            tier: Core2,
            topics: &[
                "Basic organization of the von Neumann machine",
                "Control unit: instruction fetch, decode, and execution",
                "Instruction sets and types: data manipulation, control, I/O",
                "Registers and the memory hierarchy seen from the ISA",
                "Subroutine call and return mechanisms and the call stack",
                "I/O and interrupts",
                "Shared memory multiprocessors/multicore organization",
            ],
            outcomes: &[
                ("Explain the organization of the classical von Neumann machine and its major functional units", Familiarity),
                ("Describe how an instruction is executed in a classical von Neumann machine, with extensions for threads, multiprocessor synchronization, and SIMD execution", Familiarity),
                ("Describe instruction-level parallelism and hazards, and how they are managed in typical processor pipelines", Familiarity),
                ("Summarize how instructions are represented at both the machine level and in the context of a symbolic assembler", Familiarity),
                ("Explain how subroutine calls are handled at the assembly level", Familiarity),
                ("Write simple assembly language program segments", Usage),
                ("Show how fundamental high-level programming constructs are implemented at the machine-language level", Usage),
            ],
        },
        Ku {
            code: "MSO",
            label: "Memory System Organization and Architecture",
            tier: Core2,
            topics: &[
                "Storage systems and their technology",
                "Memory hierarchy: the locality principle and latencies",
                "Main memory organization and operations",
                "Cache memories: address mapping, block size, replacement, and write policies",
                "Virtual memory as a memory-hierarchy mechanism",
                "Coherence for multiprocessor caches",
            ],
            outcomes: &[
                ("Identify the main types of memory technology", Familiarity),
                ("Explain the effect of memory latency on running time", Familiarity),
                ("Describe how the use of memory hierarchy reduces effective memory latency", Familiarity),
                ("Describe the principles of memory management", Familiarity),
                ("Explain the workings of a system with virtual memory management", Usage),
                ("Compute the average memory access time under a variety of cache and memory configurations", Usage),
            ],
        },
        Ku {
            code: "MAA",
            label: "Multiprocessing and Alternative Architectures",
            tier: Elective,
            topics: &[
                "Power-wall motivation for multicore",
                "SIMD and vector processing",
                "Shared-memory multiprocessors and the coherence challenge",
                "GPU and accelerator architectures",
                "Interconnection networks",
                "Flynn's taxonomy",
            ],
            outcomes: &[
                ("Discuss the concept of parallel processing beyond the classical von Neumann model", Familiarity),
                ("Describe alternative architectures such as SIMD and MIMD", Familiarity),
                ("Explain the concept of interconnection networks and characterize different approaches", Familiarity),
                ("Describe the organization of a GPU and how it differs from a CPU", Familiarity),
            ],
        },
        Ku {
            code: "IC",
            label: "Interfacing and Communication",
            tier: Core2,
            topics: &[
                "I/O fundamentals: handshaking, buffering, programmed I/O, interrupt-driven I/O",
                "Interrupt structures: vectored and prioritized, interrupt acknowledgment",
                "Buses and bus protocols",
                "Direct memory access",
                "External storage and physical organization of disks",
            ],
            outcomes: &[
                ("Explain how interrupts are used to implement I/O control and data transfers", Familiarity),
                ("Identify various types of buses in a computer system", Familiarity),
                ("Describe data access from a magnetic disk drive", Familiarity),
            ],
        },
        Ku {
            code: "DLDS",
            label: "Digital Logic and Digital Systems",
            tier: Core2,
            topics: &[
                "Overview and history of computer architecture",
                "Combinational versus sequential logic",
                "Field programmable gate arrays as programmable logic",
                "Computer-aided design tools that process hardware descriptions",
                "Register transfer notation as a descriptive tool",
                "Physical constraints: gate delays, fan-in, fan-out, energy",
            ],
            outcomes: &[
                ("Describe the progression of computer technology components from vacuum tubes to VLSI", Familiarity),
                ("Write a simple sequential circuit using register transfer notation", Usage),
                ("Evaluate the functional and timing diagram behavior of a simple processor implemented at the register transfer level", Assessment),
            ],
        },
        Ku {
            code: "FO",
            label: "Functional Organization",
            tier: Elective,
            topics: &[
                "Implementation of simple datapaths, including instruction pipelining and hazards",
                "Control unit: hardwired realization versus microprogrammed realization",
                "Instruction pipelining and instruction-level parallelism",
                "Overview of superscalar architectures",
            ],
            outcomes: &[
                ("Compare alternative implementation of datapaths", Familiarity),
                ("Explain how instruction pipelining creates hazards and how they are resolved", Familiarity),
                ("Discuss the concept of branch prediction and its utility", Familiarity),
            ],
        },
    ],
};
