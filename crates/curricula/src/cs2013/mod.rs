//! The ACM/IEEE Computer Science Curricula 2013 guideline.
//!
//! A faithful, hand-encoded subset of the published CS2013 body of
//! knowledge: all 18 Knowledge Areas with the knowledge units, topics, and
//! learning outcomes most relevant to early CS courses (the paper's CS1,
//! CS2, Data Structures, Algorithms, Software Engineering, and PDC course
//! families). See DESIGN.md §2 for the substitution rationale.

mod al;
mod ar;
mod cn;
mod ds;
mod gv;
mod hci;
mod ias;
mod im;
mod is_;
mod nc;
mod os;
mod pbd;
mod pd;
mod pl;
mod sdf;
mod se;
mod sf;
mod sp;

use crate::ontology::Ontology;
use crate::spec::{build_cs_ontology, Ka};

/// The 18 knowledge areas, in the order the guideline lists them.
pub(crate) const AREAS: [&Ka; 18] = [
    &al::KA,
    &ar::KA,
    &cn::KA,
    &ds::KA,
    &gv::KA,
    &hci::KA,
    &ias::KA,
    &im::KA,
    &is_::KA,
    &nc::KA,
    &os::KA,
    &pbd::KA,
    &pd::KA,
    &pl::KA,
    &sdf::KA,
    &se::KA,
    &sf::KA,
    &sp::KA,
];

/// Build a fresh CS2013 ontology. Prefer [`crate::cs2013()`] which caches.
pub fn build() -> Ontology {
    build_cs_ontology("ACM/IEEE CS2013", &AREAS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::{Level, Tier};

    #[test]
    fn has_all_18_knowledge_areas() {
        let o = build();
        let kas: Vec<&str> = o
            .at_level(Level::KnowledgeArea)
            .map(|id| o.node(id).code.as_str())
            .collect();
        assert_eq!(kas.len(), 18);
        for code in [
            "AL", "AR", "CN", "DS", "GV", "HCI", "IAS", "IM", "IS", "NC", "OS", "PBD", "PD", "PL",
            "SDF", "SE", "SF", "SP",
        ] {
            assert!(kas.contains(&code), "missing KA {code}");
        }
    }

    #[test]
    fn paper_critical_units_exist() {
        let o = build();
        // Units named in the paper's analysis.
        for ku in [
            "SDF.FPC", // Fundamental Programming Concepts (Figure 4)
            "SDF.AD", "SDF.FDS", "AL.BA",   // Big-Oh (Figures 5–8)
            "AL.FDSA", // data structures and algorithms
            "DS.GT",   // graphs and trees
            "PL.OOP",  // OOP flavor of CS1 (type 3)
            "AR.MLRD", // in-memory representation (CS1 type 2)
            "PD.PF",   // parallelism fundamentals
            "PD.PAAP", // work/span, task graphs
        ] {
            assert!(o.by_code(ku).is_some(), "missing KU {ku}");
        }
    }

    #[test]
    fn is_a_reasonably_sized_ontology() {
        let o = build();
        let leaves = o.leaf_items().len();
        assert!(
            leaves > 600,
            "CS2013 subset should carry substantial content, got {leaves} items"
        );
        o.validate().expect("valid");
    }

    #[test]
    fn reference_level_is_the_leaf_level() {
        // The radial layout picks the widest level; for CS2013 that must be
        // the topic/outcome level (depth 3).
        let o = build();
        let widths = o.level_widths();
        let reflevel = widths
            .iter()
            .enumerate()
            .max_by_key(|(_, &w)| w)
            .map(|(d, _)| d)
            .unwrap();
        assert_eq!(reflevel, 3);
    }

    #[test]
    fn fpc_is_core1_with_many_items() {
        let o = build();
        let fpc = o.by_code("SDF.FPC").unwrap();
        assert_eq!(o.node(fpc).tier, Tier::Core1);
        assert!(
            o.leaves_under(fpc).len() >= 13,
            "FPC must hold at least the 13 agreed items of Figure 4"
        );
    }

    #[test]
    fn every_outcome_has_mastery_and_every_ka_has_units() {
        let o = build();
        for n in o.nodes() {
            match n.level {
                Level::LearningOutcome => {
                    assert!(n.mastery.is_some(), "outcome {} lacks mastery", n.code)
                }
                Level::KnowledgeArea => {
                    assert!(!n.children.is_empty(), "KA {} is empty", n.code)
                }
                _ => {}
            }
        }
    }
}
