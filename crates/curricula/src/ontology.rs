//! Curriculum-guideline ontology: a tree arena of knowledge areas, knowledge
//! units, topics, and learning outcomes.
//!
//! The ACM/IEEE CS2013 guideline and the NSF/IEEE-TCPP PDC12 guideline are
//! both organized as shallow trees; the paper's visualizations (radial
//! hit-trees) and agreement analysis operate directly on this structure.
//! Nodes are stored in a flat arena indexed by [`NodeId`]; every node carries
//! a stable, human-readable dotted code (e.g. `SDF.FPC.t3`) which is the
//! identity that course classifications reference.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a node in an [`Ontology`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Structural level of a node in the guideline tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Synthetic root of the guideline.
    Root,
    /// Knowledge Area (e.g. *Software Development Fundamentals*).
    KnowledgeArea,
    /// Knowledge Unit (e.g. *Fundamental Programming Concepts*).
    KnowledgeUnit,
    /// A topic inside a knowledge unit.
    Topic,
    /// A learning outcome inside a knowledge unit.
    LearningOutcome,
}

impl Level {
    /// Depth of this level in the tree (root = 0).
    pub fn depth(self) -> usize {
        match self {
            Level::Root => 0,
            Level::KnowledgeArea => 1,
            Level::KnowledgeUnit => 2,
            Level::Topic | Level::LearningOutcome => 3,
        }
    }
}

/// CS2013 coverage tier of a knowledge unit or topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Core Tier-1: every curriculum must cover 100%.
    Core1,
    /// Core Tier-2: curricula should cover at least 80%.
    Core2,
    /// Elective material.
    Elective,
}

/// Expected mastery of a CS2013 learning outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mastery {
    /// Familiarity: "what do you know about this?"
    Familiarity,
    /// Usage: apply the concept concretely.
    Usage,
    /// Assessment: select and evaluate among alternatives.
    Assessment,
}

/// Bloom-style level used by the PDC12 guideline (K/C/A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bloom {
    /// Know the term.
    Know,
    /// Comprehend: paraphrase or illustrate.
    Comprehend,
    /// Apply it in some way.
    Apply,
}

/// One node of a guideline ontology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Arena id of this node.
    pub id: NodeId,
    /// Parent node (`None` only for the root).
    pub parent: Option<NodeId>,
    /// Children in insertion order.
    pub children: Vec<NodeId>,
    /// Structural level.
    pub level: Level,
    /// Stable dotted code, unique within the ontology (e.g. `SDF.FPC.t2`).
    pub code: String,
    /// Human-readable name.
    pub label: String,
    /// Coverage tier (meaningful for KUs/topics of CS2013; PDC12 maps
    /// core→`Core1`, elective→`Elective`).
    pub tier: Tier,
    /// Mastery level for CS2013 learning outcomes.
    pub mastery: Option<Mastery>,
    /// Bloom level for PDC12 topics.
    pub bloom: Option<Bloom>,
}

/// A guideline ontology: an arena tree with code-based lookup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ontology {
    /// Guideline name (e.g. `"ACM/IEEE CS2013"`).
    pub name: String,
    nodes: Vec<Node>,
    #[serde(skip)]
    by_code: HashMap<String, NodeId>,
}

impl Ontology {
    /// Root node id (always the first inserted node).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in arena order (root first).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ontology is empty (never true after building).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look up a node by its dotted code.
    pub fn by_code(&self, code: &str) -> Option<NodeId> {
        self.by_code.get(code).copied()
    }

    /// Rebuild the code index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.by_code = self.nodes.iter().map(|n| (n.code.clone(), n.id)).collect();
    }

    /// Iterate ids of all nodes at a given level.
    pub fn at_level(&self, level: Level) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(move |n| n.level == level)
            .map(|n| n.id)
    }

    /// Ids of all *leaf classification items* — topics and learning
    /// outcomes. These are the columns of the paper's course matrix.
    pub fn leaf_items(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.level, Level::Topic | Level::LearningOutcome))
            .map(|n| n.id)
            .collect()
    }

    /// Walk up to the enclosing knowledge area of any node.
    pub fn knowledge_area_of(&self, id: NodeId) -> Option<NodeId> {
        let mut cur = id;
        loop {
            let n = self.node(cur);
            match n.level {
                Level::KnowledgeArea => return Some(cur),
                Level::Root => return None,
                _ => cur = n.parent?,
            }
        }
    }

    /// Walk up to the enclosing knowledge unit of a topic/outcome.
    pub fn knowledge_unit_of(&self, id: NodeId) -> Option<NodeId> {
        let mut cur = id;
        loop {
            let n = self.node(cur);
            match n.level {
                Level::KnowledgeUnit => return Some(cur),
                Level::Root => return None,
                _ => cur = n.parent?,
            }
        }
    }

    /// Path of ids from the root to `id`, inclusive.
    pub fn path(&self, id: NodeId) -> Vec<NodeId> {
        let mut p = vec![id];
        let mut cur = id;
        while let Some(parent) = self.node(cur).parent {
            p.push(parent);
            cur = parent;
        }
        p.reverse();
        p
    }

    /// Whether `ancestor` lies on the root path of `id` (a node is its own
    /// ancestor).
    pub fn is_ancestor(&self, ancestor: NodeId, id: NodeId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.node(c).parent;
        }
        false
    }

    /// Depth-first preorder traversal starting at `start`.
    pub fn preorder(&self, start: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children reversed so traversal visits them in order.
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All leaf items underneath `start` (topics + outcomes).
    pub fn leaves_under(&self, start: NodeId) -> Vec<NodeId> {
        self.preorder(start)
            .into_iter()
            .filter(|&id| matches!(self.node(id).level, Level::Topic | Level::LearningOutcome))
            .collect()
    }

    /// Number of nodes per depth (`result[d]` = count at depth `d`).
    /// The *reference level* of the radial layout is the argmax.
    pub fn level_widths(&self) -> Vec<usize> {
        let mut widths = Vec::new();
        for n in &self.nodes {
            let d = self.path(n.id).len() - 1;
            if widths.len() <= d {
                widths.resize(d + 1, 0);
            }
            widths[d] += 1;
        }
        widths
    }

    /// Deterministic structural fingerprint of the guideline: FNV-1a over
    /// the name, node count, and every node's code, label, and level, in
    /// arena order. Stable across processes and serde round-trips (unlike
    /// `std::hash`, which is seeded per-process), so fitted-model artifacts
    /// can record it and reject loads against a revised ontology.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            // Field separator so concatenations can't collide trivially.
            h ^= 0xff;
            h = h.wrapping_mul(PRIME);
        };
        eat(self.name.as_bytes());
        eat(&(self.nodes.len() as u64).to_le_bytes());
        for n in &self.nodes {
            eat(n.code.as_bytes());
            eat(n.label.as_bytes());
            eat(&[n.level.depth() as u8]);
            eat(&[match n.level {
                Level::Root => 0,
                Level::KnowledgeArea => 1,
                Level::KnowledgeUnit => 2,
                Level::Topic => 3,
                Level::LearningOutcome => 4,
            }]);
        }
        h
    }

    /// Structural integrity check used by tests and after deserialization:
    /// parent/child links agree, codes are unique, levels are consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty ontology".into());
        }
        if self.nodes[0].level != Level::Root || self.nodes[0].parent.is_some() {
            return Err("node 0 must be the parentless root".into());
        }
        let mut seen = HashMap::new();
        for n in &self.nodes {
            if n.id.index() >= self.nodes.len() {
                return Err(format!("node id {} out of range", n.id.0));
            }
            if let Some(prev) = seen.insert(n.code.clone(), n.id) {
                return Err(format!(
                    "duplicate code {:?} ({:?}, {:?})",
                    n.code, prev, n.id
                ));
            }
            if let Some(p) = n.parent {
                let parent = &self.nodes[p.index()];
                if !parent.children.contains(&n.id) {
                    return Err(format!(
                        "{} not registered in parent {}",
                        n.code, parent.code
                    ));
                }
                let ok = matches!(
                    (parent.level, n.level),
                    (Level::Root, Level::KnowledgeArea)
                        | (Level::KnowledgeArea, Level::KnowledgeUnit)
                        | (Level::KnowledgeUnit, Level::Topic)
                        | (Level::KnowledgeUnit, Level::LearningOutcome)
                );
                if !ok {
                    return Err(format!(
                        "level violation: {:?} under {:?} at {}",
                        n.level, parent.level, n.code
                    ));
                }
            } else if n.level != Level::Root {
                return Err(format!("non-root node {} has no parent", n.code));
            }
            for &c in &n.children {
                if c.index() >= self.nodes.len() {
                    return Err(format!("dangling child {} under {}", c.0, n.code));
                }
                if self.nodes[c.index()].parent != Some(n.id) {
                    return Err(format!("child {} does not point back to {}", c.0, n.code));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Ontology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} nodes)", self.name, self.nodes.len())?;
        for &ka in self.node(self.root()).children.iter() {
            let n = self.node(ka);
            writeln!(
                f,
                "  {} {} ({} KUs, {} items)",
                n.code,
                n.label,
                n.children.len(),
                self.leaves_under(ka).len()
            )?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Ontology`].
pub struct OntologyBuilder {
    name: String,
    nodes: Vec<Node>,
    by_code: HashMap<String, NodeId>,
}

impl OntologyBuilder {
    /// Start a new guideline with a synthetic root.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let root = Node {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            level: Level::Root,
            code: "ROOT".to_string(),
            label: name.clone(),
            tier: Tier::Core1,
            mastery: None,
            bloom: None,
        };
        let mut by_code = HashMap::new();
        by_code.insert("ROOT".to_string(), NodeId(0));
        OntologyBuilder {
            name,
            nodes: vec![root],
            by_code,
        }
    }

    fn push(&mut self, mut node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        node.id = id;
        assert!(
            self.by_code.insert(node.code.clone(), id).is_none(),
            "duplicate ontology code {:?}",
            node.code
        );
        if let Some(p) = node.parent {
            self.nodes[p.index()].children.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// Add a knowledge area under the root.
    pub fn knowledge_area(&mut self, code: &str, label: &str) -> NodeId {
        self.push(Node {
            id: NodeId(0),
            parent: Some(NodeId(0)),
            children: Vec::new(),
            level: Level::KnowledgeArea,
            code: code.to_string(),
            label: label.to_string(),
            tier: Tier::Core1,
            mastery: None,
            bloom: None,
        })
    }

    /// Add a knowledge unit under a knowledge area.
    pub fn knowledge_unit(&mut self, ka: NodeId, code: &str, label: &str, tier: Tier) -> NodeId {
        assert_eq!(self.nodes[ka.index()].level, Level::KnowledgeArea);
        let full = format!("{}.{}", self.nodes[ka.index()].code, code);
        self.push(Node {
            id: NodeId(0),
            parent: Some(ka),
            children: Vec::new(),
            level: Level::KnowledgeUnit,
            code: full,
            label: label.to_string(),
            tier,
            mastery: None,
            bloom: None,
        })
    }

    /// Add a topic under a knowledge unit; codes are auto-numbered `t1…`.
    pub fn topic(&mut self, ku: NodeId, label: &str) -> NodeId {
        self.topic_tier(ku, label, self.nodes[ku.index()].tier)
    }

    /// Add a topic with an explicit tier.
    pub fn topic_tier(&mut self, ku: NodeId, label: &str, tier: Tier) -> NodeId {
        assert_eq!(self.nodes[ku.index()].level, Level::KnowledgeUnit);
        let n = self.nodes[ku.index()]
            .children
            .iter()
            .filter(|&&c| self.nodes[c.index()].level == Level::Topic)
            .count();
        let full = format!("{}.t{}", self.nodes[ku.index()].code, n + 1);
        self.push(Node {
            id: NodeId(0),
            parent: Some(ku),
            children: Vec::new(),
            level: Level::Topic,
            code: full,
            label: label.to_string(),
            tier,
            mastery: None,
            bloom: None,
        })
    }

    /// Add a learning outcome under a knowledge unit (auto-numbered `o1…`).
    pub fn outcome(&mut self, ku: NodeId, label: &str, mastery: Mastery) -> NodeId {
        assert_eq!(self.nodes[ku.index()].level, Level::KnowledgeUnit);
        let n = self.nodes[ku.index()]
            .children
            .iter()
            .filter(|&&c| self.nodes[c.index()].level == Level::LearningOutcome)
            .count();
        let full = format!("{}.o{}", self.nodes[ku.index()].code, n + 1);
        self.push(Node {
            id: NodeId(0),
            parent: Some(ku),
            children: Vec::new(),
            level: Level::LearningOutcome,
            code: full,
            label: label.to_string(),
            tier: self.nodes[ku.index()].tier,
            mastery: Some(mastery),
            bloom: None,
        })
    }

    /// Add a PDC12-style topic with a Bloom level under a knowledge unit.
    pub fn bloom_topic(&mut self, ku: NodeId, label: &str, bloom: Bloom, tier: Tier) -> NodeId {
        let id = self.topic_tier(ku, label, tier);
        self.nodes[id.index()].bloom = Some(bloom);
        id
    }

    /// Finish building; panics if the result fails validation (programmer
    /// error in the data modules).
    pub fn build(self) -> Ontology {
        let o = Ontology {
            name: self.name,
            nodes: self.nodes,
            by_code: self.by_code,
        };
        if let Err(e) = o.validate() {
            panic!("invalid ontology: {e}");
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Ontology {
        let mut b = OntologyBuilder::new("toy");
        let ka = b.knowledge_area("KA", "Area");
        let ku = b.knowledge_unit(ka, "KU", "Unit", Tier::Core1);
        b.topic(ku, "topic one");
        b.topic(ku, "topic two");
        b.outcome(ku, "do the thing", Mastery::Usage);
        let ka2 = b.knowledge_area("KB", "Area B");
        let ku2 = b.knowledge_unit(ka2, "KU", "Unit B", Tier::Elective);
        b.topic(ku2, "elective topic");
        b.build()
    }

    #[test]
    fn builds_and_validates() {
        let o = toy();
        assert_eq!(o.len(), 9);
        o.validate().expect("valid");
    }

    #[test]
    fn codes_are_hierarchical_and_unique() {
        let o = toy();
        assert!(o.by_code("KA.KU.t1").is_some());
        assert!(o.by_code("KA.KU.t2").is_some());
        assert!(o.by_code("KA.KU.o1").is_some());
        assert!(o.by_code("KB.KU.t1").is_some());
        assert!(o.by_code("KA.KU.t9").is_none());
    }

    #[test]
    fn ancestors_and_paths() {
        let o = toy();
        let t = o.by_code("KA.KU.t1").unwrap();
        let ka = o.by_code("KA").unwrap();
        let ku = o.by_code("KA.KU").unwrap();
        assert_eq!(o.knowledge_area_of(t), Some(ka));
        assert_eq!(o.knowledge_unit_of(t), Some(ku));
        assert_eq!(o.path(t), vec![o.root(), ka, ku, t]);
        assert!(o.is_ancestor(ka, t));
        assert!(o.is_ancestor(t, t));
        assert!(!o.is_ancestor(t, ka));
        let kb = o.by_code("KB").unwrap();
        assert!(!o.is_ancestor(kb, t));
    }

    #[test]
    fn leaf_items_are_topics_and_outcomes() {
        let o = toy();
        let leaves = o.leaf_items();
        assert_eq!(leaves.len(), 4);
        for id in leaves {
            assert!(matches!(
                o.node(id).level,
                Level::Topic | Level::LearningOutcome
            ));
        }
    }

    #[test]
    fn preorder_visits_in_order() {
        let o = toy();
        let order = o.preorder(o.root());
        assert_eq!(order.len(), o.len());
        assert_eq!(order[0], o.root());
        // Parent precedes child.
        for (pos, &id) in order.iter().enumerate() {
            if let Some(p) = o.node(id).parent {
                let ppos = order.iter().position(|&x| x == p).unwrap();
                assert!(ppos < pos);
            }
        }
    }

    #[test]
    fn leaves_under_subtree() {
        let o = toy();
        let ka = o.by_code("KA").unwrap();
        assert_eq!(o.leaves_under(ka).len(), 3);
        let kb = o.by_code("KB").unwrap();
        assert_eq!(o.leaves_under(kb).len(), 1);
    }

    #[test]
    fn level_widths_counts_depths() {
        let o = toy();
        assert_eq!(o.level_widths(), vec![1, 2, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate ontology code")]
    fn duplicate_code_panics() {
        let mut b = OntologyBuilder::new("dup");
        b.knowledge_area("KA", "a");
        b.knowledge_area("KA", "b");
    }

    #[test]
    fn serde_roundtrip_with_reindex() {
        let o = toy();
        let json = serde_json::to_string(&o).unwrap();
        let mut back: Ontology = serde_json::from_str(&json).unwrap();
        back.reindex();
        back.validate().expect("valid after roundtrip");
        assert_eq!(back.by_code("KA.KU.t1"), o.by_code("KA.KU.t1"));
        assert_eq!(back.len(), o.len());
    }

    #[test]
    fn fingerprint_is_deterministic_and_structure_sensitive() {
        let o = toy();
        assert_eq!(o.fingerprint(), toy().fingerprint(), "deterministic");
        // A clone is identical; a structural edit changes the hash.
        let mut renamed = o.clone();
        renamed.name.push('!');
        assert_ne!(o.fingerprint(), renamed.fingerprint());
        let mut grown = OntologyBuilder::new("toy");
        let ka = grown.knowledge_area("KA", "Area");
        let ku = grown.knowledge_unit(ka, "KU", "Unit", Tier::Core1);
        grown.topic(ku, "topic one");
        assert_ne!(o.fingerprint(), grown.build().fingerprint());
        // Real guidelines get distinct fingerprints.
        assert_ne!(crate::cs2013().fingerprint(), crate::pdc12().fingerprint());
    }

    #[test]
    fn bloom_topic_sets_bloom() {
        let mut b = OntologyBuilder::new("pdc");
        let ka = b.knowledge_area("ALG", "Algorithms");
        let ku = b.knowledge_unit(ka, "PA", "Parallelism basics", Tier::Core1);
        let t = b.bloom_topic(ku, "work and span", Bloom::Comprehend, Tier::Core1);
        let o = b.build();
        assert_eq!(o.node(t).bloom, Some(Bloom::Comprehend));
    }
}
