//! Compact static-data format for declaring guideline content.
//!
//! The CS2013 and PDC12 data modules declare their knowledge areas as
//! `const` tables of [`Ka`]/[`Ku`] and the loader lowers them into an
//! [`Ontology`](crate::ontology::Ontology). Keeping the guideline text as
//! plain static data makes the (large) data modules cheap to audit against
//! the published guidelines.

use crate::ontology::{Bloom, Mastery, Ontology, OntologyBuilder, Tier};

/// Static description of a knowledge unit.
pub struct Ku {
    /// Short code unique within the knowledge area (e.g. `"FPC"`).
    pub code: &'static str,
    /// Published name of the unit.
    pub label: &'static str,
    /// Coverage tier of the unit.
    pub tier: Tier,
    /// Topic strings, in guideline order.
    pub topics: &'static [&'static str],
    /// Learning outcomes with mastery levels.
    pub outcomes: &'static [(&'static str, Mastery)],
}

/// Static description of a knowledge area.
pub struct Ka {
    /// Short code (e.g. `"SDF"`).
    pub code: &'static str,
    /// Published name of the area.
    pub label: &'static str,
    /// Knowledge units in guideline order.
    pub units: &'static [Ku],
}

/// Static description of a PDC12 topic (Bloom level + tier).
pub struct PdcTopic {
    /// Topic string.
    pub label: &'static str,
    /// Expected Bloom level.
    pub bloom: Bloom,
    /// Core or elective.
    pub tier: Tier,
}

/// Static description of a PDC12 sub-area.
pub struct PdcUnit {
    /// Short code unique within the area.
    pub code: &'static str,
    /// Published name.
    pub label: &'static str,
    /// Topics with Bloom levels.
    pub topics: &'static [PdcTopic],
}

/// Static description of a PDC12 area (Algorithms / Architecture /
/// Programming / Cross-Cutting).
pub struct PdcArea {
    /// Short code (e.g. `"ALG"`).
    pub code: &'static str,
    /// Published name.
    pub label: &'static str,
    /// Sub-areas.
    pub units: &'static [PdcUnit],
}

/// Lower a list of knowledge areas into an ontology.
pub fn build_cs_ontology(name: &str, areas: &[&Ka]) -> Ontology {
    let mut b = OntologyBuilder::new(name);
    for ka in areas {
        let ka_id = b.knowledge_area(ka.code, ka.label);
        for ku in ka.units {
            let ku_id = b.knowledge_unit(ka_id, ku.code, ku.label, ku.tier);
            for t in ku.topics {
                b.topic(ku_id, t);
            }
            for (o, m) in ku.outcomes {
                b.outcome(ku_id, o, *m);
            }
        }
    }
    b.build()
}

/// Lower a list of PDC areas into an ontology.
pub fn build_pdc_ontology(name: &str, areas: &[&PdcArea]) -> Ontology {
    let mut b = OntologyBuilder::new(name);
    for area in areas {
        let ka_id = b.knowledge_area(area.code, area.label);
        for unit in area.units {
            let ku_id = b.knowledge_unit(ka_id, unit.code, unit.label, Tier::Core1);
            for t in unit.topics {
                b.bloom_topic(ku_id, t.label, t.bloom, t.tier);
            }
        }
    }
    b.build()
}
