//! Crosswalk between the PDC12 guideline and the CS2013 body of knowledge.
//!
//! PDC Unplugged "links activities to the entries of the curricular
//! standards that they address" (§2.2); CS Materials classifies against
//! both guidelines. This module records which CS2013 knowledge units each
//! PDC12 sub-area corresponds to, so analyses can translate between the
//! two vocabularies (e.g. "a course covering OS.CON already touches
//! PROG.SEM territory").

use crate::ontology::NodeId;
use crate::{cs2013, pdc12};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Static mapping: PDC12 unit code → CS2013 KU codes it overlaps.
const TABLE: &[(&str, &[&str])] = &[
    ("ARCH.CLS", &["AR.ALMO", "AR.MAA", "SF.CPD", "PD.PA"]),
    ("ARCH.MEM", &["AR.MSO", "SF.PRF", "PD.CC"]),
    ("ARCH.PERF", &["SF.EVAL", "AR.MSO"]),
    ("PROG.PAR", &["PD.PDC", "PL.CP", "SF.PAR"]),
    ("PROG.SEM", &["PD.CC", "OS.CON", "PL.CP", "IAS.DP"]),
    ("PROG.PPP", &["PD.PP", "SF.EVAL", "SF.RAS"]),
    ("ALG.MOD", &["PD.PAAP", "AL.BA", "DS.GT", "SF.EVAL"]),
    ("ALG.AP", &["PD.PAAP", "AL.AS", "SDF.AD"]),
    ("ALG.APROB", &["PD.PAAP", "AL.FDSA", "DS.GT"]),
    ("XCUT.HLT", &["SF.CPD", "SF.PAR", "PD.PF"]),
    ("XCUT.XTOP", &["PD.PF", "SF.RR", "IAS.FC"]),
    ("XCUT.ADV", &["PD.CLD", "PD.DS", "NC.NA"]),
];

/// The resolved crosswalk (memoized): PDC12 unit id → CS2013 KU ids.
pub fn crosswalk() -> &'static BTreeMap<NodeId, Vec<NodeId>> {
    static MAP: OnceLock<BTreeMap<NodeId, Vec<NodeId>>> = OnceLock::new();
    MAP.get_or_init(|| {
        let pdc = pdc12();
        let cs = cs2013();
        TABLE
            .iter()
            .map(|(pdc_code, cs_codes)| {
                let unit = pdc
                    .by_code(pdc_code)
                    .unwrap_or_else(|| panic!("crosswalk: unknown PDC unit {pdc_code}"));
                let targets = cs_codes
                    .iter()
                    .map(|c| {
                        cs.by_code(c)
                            .unwrap_or_else(|| panic!("crosswalk: unknown CS2013 KU {c}"))
                    })
                    .collect();
                (unit, targets)
            })
            .collect()
    })
}

/// CS2013 knowledge units related to a PDC12 topic (via its enclosing
/// unit). Empty if the topic's unit is unmapped.
pub fn cs_anchors_of_pdc_topic(topic: NodeId) -> Vec<NodeId> {
    let pdc = pdc12();
    let Some(unit) = pdc.knowledge_unit_of(topic) else {
        return Vec::new();
    };
    crosswalk().get(&unit).cloned().unwrap_or_default()
}

/// PDC12 units whose crosswalk includes a given CS2013 knowledge unit —
/// the reverse question: "I teach this KU; which PDC areas connect?"
pub fn pdc_units_anchorable_at(cs_ku: NodeId) -> Vec<NodeId> {
    crosswalk()
        .iter()
        .filter(|(_, targets)| targets.contains(&cs_ku))
        .map(|(&unit, _)| unit)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    #[test]
    fn crosswalk_covers_every_pdc_unit() {
        let pdc = pdc12();
        let map = crosswalk();
        for unit in pdc.at_level(Level::KnowledgeUnit) {
            assert!(
                map.contains_key(&unit),
                "PDC unit {} unmapped",
                pdc.node(unit).code
            );
        }
        assert_eq!(map.len(), TABLE.len());
    }

    #[test]
    fn targets_are_cs2013_kus() {
        let cs = cs2013();
        for targets in crosswalk().values() {
            assert!(!targets.is_empty());
            for &t in targets {
                assert_eq!(cs.node(t).level, Level::KnowledgeUnit);
            }
        }
    }

    #[test]
    fn topic_lookup_goes_through_unit() {
        let pdc = pdc12();
        // A PROG.SEM topic maps to the PROG.SEM anchors.
        let sem = pdc.by_code("PROG.SEM").unwrap();
        let topic = pdc.node(sem).children[0];
        let anchors = cs_anchors_of_pdc_topic(topic);
        let cs = cs2013();
        let codes: Vec<&str> = anchors.iter().map(|&a| cs.node(a).code.as_str()).collect();
        assert!(codes.contains(&"OS.CON"), "{codes:?}");
    }

    #[test]
    fn reverse_lookup_finds_parallel_programming_for_pl_cp() {
        let cs = cs2013();
        let pl_cp = cs.by_code("PL.CP").unwrap();
        let units = pdc_units_anchorable_at(pl_cp);
        let pdc = pdc12();
        let codes: Vec<&str> = units.iter().map(|&u| pdc.node(u).code.as_str()).collect();
        assert!(codes.contains(&"PROG.PAR"), "{codes:?}");
        assert!(codes.contains(&"PROG.SEM"), "{codes:?}");
    }

    #[test]
    fn unmapped_ku_returns_empty() {
        let cs = cs2013();
        let hci = cs.by_code("HCI.F").unwrap();
        assert!(pdc_units_anchorable_at(hci).is_empty());
    }
}
