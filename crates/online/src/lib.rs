//! # anchors-online — the online-learning subsystem
//!
//! Upstream crates fit models; `anchors-serve` freezes and serves them.
//! This crate is about what happens *between* fits: courses keep
//! arriving while a model serves, and the system should learn from them
//! without a human re-running the pipeline.
//!
//! Three layers, each usable alone:
//!
//! * [`delta`] — the [`FoldInDelta`] artifact: one folded-in course (tag
//!   row + NNLS loadings + the model version it chains from), persisted
//!   through the serve crate's codec seam as `delta-v<N>.json`/`.bin`
//!   with the same checksum framing and crash-safety as model
//!   artifacts.
//! * [`log`] — the [`DeltaLog`]: an append-only registry of deltas with
//!   startup recovery, base-version pinning (retention GC never frees a
//!   full model that live deltas chain from), typed
//!   referential-integrity checks, and compaction once a refresh has
//!   absorbed the deltas.
//! * [`refresh`] — [`refresh_model`]: rebuild the training matrix with
//!   the folded-in rows included and warm-start refit from the previous
//!   factors (`anchors_factor::warm`), so absorbing a few new courses
//!   costs a few HALS sweeps, not a cold multi-restart fit.
//!
//! The HTTP server (`anchors-server`) composes all three into its
//! `POST /v1/fold_in` route and background refresh loop; this crate
//! stays transport-free so batch pipelines can drive the same machinery.

#![warn(missing_docs)]

pub mod delta;
pub mod error;
pub mod log;
pub mod refresh;

pub use delta::{
    delta_from_binary, delta_from_json, delta_to_binary, delta_to_json, FoldInDelta, DELTA_MAGIC,
    DELTA_SCHEMA_VERSION,
};
pub use error::OnlineError;
pub use log::DeltaLog;
pub use refresh::{refresh_model, RefreshOptions, RefreshReport};

// The solver's own account of a warm refit, re-exported so drivers that
// only depend on this crate can read the report.
pub use anchors_factor::WarmReport;
