//! The append-only delta log.
//!
//! [`DeltaLog`] is a thin discipline over a
//! [`Registry`]`<`[`FoldInDelta`]`>`: every fold-in the server wants to
//! survive a restart is appended as its own `delta-v<N>` artifact
//! (crash-safe claim → durable tmp write → rename, exactly like a model
//! publish), and the set of deltas currently on disk *is* the log — no
//! separate index file to tear. [`DeltaLog::recover`] is the registry's
//! startup sweep: torn appends are quarantined, the good suffix of the
//! log survives.
//!
//! Two invariants connect the log to the model registry it lives beside:
//!
//! * **Pinning** — a delta is only replayable against the full model it
//!   chains from, so [`DeltaLog`] implements [`VersionPins`]: the
//!   distinct `base_version`s of live deltas. A model
//!   `Registry::with_retention(n)` wired to the log via
//!   `Registry::with_pins` will never GC a base that live deltas still
//!   need, no matter how old it is.
//! * **Referential integrity** — [`DeltaLog::verify_bases`] reports a
//!   delta whose base is gone as the typed
//!   [`ServeError::DeltaBaseMissing`], which is *neither* transient nor
//!   corruption: the delta's bytes are fine, the world around it moved.
//!   Callers decide whether to drop the orphan or restore the base;
//!   nothing quarantines it behind their back.
//!
//! Compaction closes the loop: once a refresh publishes a full model
//! that absorbed deltas `v₁..vₙ`, [`DeltaLog::compact`] deletes exactly
//! those versions (each as one multi-format unit via
//! `Registry::remove`), which also releases their pins.

use crate::delta::FoldInDelta;
use anchors_serve::{ArtifactFormat, FileOps, RecoveryReport, Registry, ServeError, VersionPins};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An append-only log of fold-in deltas over a shared artifact
/// directory.
#[derive(Debug, Clone)]
pub struct DeltaLog {
    registry: Registry<FoldInDelta>,
}

impl DeltaLog {
    /// Open (creating if needed) the delta log in `dir`. The directory
    /// can be shared with the model registry: stems keep the kinds
    /// apart.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        Ok(DeltaLog {
            registry: Registry::open(dir)?,
        })
    }

    /// [`DeltaLog::open`] with explicit file operations (fault
    /// injection).
    pub fn open_with(dir: impl Into<PathBuf>, ops: Arc<dyn FileOps>) -> Result<Self, ServeError> {
        Ok(DeltaLog {
            registry: Registry::open_with(dir, ops)?,
        })
    }

    /// Use an explicit artifact format instead of the
    /// `ANCHORS_ARTIFACT_FORMAT` default.
    pub fn with_format(mut self, format: ArtifactFormat) -> Self {
        self.registry = self.registry.with_format(format);
        self
    }

    /// The directory the log writes to.
    pub fn dir(&self) -> &Path {
        self.registry.dir()
    }

    /// The underlying registry (tests and diagnostics).
    pub fn registry(&self) -> &Registry<FoldInDelta> {
        &self.registry
    }

    /// Append one delta durably; returns its assigned version. Among
    /// *live* deltas the ascending version order is the append order
    /// (versions only move forward while any delta file exists; the
    /// counter may rewind after a compaction empties the log entirely,
    /// when nothing references the old numbers).
    pub fn append(&self, delta: &FoldInDelta) -> Result<u64, ServeError> {
        self.registry.save(delta)
    }

    /// All decodable deltas in append (ascending-version) order. A
    /// version whose bytes are damaged is skipped — the log's contract is
    /// "every *surviving* append replays", not "a torn tail poisons the
    /// rest" — but transient I/O errors propagate so a flaky disk is not
    /// silently read as an empty log.
    pub fn live(&self) -> Result<Vec<(u64, FoldInDelta)>, ServeError> {
        let mut out = Vec::new();
        for version in self.registry.list()? {
            match self.registry.load(version) {
                Ok(delta) => out.push((version, delta)),
                Err(e) if e.is_corruption() => continue,
                Err(ServeError::VersionNotFound { .. }) => continue, // raced a compaction
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// The live deltas chained to one base model version.
    pub fn for_base(&self, base: u64) -> Result<Vec<(u64, FoldInDelta)>, ServeError> {
        Ok(self
            .live()?
            .into_iter()
            .filter(|(_, d)| d.base_version == base)
            .collect())
    }

    /// Check every live delta's base against the given set of full-model
    /// versions; the first orphan surfaces as
    /// [`ServeError::DeltaBaseMissing`].
    pub fn verify_bases(&self, model_versions: &[u64]) -> Result<(), ServeError> {
        for (version, delta) in self.live()? {
            if !model_versions.contains(&delta.base_version) {
                return Err(ServeError::DeltaBaseMissing {
                    delta: version,
                    base: delta.base_version,
                });
            }
        }
        Ok(())
    }

    /// Delete the given delta versions (each as one multi-format unit) —
    /// the step after a refresh absorbed them into a full model. Returns
    /// how many versions actually existed. Missing versions are not an
    /// error: compaction retried after a crash must be idempotent.
    pub fn compact(&self, versions: &[u64]) -> Result<usize, ServeError> {
        let mut removed = 0;
        for &version in versions {
            if self.registry.remove(version)? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Startup sweep: clear torn appends, quarantine unreadable
    /// versions. See `Registry::recover`.
    pub fn recover(&self) -> Result<RecoveryReport, ServeError> {
        self.registry.recover()
    }
}

impl VersionPins for DeltaLog {
    /// The distinct base versions live deltas still chain from. Best
    /// effort by construction: GC must not fail because the log is
    /// unreadable, and a missing pin at worst keeps retention from
    /// freeing a base one cycle longer (the error will surface loudly on
    /// the next `live()` call).
    fn pinned_versions(&self) -> Vec<u64> {
        let mut bases: Vec<u64> = self
            .live()
            .unwrap_or_default()
            .into_iter()
            .map(|(_, d)| d.base_version)
            .collect();
        bases.sort_unstable();
        bases.dedup();
        bases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;
    use anchors_factor::nnmf::{NnmfModel, NnmfRecovery};
    use anchors_linalg::{Backend, Matrix};
    use anchors_materials::TagSpace;
    use anchors_serve::FittedModel;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("anchors-online-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn toy_model(loss: f64) -> FittedModel {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(5));
        let model = NnmfModel {
            w: Matrix::from_fn(3, 2, |i, j| (i + j) as f64 * 0.5),
            h: Matrix::from_fn(2, 5, |i, j| (i * 5 + j) as f64 * 0.1),
            loss,
            iterations: 9,
            converged: true,
            winning_seed: 42,
            recovery: NnmfRecovery::default(),
        };
        FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid")
    }

    fn toy_delta(base: u64, salt: u64) -> FoldInDelta {
        FoldInDelta {
            base_version: base,
            name: format!("folded-{salt}"),
            guideline: "CS2013".into(),
            fingerprint: 0xFEED,
            tags: (0..5).map(|i| ((i as u64 + salt) % 2) as f64).collect(),
            loadings: vec![0.25 * salt as f64, 1.0],
        }
    }

    #[test]
    fn append_live_and_for_base_replay_in_order() {
        let log = DeltaLog::open(tmp_dir("order")).expect("open");
        let v1 = log.append(&toy_delta(1, 1)).expect("append");
        let v2 = log.append(&toy_delta(2, 2)).expect("append");
        let v3 = log.append(&toy_delta(1, 3)).expect("append");
        assert!(v1 < v2 && v2 < v3, "versions are the append order");
        let live = log.live().expect("live");
        assert_eq!(
            live.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![v1, v2, v3]
        );
        let base1 = log.for_base(1).expect("for_base");
        assert_eq!(base1.len(), 2);
        assert!(base1.iter().all(|(_, d)| d.base_version == 1));
    }

    #[test]
    fn log_shares_a_directory_with_the_model_registry() {
        let dir = tmp_dir("shared");
        let models: Registry<FittedModel> = Registry::open(&dir).expect("models");
        let log = DeltaLog::open(&dir).expect("log");
        let base = models.save(&toy_model(1.0)).expect("publish");
        let dv = log.append(&toy_delta(base, 1)).expect("append");
        // Stems keep the version counters independent and the files
        // apart.
        assert_eq!(models.list().expect("models list"), vec![base]);
        assert_eq!(
            log.live().expect("live").len(),
            1,
            "model publish is invisible to the delta log"
        );
        let ext = log.registry().format().extension();
        assert!(log.dir().join(format!("delta-v{dv}.{ext}")).exists());
    }

    #[test]
    fn deltas_pin_their_base_against_retention_gc() {
        let dir = tmp_dir("pins");
        let log = Arc::new(DeltaLog::open(&dir).expect("log"));
        let models: Registry<FittedModel> = Registry::open(&dir)
            .expect("models")
            .with_retention(1)
            .with_pins(log.clone());
        let v1 = models.save(&toy_model(1.0)).expect("v1");
        log.append(&toy_delta(v1, 1)).expect("append");
        // Two newer publishes: retention of 1 would normally leave only
        // the newest, but v1 is pinned by its live delta.
        let v2 = models.save(&toy_model(2.0)).expect("v2");
        let v3 = models.save(&toy_model(3.0)).expect("v3");
        let left = models.list().expect("list");
        assert!(left.contains(&v1), "pinned base survived: {left:?}");
        assert!(left.contains(&v3));
        assert!(!left.contains(&v2), "unpinned middle version collected");
        // Compacting the delta releases the pin; the next publish frees
        // the old base.
        let delta_versions: Vec<u64> = log.live().expect("live").iter().map(|(v, _)| *v).collect();
        assert_eq!(log.compact(&delta_versions).expect("compact"), 1);
        let v4 = models.save(&toy_model(4.0)).expect("v4");
        let left = models.list().expect("list");
        assert_eq!(left, vec![v4], "nothing pinned once the log is empty");
    }

    #[test]
    fn verify_bases_types_the_orphan() {
        let log = DeltaLog::open(tmp_dir("orphan")).expect("log");
        let dv = log.append(&toy_delta(9, 1)).expect("append");
        assert!(log.verify_bases(&[9]).is_ok());
        let err = log.verify_bases(&[2, 3]).expect_err("orphan detected");
        match err {
            ServeError::DeltaBaseMissing { delta, base } => {
                assert_eq!(delta, dv);
                assert_eq!(base, 9);
            }
            other => panic!("expected DeltaBaseMissing, got {other}"),
        }
        assert!(
            !err.is_corruption(),
            "referential damage is not byte damage"
        );
        assert!(!err.is_transient(), "and not transient either");
    }

    #[test]
    fn compact_is_idempotent_and_partial() {
        let log = DeltaLog::open(tmp_dir("compact")).expect("log");
        let v1 = log.append(&toy_delta(1, 1)).expect("append");
        let v2 = log.append(&toy_delta(1, 2)).expect("append");
        assert_eq!(log.compact(&[v1]).expect("first"), 1);
        assert_eq!(log.compact(&[v1, v2]).expect("retry"), 1, "v1 already gone");
        assert!(log.live().expect("live").is_empty());
        // The log keeps accepting appends after a full compaction.
        log.append(&toy_delta(1, 3)).expect("append");
        assert_eq!(log.live().expect("live").len(), 1);
    }

    #[test]
    fn versions_stay_monotone_while_any_delta_is_live() {
        let log = DeltaLog::open(tmp_dir("monotone")).expect("log");
        let v1 = log.append(&toy_delta(1, 1)).expect("append");
        let v2 = log.append(&toy_delta(1, 2)).expect("append");
        // Compact only the older delta: the claim scan still sees v2, so
        // the next append cannot reuse v1's number.
        assert_eq!(log.compact(&[v1]).expect("compact"), 1);
        let v3 = log.append(&toy_delta(1, 3)).expect("append");
        assert!(
            v3 > v2,
            "v3={v3} must not reuse a number below live v2={v2}"
        );
    }
}
