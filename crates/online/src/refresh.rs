//! Warm-start model refresh: absorb fold-in deltas into a full refit.
//!
//! The fold-in projection (NNLS onto a frozen `H`) is exact for the
//! course it folds but leaves `H` untouched: the basis never learns from
//! what arrived after training. [`refresh_model`] closes that gap off
//! the hot path. It rebuilds a training matrix that *includes* the
//! folded-in rows, then refits — but instead of a cold NNDSVD start it
//! seeds HALS from the previous factors, which are already
//! near-stationary for every row except the handful of new ones:
//!
//! * data: `A' = [W·H ; t₁ ; … ; t_d]` — the base model's reconstruction
//!   for the original courses (their raw matrix is not persisted in the
//!   artifact; the reconstruction is the part of them the model kept)
//!   stacked over the deltas' raw tag rows;
//! * seed: `H₀ = H` and `W₀ = [W ; w₁ ; … ; w_d]`, the stored base
//!   factors plus each delta's fold-in loadings — exactly the
//!   fixed-point structure, perturbed only where the new rows pull it.
//!
//! Deltas that cannot be absorbed safely — a different ontology
//! fingerprint, a tag row or loading vector of the wrong width — are
//! skipped and reported, never silently mixed in. The refit itself goes
//! through `anchors_factor::warm`, so a pathological seed falls back to
//! the cold restart ladder instead of erroring, and the report says so.

use crate::delta::FoldInDelta;
use anchors_factor::{try_nnmf_warm, NnmfConfig, NnmfError, WarmReport, WarmStart};
use anchors_linalg::{matmul, Matrix};
use anchors_serve::FittedModel;

/// Solver budget for one background refresh.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshOptions {
    /// HALS sweep cap for the refit.
    pub max_iter: usize,
    /// Relative-loss convergence tolerance.
    pub tol: f64,
    /// Wall-clock budget, if any (refreshes run on a background thread,
    /// but an unbounded solve would delay the next swap indefinitely).
    pub max_wall_ms: Option<u64>,
}

impl Default for RefreshOptions {
    fn default() -> Self {
        let paper = NnmfConfig::paper_default(1);
        RefreshOptions {
            max_iter: paper.max_iter,
            tol: paper.tol,
            max_wall_ms: None,
        }
    }
}

/// What one refresh absorbed, skipped, and cost.
#[derive(Debug, Clone)]
pub struct RefreshReport {
    /// Delta versions folded into the refit (compact exactly these).
    pub absorbed: Vec<u64>,
    /// Delta versions left in the log, with the reason each was skipped.
    pub skipped: Vec<(u64, String)>,
    /// Rows of the augmented training matrix (base courses + absorbed
    /// deltas).
    pub rows: usize,
    /// The warm-start solver's own account (iterations, loss, whether it
    /// fell back cold).
    pub warm: WarmReport,
}

/// Refit `base` on a training matrix augmented with the given deltas'
/// rows, seeding from the base factors. Returns the refreshed model —
/// same name, guideline, fingerprint, tag space, and backend as `base`,
/// with `W` gaining one row per absorbed delta — plus the report saying
/// which deltas it absorbed.
///
/// Stale rank/consensus diagnostics are dropped rather than carried
/// over: they described the original fit, not this one.
pub fn refresh_model(
    base: &FittedModel,
    deltas: &[(u64, FoldInDelta)],
    options: &RefreshOptions,
) -> Result<(FittedModel, RefreshReport), NnmfError> {
    let (m, k) = (base.w.rows(), base.k());
    let n = base.n_tags();
    let mut absorbed = Vec::new();
    let mut skipped = Vec::new();
    let mut usable: Vec<&FoldInDelta> = Vec::new();
    for (version, delta) in deltas {
        let reason = if delta.fingerprint != base.fingerprint {
            Some(format!(
                "fingerprint {:#x} does not match the base model's {:#x}",
                delta.fingerprint, base.fingerprint
            ))
        } else if delta.n_tags() != n {
            Some(format!(
                "tag row is {} wide, model has {n} tags",
                delta.n_tags()
            ))
        } else if delta.k() != k {
            Some(format!(
                "loadings are {} wide, model rank is {k}",
                delta.k()
            ))
        } else {
            None
        };
        match reason {
            Some(why) => skipped.push((*version, why)),
            None => {
                absorbed.push(*version);
                usable.push(delta);
            }
        }
    }

    // A' = [W·H ; delta tag rows].
    let d = usable.len();
    let recon = matmul(&base.w, &base.h);
    let mut aug = Matrix::zeros(m + d, n);
    for i in 0..m {
        aug.row_mut(i).copy_from_slice(recon.row(i));
    }
    for (off, delta) in usable.iter().enumerate() {
        aug.row_mut(m + off).copy_from_slice(&delta.tags);
    }
    // W₀ = [W ; delta loadings].
    let mut w0 = Matrix::zeros(m + d, k);
    for i in 0..m {
        w0.row_mut(i).copy_from_slice(base.w.row(i));
    }
    for (off, delta) in usable.iter().enumerate() {
        w0.row_mut(m + off).copy_from_slice(&delta.loadings);
    }

    let cfg = NnmfConfig {
        max_iter: options.max_iter,
        tol: options.tol,
        max_wall_ms: options.max_wall_ms,
        seed: base.winning_seed,
        ..NnmfConfig::paper_default(k)
    };
    let warm = WarmStart {
        h: &base.h,
        w: Some(&w0),
    };
    let fitted = try_nnmf_warm(&aug, &cfg, &warm)?;
    let mut model = fitted.model;
    model.normalize();

    let refreshed = FittedModel {
        name: base.name.clone(),
        guideline: base.guideline.clone(),
        fingerprint: base.fingerprint,
        backend: base.backend,
        tag_codes: base.tag_codes.clone(),
        w: model.w,
        h: model.h,
        loss: model.loss,
        iterations: model.iterations,
        converged: model.converged,
        winning_seed: model.winning_seed,
        recovery: model.recovery,
        rank: None,
        consensus: None,
    };
    let report = RefreshReport {
        absorbed,
        skipped,
        rows: m + d,
        warm: fitted.report,
    };
    Ok((refreshed, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;
    use anchors_factor::try_nnmf;
    use anchors_linalg::Backend;
    use anchors_materials::TagSpace;

    const N_TAGS: usize = 6;

    /// A base model actually fitted (not hand-written), so the warm
    /// refresh starts from a genuine fixed point.
    fn fitted_base() -> FittedModel {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(N_TAGS));
        let a = Matrix::from_fn(8, N_TAGS, |i, j| {
            if (i + 2 * j) % 3 == 0 {
                1.0
            } else if (i * j) % 5 == 1 {
                0.5
            } else {
                0.0
            }
        });
        let cfg = NnmfConfig {
            max_iter: 400,
            tol: 1e-8,
            ..NnmfConfig::paper_default(3)
        };
        let mut model = try_nnmf(&a, &cfg).expect("base fit");
        model.normalize();
        FittedModel::new("refresh-base", cs, &space, &model, Backend::Dense).expect("valid")
    }

    fn delta_for(
        base: &FittedModel,
        version: u64,
        tags: Vec<f64>,
        loadings: Vec<f64>,
    ) -> (u64, FoldInDelta) {
        (
            version,
            FoldInDelta {
                base_version: 1,
                name: format!("delta-{version}"),
                guideline: base.guideline.clone(),
                fingerprint: base.fingerprint,
                tags,
                loadings,
            },
        )
    }

    #[test]
    fn refresh_absorbs_matching_deltas_and_grows_w() {
        let base = fitted_base();
        let m = base.w.rows();
        // A new course that looks like course 0: its reconstruction row
        // and loadings are an exact extension of the fixed point.
        let recon = matmul(&base.w, &base.h);
        let d1 = delta_for(&base, 11, recon.row(0).to_vec(), base.w.row(0).to_vec());
        let d2 = delta_for(&base, 12, recon.row(3).to_vec(), base.w.row(3).to_vec());
        let (refreshed, report) =
            refresh_model(&base, &[d1, d2], &RefreshOptions::default()).expect("refresh");
        assert_eq!(report.absorbed, vec![11, 12]);
        assert!(report.skipped.is_empty());
        assert_eq!(report.rows, m + 2);
        assert_eq!(refreshed.w.rows(), m + 2, "W gained the delta rows");
        assert_eq!(refreshed.h.shape(), base.h.shape(), "basis shape kept");
        assert_eq!(refreshed.name, base.name);
        assert_eq!(refreshed.fingerprint, base.fingerprint);
        assert_eq!(refreshed.tag_codes, base.tag_codes);
        assert!(refreshed.loss.is_finite());
        assert!(refreshed.rank.is_none() && refreshed.consensus.is_none());
        // Extending a fixed point with its own rows is already converged:
        // the warm solve must be far under a cold fit's budget.
        assert!(
            report.warm.warm_iterations <= base.iterations,
            "warm {} vs base fit {}",
            report.warm.warm_iterations,
            base.iterations
        );
        assert!(report.warm.seeded_w, "stacked W₀ was usable as-is");
    }

    #[test]
    fn mismatched_deltas_are_skipped_with_reasons() {
        let base = fitted_base();
        let recon = matmul(&base.w, &base.h);
        let good = delta_for(&base, 21, recon.row(1).to_vec(), base.w.row(1).to_vec());
        let mut foreign = delta_for(&base, 22, recon.row(2).to_vec(), base.w.row(2).to_vec());
        foreign.1.fingerprint ^= 1;
        let narrow = delta_for(&base, 23, vec![1.0; N_TAGS - 1], base.w.row(0).to_vec());
        let short = delta_for(&base, 24, recon.row(0).to_vec(), vec![1.0; 2]);
        let (refreshed, report) = refresh_model(
            &base,
            &[good, foreign, narrow, short],
            &RefreshOptions::default(),
        )
        .expect("refresh");
        assert_eq!(report.absorbed, vec![21]);
        assert_eq!(refreshed.w.rows(), base.w.rows() + 1);
        let skipped: Vec<u64> = report.skipped.iter().map(|(v, _)| *v).collect();
        assert_eq!(skipped, vec![22, 23, 24]);
        assert!(report.skipped[0].1.contains("fingerprint"));
        assert!(report.skipped[1].1.contains("tag row"));
        assert!(report.skipped[2].1.contains("loadings"));
    }

    #[test]
    fn refresh_with_no_deltas_is_a_cheap_fixed_point_confirmation() {
        let base = fitted_base();
        let (refreshed, report) =
            refresh_model(&base, &[], &RefreshOptions::default()).expect("refresh");
        assert!(report.absorbed.is_empty());
        assert_eq!(refreshed.w.rows(), base.w.rows());
        assert!(!report.warm.fell_back_cold);
    }
}
