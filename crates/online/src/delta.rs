//! The durable fold-in delta artifact.
//!
//! A [`FoldInDelta`] is one course the serving layer learned *after* its
//! model was trained: the query's tag row over the model's tag space and
//! the `W` loadings the NNLS fold-in assigned it, stamped with the model
//! version the projection ran against. Persisting the pair makes fold-in
//! durable — after a restart the row can be replayed without re-solving,
//! and the next full refit can absorb it into the training matrix.
//!
//! The artifact registers through `anchors_serve`'s [`Artifact`] seam
//! under the `delta-v<N>` stem, so a `Registry<FoldInDelta>` gets the
//! same crash-safe claim/write/rename, startup quarantine, fallback, and
//! GC semantics as the factor- and text-model registries — and all three
//! kinds can share one directory without colliding.
//!
//! ## Binary layout (`ANCHDLT1`)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `ANCHDLT1` |
//! | 8      | 4    | schema version (u32 LE) |
//! | 12     | 4    | flags (u32 LE, must be 0) |
//! | 16     | 8    | base model version (u64 LE) |
//! | 24     | 8    | ontology fingerprint (u64 LE) |
//! | 32     | 8    | `n_tags` (u64 LE) |
//! | 40     | 8    | `k` (u64 LE) |
//! | 48     | 8    | string-table byte length (u64 LE) |
//! | 56     | var  | string table: name, guideline |
//! | —      | 0–7  | zero padding to 8-byte alignment |
//! | —      | var  | `tags` (`n_tags` f64), `loadings` (`k` f64) |
//! | end−8  | 8    | `fnv1a_64_words` checksum of everything before it |
//!
//! Decode verifies the trailing checksum *first*, then walks the layout
//! with bounds-checked reads, then checks shapes and finiteness — a torn
//! or tampered file becomes a typed [`ServeError::Corrupt`]/
//! [`ServeError::ChecksumMismatch`], never a panic or a silently wrong
//! row.

use anchors_serve::binary::{check_trailer, push_str, Reader};
use anchors_serve::codec::{fnv1a_64_words, frame, unframe, Artifact, ArtifactFormat};
use anchors_serve::json::{self, Json};
use anchors_serve::{CourseQuery, QueryEngine, ServeError};

/// Delta-artifact schema revision this build writes and reads.
pub const DELTA_SCHEMA_VERSION: u32 = 1;

/// Magic prefix of the binary delta layout.
pub const DELTA_MAGIC: &[u8; 8] = b"ANCHDLT1";

const HEADER_LEN: usize = 56;

fn corrupt(source: &str, detail: String) -> ServeError {
    ServeError::Corrupt {
        source: source.to_string(),
        detail,
    }
}

/// One folded-in course, persisted: the tag row it presented and the
/// loadings the frozen `H` of `base_version` assigned it.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldInDelta {
    /// The full model version whose `H` the fold-in solved against. The
    /// delta is only meaningful relative to that basis: replay and
    /// refresh must resolve this version (or fail with
    /// [`ServeError::DeltaBaseMissing`]), and retention GC pins it.
    pub base_version: u64,
    /// The folded-in course's display name.
    pub name: String,
    /// Guideline the tag row is expressed in.
    pub guideline: String,
    /// Ontology fingerprint at fold-in time — a delta from a different
    /// guideline revision is skipped at refresh, not silently mixed in.
    pub fingerprint: u64,
    /// The course's row over the base model's tag space (`n_tags` wide).
    pub tags: Vec<f64>,
    /// NNLS loadings onto the base `H` (`k` wide).
    pub loadings: Vec<f64>,
}

impl FoldInDelta {
    /// Build a delta by folding a query into an engine's frozen basis:
    /// vectorize, NNLS-project, stamp with the snapshot's version and the
    /// model's provenance.
    pub fn from_query(
        engine: &QueryEngine,
        query: &CourseQuery,
        base_version: u64,
    ) -> Result<Self, ServeError> {
        let tags = engine.vectorize(query)?;
        let loadings = engine.fold_in_row(&tags)?;
        let model = engine.model();
        Ok(FoldInDelta {
            base_version,
            name: query.name.clone(),
            guideline: model.guideline.clone(),
            fingerprint: model.fingerprint,
            tags,
            loadings,
        })
    }

    /// Width of the tag row.
    pub fn n_tags(&self) -> usize {
        self.tags.len()
    }

    /// Rank of the basis the loadings live in.
    pub fn k(&self) -> usize {
        self.loadings.len()
    }

    fn check_values(&self, source: &str) -> Result<(), ServeError> {
        if self.tags.is_empty() || self.loadings.is_empty() {
            return Err(corrupt(
                source,
                format!(
                    "delta has {} tags and {} loadings; both must be non-empty",
                    self.tags.len(),
                    self.loadings.len()
                ),
            ));
        }
        for (label, xs) in [("tags", &self.tags), ("loadings", &self.loadings)] {
            if let Some((i, v)) = xs.iter().enumerate().find(|(_, v)| !v.is_finite()) {
                return Err(corrupt(source, format!("non-finite {label}[{i}] = {v}")));
            }
        }
        Ok(())
    }
}

/// Serialize a delta to the JSON artifact document.
pub fn delta_to_json(delta: &FoldInDelta) -> String {
    let floats = |xs: &[f64]| Json::Arr(xs.iter().map(|&v| Json::Num(v)).collect());
    let members = vec![
        (
            "schema_version".into(),
            Json::Num(f64::from(DELTA_SCHEMA_VERSION)),
        ),
        ("kind".into(), Json::Str("delta".into())),
        (
            "base_version".into(),
            Json::Str(delta.base_version.to_string()),
        ),
        ("name".into(), Json::Str(delta.name.clone())),
        ("guideline".into(), Json::Str(delta.guideline.clone())),
        (
            "fingerprint".into(),
            Json::Str(delta.fingerprint.to_string()),
        ),
        ("tags".into(), floats(&delta.tags)),
        ("loadings".into(), floats(&delta.loadings)),
    ];
    Json::Obj(members).write()
}

/// Parse a delta JSON document. `source` labels errors (file path or
/// `"<memory>"`).
pub fn delta_from_json(text: &str, source: &str) -> Result<FoldInDelta, ServeError> {
    let corrupt = |detail: String| corrupt(source, detail);
    let doc = json::parse(text).map_err(|e| corrupt(e.to_string()))?;
    let field = |key: &str| {
        doc.get(key)
            .ok_or_else(|| corrupt(format!("missing {key:?}")))
    };
    let schema = field("schema_version")?
        .as_usize()
        .ok_or_else(|| corrupt("schema_version must be an integer".into()))?
        as u32;
    if schema != DELTA_SCHEMA_VERSION {
        return Err(ServeError::SchemaVersion {
            found: schema,
            supported: DELTA_SCHEMA_VERSION,
        });
    }
    match field("kind")?.as_str() {
        Some("delta") => {}
        other => return Err(corrupt(format!("artifact kind {other:?} is not \"delta\""))),
    }
    let string = |key: &str| -> Result<String, ServeError> {
        Ok(field(key)?
            .as_str()
            .ok_or_else(|| corrupt(format!("{key:?} must be a string")))?
            .to_string())
    };
    let u64_field = |key: &str| -> Result<u64, ServeError> {
        field(key)?
            .as_u64_str()
            .ok_or_else(|| corrupt(format!("{key:?} must be a u64 string")))
    };
    let floats = |key: &str| -> Result<Vec<f64>, ServeError> {
        field(key)?
            .as_arr()
            .ok_or_else(|| corrupt(format!("{key:?} must be an array")))?
            .iter()
            .map(|v| v.as_f64())
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| corrupt(format!("{key:?} has a non-numeric entry")))
    };
    let delta = FoldInDelta {
        base_version: u64_field("base_version")?,
        name: string("name")?,
        guideline: string("guideline")?,
        fingerprint: u64_field("fingerprint")?,
        tags: floats("tags")?,
        loadings: floats("loadings")?,
    };
    delta.check_values(source)?;
    Ok(delta)
}

fn push_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    for &v in xs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encode a delta to the checksum-framed binary layout.
pub fn delta_to_binary(delta: &FoldInDelta) -> Vec<u8> {
    let mut strings = Vec::new();
    push_str(&mut strings, &delta.name);
    push_str(&mut strings, &delta.guideline);

    let mut out = Vec::new();
    out.extend_from_slice(DELTA_MAGIC);
    out.extend_from_slice(&DELTA_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // flags
    out.extend_from_slice(&delta.base_version.to_le_bytes());
    out.extend_from_slice(&delta.fingerprint.to_le_bytes());
    out.extend_from_slice(&(delta.tags.len() as u64).to_le_bytes());
    out.extend_from_slice(&(delta.loadings.len() as u64).to_le_bytes());
    out.extend_from_slice(&(strings.len() as u64).to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&strings);
    let pad = (8 - out.len() % 8) % 8;
    out.extend(std::iter::repeat_n(0u8, pad));
    push_f64s(&mut out, &delta.tags);
    push_f64s(&mut out, &delta.loadings);
    let checksum = fnv1a_64_words(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode the binary delta layout. Checksum is verified before any field
/// is trusted.
pub fn delta_from_binary(bytes: &[u8], source: &str) -> Result<FoldInDelta, ServeError> {
    let payload = check_trailer(bytes, source)?;
    if payload.len() < HEADER_LEN {
        return Err(corrupt(
            source,
            format!("{} bytes is too short for a delta artifact", payload.len()),
        ));
    }
    let mut r = Reader {
        bytes: payload,
        pos: 0,
        source,
    };
    let magic = r.take(8, "magic")?;
    if magic != DELTA_MAGIC {
        return Err(corrupt(source, format!("bad magic {magic:02x?}")));
    }
    let schema = r.u32("schema version")?;
    if schema != DELTA_SCHEMA_VERSION {
        return Err(ServeError::SchemaVersion {
            found: schema,
            supported: DELTA_SCHEMA_VERSION,
        });
    }
    let flags = r.u32("flags")?;
    if flags != 0 {
        return Err(corrupt(source, format!("unknown flags {flags:#x}")));
    }
    let base_version = r.u64("base version")?;
    let fingerprint = r.u64("fingerprint")?;
    let n_tags = r.usize("n_tags")?;
    let k = r.usize("k")?;
    let strings_len = r.usize("string-table length")?;
    let strings_end = HEADER_LEN
        .checked_add(strings_len)
        .ok_or_else(|| corrupt(source, "string table overflows".into()))?;
    let name = r.string("name")?;
    let guideline = r.string("guideline")?;
    if r.pos != strings_end {
        return Err(corrupt(
            source,
            format!(
                "string table ends at {} but header declared {strings_end}",
                r.pos
            ),
        ));
    }
    let pad = (8 - r.pos % 8) % 8;
    let padding = r.take(pad, "padding")?;
    if padding.iter().any(|&b| b != 0) {
        return Err(corrupt(source, "non-zero padding".into()));
    }
    let tags = r.matrix(1, n_tags, "tags")?.as_slice().to_vec();
    let loadings = r.matrix(1, k, "loadings")?.as_slice().to_vec();
    if r.pos != payload.len() {
        return Err(corrupt(
            source,
            format!("{} trailing bytes after loadings", payload.len() - r.pos),
        ));
    }
    let delta = FoldInDelta {
        base_version,
        name,
        guideline,
        fingerprint,
        tags,
        loadings,
    };
    delta.check_values(source)?;
    Ok(delta)
}

impl Artifact for FoldInDelta {
    const STEM: &'static str = "delta";

    fn encode_as(&self, format: ArtifactFormat) -> Vec<u8> {
        match format {
            ArtifactFormat::Json => frame(&delta_to_json(self)).into_bytes(),
            ArtifactFormat::Bin => delta_to_binary(self),
        }
    }

    fn decode_as(format: ArtifactFormat, bytes: &[u8], source: &str) -> Result<Self, ServeError> {
        match format {
            ArtifactFormat::Json => {
                let text = std::str::from_utf8(bytes)
                    .map_err(|e| corrupt(source, format!("invalid UTF-8: {e}")))?;
                let body = unframe(text, source)?;
                delta_from_json(body, source)
            }
            ArtifactFormat::Bin => delta_from_binary(bytes, source),
        }
    }

    fn verify_as(format: ArtifactFormat, bytes: &[u8], source: &str) -> Result<(), ServeError> {
        Self::decode_as(format, bytes, source).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAILER_LEN: usize = 8;

    pub(crate) fn toy() -> FoldInDelta {
        FoldInDelta {
            base_version: 7,
            name: "CSC-349 Parallel Systems".into(),
            guideline: "CS2013".into(),
            fingerprint: 0x0123_4567_89AB_CDEF,
            tags: (0..12)
                .map(|i| if i % 3 == 0 { 1.0 } else { 0.0 })
                .collect(),
            loadings: vec![0.5, 0.0, 1.25],
        }
    }

    #[test]
    fn json_roundtrip_is_bitwise() {
        let a = toy();
        let text = delta_to_json(&a);
        let b = delta_from_json(&text, "<memory>").expect("parses");
        assert_eq!(a, b);
        assert_eq!(delta_to_json(&b), text, "save→load→save byte-identical");
    }

    #[test]
    fn binary_roundtrip_is_bitwise() {
        let a = toy();
        let bytes = delta_to_binary(&a);
        let b = delta_from_binary(&bytes, "<memory>").expect("decodes");
        assert_eq!(a, b);
        assert_eq!(delta_to_binary(&b), bytes, "re-encode byte-identical");
    }

    #[test]
    fn both_formats_roundtrip_through_artifact_seam() {
        let a = toy();
        for format in [ArtifactFormat::Json, ArtifactFormat::Bin] {
            let bytes = a.encode_as(format);
            FoldInDelta::verify_as(format, &bytes, "<memory>").expect("verifies");
            let b = FoldInDelta::decode_as(format, &bytes, "<memory>").expect("decodes");
            assert_eq!(a, b, "{format:?} round-trip");
        }
    }

    #[test]
    fn truncation_and_tampering_yield_typed_errors() {
        let bytes = toy().encode_as(ArtifactFormat::Bin);
        for cut in [0, 7, HEADER_LEN - 1, bytes.len() / 2, bytes.len() - 1] {
            let err = FoldInDelta::decode_as(ArtifactFormat::Bin, &bytes[..cut], "d.bin")
                .expect_err("truncated rejected");
            assert!(
                err.is_corruption(),
                "cut at {cut} gave non-corruption error {err}"
            );
        }
        // Flip a payload byte: the checksum catches it before any parse.
        let mut flipped = bytes.clone();
        flipped[HEADER_LEN + 3] ^= 0x40;
        assert!(matches!(
            FoldInDelta::decode_as(ArtifactFormat::Bin, &flipped, "d.bin"),
            Err(ServeError::ChecksumMismatch { .. })
        ));
        // JSON side: truncation breaks the frame.
        let json_bytes = toy().encode_as(ArtifactFormat::Json);
        let err = FoldInDelta::decode_as(
            ArtifactFormat::Json,
            &json_bytes[..json_bytes.len() / 2],
            "d.json",
        )
        .expect_err("truncated rejected");
        assert!(err.is_corruption());
    }

    #[test]
    fn header_payload_disagreement_is_rejected() {
        let a = toy();
        let mut bytes = delta_to_binary(&a);
        // Claim one more tag than the payload holds; re-frame so the
        // checksum passes and the structural check must catch it.
        let n_tags_off = 32;
        bytes.truncate(bytes.len() - TRAILER_LEN);
        bytes[n_tags_off..n_tags_off + 8].copy_from_slice(&(a.tags.len() as u64 + 1).to_le_bytes());
        let checksum = fnv1a_64_words(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = delta_from_binary(&bytes, "d.bin").expect_err("mismatch rejected");
        assert!(err.is_corruption(), "got {err}");
    }

    #[test]
    fn future_schema_is_a_schema_error_not_corruption() {
        let text = delta_to_json(&toy()).replace("\"schema_version\":1", "\"schema_version\":9");
        assert!(matches!(
            delta_from_json(&text, "d.json"),
            Err(ServeError::SchemaVersion { found: 9, .. })
        ));
    }

    #[test]
    fn non_finite_rows_are_rejected_on_decode() {
        // The encoder refuses to write NaN, so smuggle one in at the
        // byte level and re-frame: the checksum passes, the value check
        // must catch it.
        let mut bytes = delta_to_binary(&toy());
        bytes.truncate(bytes.len() - TRAILER_LEN);
        let last_loading = bytes.len() - 8;
        bytes[last_loading..].copy_from_slice(&f64::NAN.to_le_bytes());
        let checksum = fnv1a_64_words(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = delta_from_binary(&bytes, "d.bin").expect_err("NaN rejected");
        assert!(err.is_corruption(), "got {err}");
    }
}
