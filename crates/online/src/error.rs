//! The one error type an online-learning driver (the server's refresh
//! loop, a batch pipeline) has to handle.

use anchors_factor::NnmfError;
use anchors_serve::ServeError;
use std::fmt;

/// A failure anywhere in the fold-in → log → refresh chain.
#[derive(Debug)]
pub enum OnlineError {
    /// The durability layer failed (registry I/O, corrupt delta, missing
    /// base version).
    Serve(ServeError),
    /// The warm refit failed (malformed seed, divergence past the cold
    /// fallback ladder).
    Factor(NnmfError),
}

impl OnlineError {
    /// Whether retrying later could plausibly succeed (maps transient
    /// registry I/O; solver failures are deterministic and are not
    /// transient).
    pub fn is_transient(&self) -> bool {
        match self {
            OnlineError::Serve(e) => e.is_transient(),
            OnlineError::Factor(_) => false,
        }
    }
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Serve(e) => write!(f, "online durability: {e}"),
            OnlineError::Factor(e) => write!(f, "online refit: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnlineError::Serve(e) => Some(e),
            OnlineError::Factor(e) => Some(e),
        }
    }
}

impl From<ServeError> for OnlineError {
    fn from(e: ServeError) -> Self {
        OnlineError::Serve(e)
    }
}

impl From<NnmfError> for OnlineError {
    fn from(e: NnmfError) -> Self {
        OnlineError::Factor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_follows_the_serve_layer() {
        let io = OnlineError::from(ServeError::Io {
            path: "x".into(),
            detail: "flaky".into(),
            transient: true,
        });
        assert!(io.is_transient());
        let solver = OnlineError::from(NnmfError::ZeroRank);
        assert!(!solver.is_transient());
        assert!(solver.to_string().contains("refit"));
    }
}
