//! Property-based tests of the delta artifact: persistence is bitwise
//! in both formats, and damaged bytes are always refused with a typed
//! corruption error — never a panic, never a partial parse.

use anchors_online::{
    delta_from_binary, delta_from_json, delta_to_binary, delta_to_json, DeltaLog, FoldInDelta,
};
use anchors_serve::{Artifact, ArtifactFormat};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> std::path::PathBuf {
    let case = CASE.fetch_add(1, Relaxed);
    let dir =
        std::env::temp_dir().join(format!("anchors-online-prop-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Strategy: a structurally valid delta with arbitrary finite values —
/// including awkward magnitudes (subnormals, huge exponents) whose
/// decimal round-trips must still be bitwise — and arbitrary UTF-8
/// names that must survive both string tables.
fn arbitrary_delta() -> impl Strategy<Value = FoldInDelta> {
    (1usize..12, 1usize..6).prop_flat_map(|(n_tags, k)| {
        let entry = prop_oneof![
            4 => 0.0f64..5.0,
            1 => prop_oneof![
                Just(0.0),
                Just(-0.0),
                Just(1e-300),
                Just(2.2250738585072014e-308),
                Just(0.1),
                Just(1e15),
            ],
        ];
        (
            any::<u64>(),
            "\\PC{0,24}",
            "[A-Z]{2,8}[0-9]{0,4}",
            any::<u64>(),
            prop::collection::vec(entry.clone(), n_tags),
            prop::collection::vec(entry, k),
        )
            .prop_map(
                |(base_version, name, guideline, fingerprint, tags, loadings)| FoldInDelta {
                    base_version,
                    name,
                    guideline,
                    fingerprint,
                    tags,
                    loadings,
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn json_and_binary_roundtrip_bitwise(delta in arbitrary_delta()) {
        // The two codecs are interchangeable: both reproduce the delta
        // field-for-field (f64s bitwise), and encode → decode → encode
        // is byte identity in each format.
        let text = delta_to_json(&delta);
        let via_json = delta_from_json(&text, "<json>").expect("json decodes");
        prop_assert_eq!(&via_json, &delta);
        prop_assert_eq!(delta_to_json(&via_json), text, "json save→load→save identity");

        let bytes = delta_to_binary(&delta);
        let via_bin = delta_from_binary(&bytes, "<bin>").expect("binary decodes");
        prop_assert_eq!(&via_bin, &delta);
        prop_assert_eq!(delta_to_binary(&via_bin), bytes, "binary save→load→save identity");
    }

    #[test]
    fn artifact_seam_matches_the_free_functions(delta in arbitrary_delta()) {
        // The Artifact impl the registry drives is byte-identical to the
        // raw codec functions — no second serialization path to drift.
        prop_assert_eq!(
            delta.encode_as(ArtifactFormat::Json),
            delta_to_json(&delta).into_bytes()
        );
        prop_assert_eq!(delta.encode_as(ArtifactFormat::Bin), delta_to_binary(&delta));
        for format in [ArtifactFormat::Json, ArtifactFormat::Bin] {
            let bytes = delta.encode_as(format);
            let back = FoldInDelta::decode_as(format, &bytes, "<seam>").expect("decodes");
            prop_assert_eq!(&back, &delta, "field-for-field via {:?}", format);
        }
    }

    #[test]
    fn truncations_are_typed_never_a_panic(
        delta in arbitrary_delta(),
        frac in 0.0f64..1.0,
    ) {
        // Any strict prefix of either encoding fails closed as typed
        // corruption — never a panic, never a smaller-but-plausible
        // delta.
        for format in [ArtifactFormat::Json, ArtifactFormat::Bin] {
            let bytes = delta.encode_as(format);
            let cut = (((bytes.len() as f64) * frac) as usize).min(bytes.len() - 1);
            match FoldInDelta::decode_as(format, &bytes[..cut], "<trunc>") {
                Err(e) => prop_assert!(e.is_corruption(), "{:?} cut {}: {:?}", format, cut, e),
                Ok(_) => prop_assert!(false, "{:?} truncation at {} decoded", format, cut),
            }
        }
    }

    #[test]
    fn bitflips_never_parse_silently(
        delta in arbitrary_delta(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        // Flipping any single bit of the binary encoding is caught by
        // the words checksum (or, for flips inside the trailer itself,
        // by the trailer no longer matching the payload).
        let bytes = delta_to_binary(&delta);
        let mut torn = bytes.clone();
        let at = pos.index(torn.len());
        torn[at] ^= 1 << bit;
        match delta_from_binary(&torn, "<flip>") {
            Err(e) => prop_assert!(e.is_corruption(), "byte {} bit {}: {:?}", at, bit, e),
            Ok(_) => prop_assert!(false, "bit flip at byte {} bit {} parsed", at, bit),
        }
    }

    #[test]
    fn log_replays_every_append_in_both_formats(
        deltas in prop::collection::vec(arbitrary_delta(), 1..6),
        bin in prop::bool::ANY,
    ) {
        // Appends round-trip through the registry on disk and replay in
        // order, bitwise, whichever format the log writes.
        let dir = fresh_dir();
        let format = if bin { ArtifactFormat::Bin } else { ArtifactFormat::Json };
        let log = DeltaLog::open(&dir).expect("open").with_format(format);
        let mut versions = Vec::new();
        for delta in &deltas {
            versions.push(log.append(delta).expect("append"));
        }
        let live = log.live().expect("live");
        prop_assert_eq!(live.len(), deltas.len());
        for (i, (version, replayed)) in live.iter().enumerate() {
            prop_assert_eq!(*version, versions[i], "append order preserved");
            prop_assert_eq!(replayed, &deltas[i], "bitwise replay via {:?}", format);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
