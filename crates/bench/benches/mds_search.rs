//! Benchmarks of the CS Materials services: search, similarity graphs, MDS
//! embeddings (classical vs SMACOF), and the bicluster matrix view.

use anchors_corpus::default_corpus;
use anchors_curricula::cs2013;
use anchors_factor::{classical_mds, smacof, spectral_cocluster};
use anchors_materials::{search, MaterialMatrix, Query, SimilarityGraph};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_search(c: &mut Criterion) {
    let corpus = default_corpus();
    let g = cs2013();
    let gt = g.by_code("DS.GT").unwrap();
    let tags = g.leaves_under(gt);
    let mut group = c.benchmark_group("search");
    group.bench_function("tag_query_all_materials", |b| {
        b.iter(|| search(&corpus.store, g, &Query::tags(tags.iter().copied())))
    });
    group.bench_function("faceted_query", |b| {
        b.iter(|| {
            search(
                &corpus.store,
                g,
                &Query::tags(tags.iter().copied())
                    .in_language("Java")
                    .limit(10),
            )
        })
    });
    group.finish();
}

fn bench_mds(c: &mut Criterion) {
    let corpus = default_corpus();
    let g = cs2013();
    let tags = g.leaves_under(g.by_code("AL.FDSA").unwrap());
    let hits = search(
        &corpus.store,
        g,
        &Query::tags(tags.iter().copied()).limit(25),
    );
    let ids: Vec<_> = hits.iter().map(|h| h.material).collect();
    let graph = SimilarityGraph::build(&corpus.store, &tags, &ids);
    let d = graph.distance_matrix();
    let mut group = c.benchmark_group("mds");
    group.bench_function("similarity_graph_build", |b| {
        b.iter(|| SimilarityGraph::build(&corpus.store, &tags, &ids))
    });
    group.bench_function("classical_26", |b| b.iter(|| classical_mds(&d, 2)));
    group.bench_function("smacof_26", |b| b.iter(|| smacof(&d, 2, 100, 1e-8, 1)));
    group.finish();
}

fn bench_bicluster(c: &mut Criterion) {
    let corpus = default_corpus();
    let courses = corpus.ds_group();
    let mm = MaterialMatrix::build(&corpus.store, &courses);
    let mut group = c.benchmark_group("matrix_view");
    group.bench_function(
        format!("spectral_cocluster_{}x{}", mm.m.rows(), mm.m.cols()),
        |b| b.iter(|| spectral_cocluster(&mm.m, 5, 42)),
    );
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_search, bench_mds, bench_bicluster
}
criterion_main!(benches);
