//! Scaling ablations beyond the paper's corpus size:
//!
//! * dense vs CSR-sparse NNMF as the corpus grows (the course matrices are
//!   ~10% dense, so the sparse data products win with scale);
//! * rayon parallel matmul across matrix sizes (strong-scaling ablation of
//!   the `anchors-linalg` kernels);
//! * corpus generation throughput.

use anchors_corpus::generate_scaled;
use anchors_factor::{nnmf, NnmfConfig};
use anchors_linalg::{CsrMatrix, Matrix};
use anchors_materials::CourseMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn corpus_matrix(n_courses: usize) -> Matrix {
    let corpus = generate_scaled(n_courses, 7);
    CourseMatrix::build(&corpus.store, corpus.all()).a
}

fn bench_dense_vs_sparse_nnmf(c: &mut Criterion) {
    let mut group = c.benchmark_group("nnmf_scaling");
    for &n in &[20usize, 80, 200] {
        let a = corpus_matrix(n);
        let s = CsrMatrix::from_dense(&a);
        let cfg = NnmfConfig {
            restarts: 1,
            max_iter: 50,
            ..NnmfConfig::paper_default(4)
        };
        group.bench_with_input(
            BenchmarkId::new("dense", format!("{n}c_{}t", a.cols())),
            &n,
            |b, _| b.iter(|| nnmf(&a, &cfg)),
        );
        group.bench_with_input(
            BenchmarkId::new("sparse", format!("{n}c_{}t_d{:.2}", a.cols(), s.density())),
            &n,
            |b, _| b.iter(|| nnmf(&s, &cfg)),
        );
    }
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generation");
    for &n in &[20usize, 100, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| generate_scaled(n, 11))
        });
    }
    group.finish();
}

fn bench_sparse_products(c: &mut Criterion) {
    let a = corpus_matrix(200);
    let s = CsrMatrix::from_dense(&a);
    let h = Matrix::from_fn(4, a.cols(), |i, j| ((i + j) % 7) as f64 * 0.1);
    let w = Matrix::from_fn(a.rows(), 4, |i, j| ((i * 3 + j) % 5) as f64 * 0.1);
    let mut group = c.benchmark_group("data_products");
    group.bench_function("dense_a_ht", |b| {
        b.iter(|| anchors_linalg::matmul_a_bt(&a, &h))
    });
    group.bench_function("sparse_a_ht", |b| b.iter(|| s.matmul_dense_bt(&h)));
    group.bench_function("dense_at_w", |b| {
        b.iter(|| anchors_linalg::matmul_at_b(&a, &w))
    });
    group.bench_function("sparse_at_w", |b| b.iter(|| s.matmul_at_dense(&w)));
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dense_vs_sparse_nnmf, bench_corpus_generation, bench_sparse_products
}
criterion_main!(benches);
