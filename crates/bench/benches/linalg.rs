//! Kernel benchmarks: the dense linear algebra under every figure.
//!
//! Includes the sequential-vs-parallel matmul ablation (the rayon
//! data-parallel kernels of `anchors-linalg`).

use anchors_linalg::{
    gram, matmul, matmul_seq, pairwise_distances, sym_eigen, thin_svd, Matrix, Metric,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn mk(n: usize, m: usize, seed: u64) -> Matrix {
    // Cheap deterministic pseudo-random fill (no RNG dependency needed).
    Matrix::from_fn(n, m, |i, j| {
        let x = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(j as u64)
            .wrapping_add(seed);
        ((x >> 33) % 1000) as f64 / 1000.0
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 96, 192] {
        let a = mk(n, n, 1);
        let b = mk(n, n, 2);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |bch, _| {
            bch.iter(|| matmul_seq(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, _| {
            bch.iter(|| matmul(&a, &b))
        });
    }
    group.finish();
}

fn bench_gram_and_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    // The corpus-shaped matrix: 20 courses x ~500 tags.
    let a = mk(20, 500, 3);
    group.bench_function("gram_20x500", |b| b.iter(|| gram(&a)));
    group.bench_function("thin_svd_20x500", |b| b.iter(|| thin_svd(&a)));
    let sym = {
        let m = mk(40, 40, 4);
        anchors_linalg::ops::add(&m, &m.transpose())
    };
    group.bench_function("jacobi_eigen_40", |b| b.iter(|| sym_eigen(&sym)));
    group.bench_function("pairwise_jaccard_20x500", |b| {
        b.iter(|| pairwise_distances(&a, Metric::Jaccard))
    });
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    // Strong scaling of the parallel matmul kernel: same 256x256 problem
    // under rayon pools of 1, 2, 4, and 8 threads. The kernel is bitwise
    // deterministic regardless of pool size.
    let n = 256;
    let a = mk(n, n, 11);
    let b = mk(n, n, 12);
    let reference = matmul_seq(&a, &b);
    let mut group = c.benchmark_group("thread_scaling_matmul_256");
    for &threads in &[1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| pool.install(|| matmul(&a, &b)))
        });
        // Determinism across pool sizes.
        let out = pool.install(|| matmul(&a, &b));
        assert_eq!(out, reference);
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_matmul, bench_gram_and_factorizations, bench_thread_scaling
}
criterion_main!(benches);
