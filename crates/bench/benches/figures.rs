//! One benchmark per paper artifact: the end-to-end computation behind each
//! figure (see DESIGN.md §4 for the experiment index). These measure the
//! full regeneration path — corpus analysis through model fitting — not the
//! rendering.

use anchors_core::{discover_flavors, recommend_for_course, AgreementAnalysis};
use anchors_corpus::{default_corpus, generate, GeneratedCorpus};
use anchors_curricula::{cs2013, pdc12};
use anchors_viz::radial_layout;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let corpus = default_corpus();
    let g = cs2013();
    let mut group = c.benchmark_group("figures");

    group.bench_function("fig1_roster_generation", |b| {
        b.iter(|| generate(anchors_corpus::DEFAULT_SEED))
    });
    group.bench_function("fig2_all_courses_nnmf_k4", |b| {
        b.iter(|| discover_flavors(&corpus.store, g, corpus.all(), 4))
    });
    group.bench_function("fig3a_cs1_agreement", |b| {
        b.iter(|| AgreementAnalysis::run(&corpus.store, g, "CS1", &corpus.cs1_group()))
    });
    group.bench_function("fig3b_ds_agreement", |b| {
        b.iter(|| AgreementAnalysis::run(&corpus.store, g, "DS", &corpus.ds_group()))
    });
    let cs1_agree = AgreementAnalysis::run(&corpus.store, g, "CS1", &corpus.cs1_group());
    group.bench_function("fig4_cs1_radial_layouts", |b| {
        b.iter(|| {
            (2..=4)
                .map(|m| radial_layout(g, &cs1_agree.tree(m).nodes))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("fig5_cs1_nnmf_k3", |b| {
        b.iter(|| discover_flavors(&corpus.store, g, &corpus.cs1_group(), 3))
    });
    let ds_agree = AgreementAnalysis::run(&corpus.store, g, "DS", &corpus.ds_group());
    group.bench_function("fig6_ds_radial_layouts", |b| {
        b.iter(|| {
            (2..=4)
                .map(|m| radial_layout(g, &ds_agree.tree(m).nodes))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("fig7_ds_algo_nnmf_k3", |b| {
        b.iter(|| discover_flavors(&corpus.store, g, &corpus.ds_and_algo_group(), 3))
    });
    group.bench_function("fig8_pdc_agreement", |b| {
        b.iter(|| AgreementAnalysis::run(&corpus.store, g, "PDC", &corpus.pdc_group()))
    });
    group.finish();
}

fn bench_recommender(c: &mut Criterion) {
    let corpus: GeneratedCorpus = default_corpus();
    let cs = cs2013();
    let pdc = pdc12();
    let mut group = c.benchmark_group("anchors");
    group.bench_function("recommend_all_20_courses", |b| {
        b.iter(|| {
            corpus
                .all()
                .iter()
                .map(|&cid| recommend_for_course(&corpus.store, cs, pdc, cid))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_figures, bench_recommender
}
criterion_main!(benches);
