//! Benchmarks of the §5.2 task-graph substrate: topological sort, critical
//! path, and the list-scheduling simulator across priority policies and
//! scales.

use anchors_sched::{layered_dag, list_schedule, random_dag, Priority};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_graph_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("taskgraph");
    for &n in &[100usize, 1000, 5000] {
        let g = random_dag(n, (8.0 / n as f64).min(0.3), 1.0..=5.0, 7);
        group.bench_with_input(BenchmarkId::new("topological_sort", n), &n, |b, _| {
            b.iter(|| g.topological_sort().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("critical_path", n), &n, |b, _| {
            b.iter(|| g.critical_path().unwrap())
        });
    }
    group.finish();
}

fn bench_list_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_schedule");
    let g = layered_dag(20, 50, 0.1, 1.0..=8.0, 3); // 1000 tasks
    for policy in [
        Priority::CriticalPath,
        Priority::Fifo,
        Priority::LongestFirst,
        Priority::ShortestFirst,
    ] {
        group.bench_with_input(
            BenchmarkId::new("policy", format!("{policy:?}")),
            &policy,
            |b, &p| b.iter(|| list_schedule(&g, 8, p)),
        );
    }
    for &m in &[1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("processors", m), &m, |b, &m| {
            b.iter(|| list_schedule(&g, m, Priority::CriticalPath))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_graph_analytics, bench_list_scheduling
}
criterion_main!(benches);
