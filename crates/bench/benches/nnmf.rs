//! NNMF benchmarks and ablations: solver (HALS vs multiplicative updates),
//! initialization (random multi-restart vs NNDSVD), and the k sweep behind
//! the §4.4 rank scan.

use anchors_corpus::default_corpus;
use anchors_factor::{nnmf, try_rank_scan, Init, NnmfConfig, Solver};
use anchors_materials::CourseMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn corpus_matrix() -> anchors_linalg::Matrix {
    let corpus = default_corpus();
    CourseMatrix::build(&corpus.store, corpus.all()).a
}

fn bench_solvers(c: &mut Criterion) {
    let a = corpus_matrix();
    let mut group = c.benchmark_group("nnmf_solver");
    for (name, cfg) in [
        (
            "hals_k4",
            NnmfConfig {
                restarts: 1,
                ..NnmfConfig::paper_default(4)
            },
        ),
        (
            "mu_k4",
            NnmfConfig {
                restarts: 1,
                solver: Solver::MultiplicativeUpdate,
                ..NnmfConfig::paper_default(4)
            },
        ),
        (
            "anls_k4",
            NnmfConfig {
                restarts: 1,
                max_iter: 10,
                solver: Solver::Anls,
                ..NnmfConfig::paper_default(4)
            },
        ),
    ] {
        group.bench_function(name, |b| b.iter(|| nnmf(&a, &cfg)));
    }
    group.finish();
}

fn bench_init(c: &mut Criterion) {
    let a = corpus_matrix();
    let mut group = c.benchmark_group("nnmf_init");
    for (name, init, restarts) in [
        ("random_x8", Init::Random, 8usize),
        ("random_x1", Init::Random, 1),
        ("nndsvda", Init::NndsvdA, 1),
    ] {
        let cfg = NnmfConfig {
            init,
            restarts,
            ..NnmfConfig::paper_default(4)
        };
        group.bench_function(name, |b| b.iter(|| nnmf(&a, &cfg)));
    }
    group.finish();
}

fn bench_rank_scan(c: &mut Criterion) {
    let a = corpus_matrix();
    let base = NnmfConfig {
        restarts: 2,
        ..NnmfConfig::paper_default(2)
    };
    let mut group = c.benchmark_group("nnmf_rank");
    group.bench_function("scan_k2_to_k4", |b| {
        b.iter(|| try_rank_scan(&a, 2..=4, &base).unwrap())
    });
    for k in [2usize, 4, 6] {
        let cfg = NnmfConfig {
            k,
            restarts: 1,
            ..NnmfConfig::paper_default(k)
        };
        group.bench_with_input(BenchmarkId::new("single_k", k), &k, |b, _| {
            b.iter(|| nnmf(&a, &cfg))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_solvers, bench_init, bench_rank_scan
}
criterion_main!(benches);
