//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary regenerates one paper artifact (see DESIGN.md §4) into
//! `target/figures/` and prints a textual rendition plus the
//! paper-vs-measured comparison to stdout. The corpus seed can be
//! overridden with the `ANCHORS_SEED` environment variable.

use std::path::{Path, PathBuf};

/// Resolve the output directory (`<workspace>/target/figures`), creating it
/// if needed.
pub fn figures_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; workspace root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let dir = root.join("target").join("figures");
    std::fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

/// Write one artifact file and report its path on stdout.
pub fn write_artifact(name: &str, content: &str) {
    let path = figures_dir().join(name);
    std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}

/// The corpus seed: `ANCHORS_SEED` env var or the default.
pub fn seed() -> u64 {
    std::env::var("ANCHORS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(anchors_corpus::DEFAULT_SEED)
}

/// Print a `paper vs measured` comparison row.
pub fn compare(label: &str, paper: &str, measured: impl std::fmt::Display) {
    println!("  {label:<58} paper: {paper:<12} measured: {measured}");
}

/// Section header for binary output.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Render one agreement tree as a radial SVG (root in red, per the paper)
/// plus a textual span summary. Shared by the Figure 4/6/8 binaries.
pub fn agreement_tree_figure(
    ontology: &anchors_curricula::Ontology,
    analysis: &anchors_core::AgreementAnalysis,
    threshold: usize,
    title: &str,
) -> (String, String) {
    use anchors_curricula::Level;
    let tree = analysis.tree(threshold);
    let layout = anchors_viz::radial_layout(ontology, &tree.nodes);
    let agreed: std::collections::BTreeMap<_, _> = tree.agreed_leaves.iter().copied().collect();
    let svg = anchors_viz::render_radial(
        ontology,
        &layout,
        |n| {
            let node = ontology.node(n);
            let (radius, fill) = match node.level {
                Level::Root => (7.0, "#d62728".to_string()),
                Level::KnowledgeArea => (5.0, "#4e79a7".to_string()),
                Level::KnowledgeUnit => (4.0, "#76b7b2".to_string()),
                _ => {
                    let c = agreed.get(&n).copied().unwrap_or(1) as f64;
                    (2.0 + c, "#59a14f".to_string())
                }
            };
            anchors_viz::NodeStyle {
                radius,
                fill,
                label: (node.level == Level::KnowledgeArea).then(|| node.code.clone()),
            }
        },
        title,
    );
    let mut summary = format!(
        "{title}: {} agreed items spanning KAs [{}]\n",
        tree.len(),
        analysis.spanned_kas(ontology, threshold).join(", ")
    );
    for (ku, n) in tree.knowledge_units(ontology) {
        summary.push_str(&format!(
            "    {:<12} {:<46} {n} items\n",
            ontology.node(ku).code,
            ontology.node(ku).label
        ));
    }
    // Console tree rendering (agreement counts annotated on leaves).
    let counts: std::collections::BTreeMap<_, _> = tree.agreed_leaves.iter().copied().collect();
    summary.push_str(&anchors_viz::text_tree(ontology, &tree.nodes, |n| {
        counts.get(&n).map(|c| format!("{c} courses"))
    }));
    (svg, summary)
}

/// Render `W` and `H` for a flavor model into text + SVG artifacts.
pub fn render_model(
    fm: &anchors_core::FlavorModel,
    store: &anchors_materials::MaterialStore,
    stem: &str,
) {
    let g = anchors_curricula::cs2013();
    let row_labels: Vec<String> = fm
        .matrix
        .courses
        .iter()
        .map(|&c| store.course(c).name.clone())
        .collect();
    let w_opts = anchors_viz::HeatmapOptions {
        row_labels,
        col_labels: (0..fm.k()).map(|t| format!("type {}", t + 1)).collect(),
        normalize_columns: true,
        title: format!("{stem}: W matrix"),
        ..anchors_viz::HeatmapOptions::default()
    };
    let text = anchors_viz::text_heatmap(&fm.model.w, &w_opts);
    print!("{text}");
    write_artifact(&format!("{stem}_w.txt"), &text);
    write_artifact(
        &format!("{stem}_w.svg"),
        &anchors_viz::svg_heatmap(&fm.model.w, &w_opts),
    );

    // H aggregated per knowledge area (the paper's H heat maps group the
    // tag axis by KA labels).
    let kas: Vec<String> = {
        let mut set: Vec<String> = fm
            .types
            .iter()
            .flat_map(|t| t.ka_weights.iter().map(|(k, _)| k.clone()))
            .collect();
        set.sort();
        set.dedup();
        set
    };
    let mut h_ka = anchors_linalg::Matrix::zeros(fm.k(), kas.len());
    for t in &fm.types {
        for (ka, w) in &t.ka_weights {
            let j = kas.iter().position(|k| k == ka).unwrap();
            h_ka.set(t.index, j, *w);
        }
    }
    let h_opts = anchors_viz::HeatmapOptions {
        row_labels: (0..fm.k()).map(|t| format!("type {}", t + 1)).collect(),
        col_labels: kas.clone(),
        normalize_columns: false,
        title: format!("{stem}: H matrix aggregated by knowledge area"),
        ..anchors_viz::HeatmapOptions::default()
    };
    let text = anchors_viz::text_heatmap(&h_ka, &h_opts);
    print!("{text}");
    write_artifact(&format!("{stem}_h_by_ka.txt"), &text);
    write_artifact(
        &format!("{stem}_h_by_ka.svg"),
        &anchors_viz::svg_heatmap(&h_ka, &h_opts),
    );

    let _ = g;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_dir_exists_after_call() {
        let d = figures_dir();
        assert!(d.ends_with("target/figures"));
        assert!(d.is_dir());
    }

    #[test]
    fn seed_default() {
        // Cannot safely set env vars in parallel tests; just check default.
        if std::env::var("ANCHORS_SEED").is_err() {
            assert_eq!(seed(), anchors_corpus::DEFAULT_SEED);
        }
    }
}
