//! Text front-door smoke benchmark: classification accuracy and latency.
//!
//! Trains the `anchors-text` classifier on the seeded synthetic corpus
//! from `anchors-corpus`, then measures four things:
//!
//! 1. **training-corpus micro-F1** — the accuracy gate: must be ≥ 0.9
//!    or the binary exits non-zero (CI fails);
//! 2. **held-out micro-F1** — fresh document seeds the trainer never
//!    saw, reported for the README table (gated at a lower floor);
//! 3. **in-process classify latency** — `TextModel::classify` p50/p99
//!    over the held-out documents;
//! 4. **end-to-end HTTP latency** — `POST /v1/classify_text` p50/p99
//!    against a loopback `anchors-server` with both a factor model and
//!    the text model loaded, i.e. the full raw-text → tags → fold-in →
//!    anchors pipeline per request.
//!
//! Emits `BENCH_text.json` at the workspace root (and a copy under
//! `target/figures/`) for CI to archive. Knobs: `ANCHORS_TEXT_TAGS`
//! (tag-space size), `ANCHORS_TEXT_DOCS` (docs per tag),
//! `ANCHORS_TEXT_REQUESTS` (HTTP requests).

use anchors_bench::{figures_dir, header};
use anchors_corpus::text::{document_for_tags, generate_text_corpus, TextCorpusConfig};
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{nnmf, NnmfConfig, Solver};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_serve::{FittedModel, Registry};
use anchors_server::{AppState, Client, Server, ServerConfig, TextDoor};
use anchors_text::{micro_f1, train, TextExample, TextModel, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The accuracy gate: training-corpus micro-F1 below this fails CI.
const TRAIN_F1_GATE: f64 = 0.9;
/// Held-out floor — generalization, with margin for unlucky seeds.
const HELD_OUT_F1_GATE: f64 = 0.6;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Percentile (µs) of a sorted latency vector.
fn percentile_us(sorted: &[u128], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx] as f64
}

/// Fresh documents (seeds disjoint from the training corpus) carrying
/// the same label distribution: one per (tag, repeat) pair.
fn held_out(model: &TextModel, per_tag: usize) -> Vec<TextExample> {
    let mut out = Vec::with_capacity(model.tag_codes.len() * per_tag);
    for (t, code) in model.tag_codes.iter().enumerate() {
        for d in 0..per_tag {
            let seed =
                0x7E1D_0u64 ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul((t * per_tag + d) as u64 + 1);
            out.push(TextExample {
                text: document_for_tags(std::slice::from_ref(code), 60, 0.35, seed),
                tag_codes: vec![code.clone()],
            });
        }
    }
    out
}

fn main() {
    let n_tags = env_usize("ANCHORS_TEXT_TAGS", 16);
    let docs_per_tag = env_usize("ANCHORS_TEXT_DOCS", 12);
    let requests = env_usize("ANCHORS_TEXT_REQUESTS", 200);

    header("text front door: accuracy gate and classify latency");

    // Train on the seeded synthetic corpus, exactly as the quickstart does.
    let cs = cs2013();
    let corpus = generate_text_corpus(&TextCorpusConfig {
        tags: n_tags,
        docs_per_tag,
        ..TextCorpusConfig::default()
    });
    let t0 = Instant::now();
    let model = train(
        "text-smoke",
        cs,
        &corpus.tag_codes,
        &corpus.examples,
        &TrainConfig::default(),
    )
    .expect("training succeeds on the synthetic corpus");
    let train_secs = t0.elapsed().as_secs_f64();
    let train_f1 = model.train_f1;
    println!(
        "  trained: {n_tags} tags × {docs_per_tag} docs in {train_secs:.2} s   train F1 {train_f1:.3}"
    );

    // Held-out accuracy: fresh seeds, same generator.
    let fresh = held_out(&model, 8);
    let held_out_f1 = micro_f1(&model, &fresh).expect("held-out scoring");
    println!(
        "  held-out: {} docs   micro-F1 {held_out_f1:.3}",
        fresh.len()
    );

    // In-process classify latency over the held-out set.
    let mut lat: Vec<u128> = Vec::with_capacity(fresh.len());
    for ex in &fresh {
        let t = Instant::now();
        let got = model.classify(&ex.text).expect("classifies");
        lat.push(t.elapsed().as_micros());
        assert!(!got.predicted.is_empty());
    }
    lat.sort_unstable();
    let classify_p50 = percentile_us(&lat, 0.50);
    let classify_p99 = percentile_us(&lat, 0.99);
    println!("  classify: p50 {classify_p50:>5.0} µs   p99 {classify_p99:>5.0} µs   (in process)");

    // End-to-end: a loopback server with a factor model over a superset
    // of the text tag space, driven through POST /v1/classify_text.
    let space_tags = (n_tags * 4).max(32);
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(space_tags));
    let mut rng = StdRng::seed_from_u64(0x7E47);
    let training = Matrix::from_fn(96, space_tags, |_, _| {
        if rng.gen::<f64>() < 0.05 {
            1.0
        } else {
            0.0
        }
    });
    let cfg = NnmfConfig {
        solver: Solver::Hals,
        restarts: 1,
        max_iter: 20,
        ..NnmfConfig::paper_default(4)
    };
    let factor = nnmf(&training, &cfg);
    let artifact =
        FittedModel::new("text-smoke", cs, &space, &factor, Backend::Dense).expect("artifact");
    let dir = std::env::temp_dir().join(format!("anchors-text-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::open(&dir).expect("registry");
    registry.save(&artifact).expect("save factor model");
    let text_registry: Registry<TextModel> = Registry::open(&dir).expect("text registry");
    text_registry.save(&model).expect("save text model");

    let door = TextDoor::open(Registry::open(&dir).expect("door registry"), cs);
    assert!(!door.is_degraded(), "text door must come up ready");
    let state = Arc::new(
        AppState::from_registry(Registry::open(&dir).expect("registry"), cs, pdc12())
            .expect("state")
            .with_text(door),
    );
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("server");
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).expect("client");
    let mut http_lat: Vec<u128> = Vec::with_capacity(requests);
    for i in 0..requests {
        let ex = &fresh[i % fresh.len()];
        let t = Instant::now();
        let resp = client
            .classify_text("bench", &[], &ex.text)
            .expect("classify_text request");
        http_lat.push(t.elapsed().as_micros());
        assert_eq!(resp.status, 200, "{}", resp.text());
    }
    handle.shutdown();
    http_lat.sort_unstable();
    let http_p50 = percentile_us(&http_lat, 0.50);
    let http_p99 = percentile_us(&http_lat, 0.99);
    println!(
        "  e2e http: p50 {http_p50:>5.0} µs   p99 {http_p99:>5.0} µs   ({requests} requests, text → tags → anchors)"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"text_front_door\",\n",
            "  \"tags\": {},\n",
            "  \"docs_per_tag\": {},\n",
            "  \"train_secs\": {:.3},\n",
            "  \"train_f1\": {:.4},\n",
            "  \"train_f1_gate\": {},\n",
            "  \"held_out_docs\": {},\n",
            "  \"held_out_f1\": {:.4},\n",
            "  \"classify_p50_us\": {:.0},\n",
            "  \"classify_p99_us\": {:.0},\n",
            "  \"http_requests\": {},\n",
            "  \"http_p50_us\": {:.0},\n",
            "  \"http_p99_us\": {:.0}\n",
            "}}\n"
        ),
        n_tags,
        docs_per_tag,
        train_secs,
        train_f1,
        TRAIN_F1_GATE,
        fresh.len(),
        held_out_f1,
        classify_p50,
        classify_p99,
        requests,
        http_p50,
        http_p99
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let root_path = root.join("BENCH_text.json");
    std::fs::write(&root_path, &json).expect("write BENCH_text.json");
    println!("  wrote {}", root_path.display());
    std::fs::write(figures_dir().join("BENCH_text.json"), &json).expect("write figures copy");
    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if train_f1 < TRAIN_F1_GATE {
        eprintln!("WARNING: training-corpus micro-F1 {train_f1:.3} below the {TRAIN_F1_GATE} gate");
        failed = true;
    }
    if held_out_f1 < HELD_OUT_F1_GATE {
        eprintln!("WARNING: held-out micro-F1 {held_out_f1:.3} below the {HELD_OUT_F1_GATE} floor");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
