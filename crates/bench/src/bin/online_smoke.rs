//! Online-learning smoke benchmark: warm-start refresh vs cold refit,
//! and the refresh swap under live query load.
//!
//! Part one fits a base model on a synthetic sparse course matrix over a
//! real CS2013 tag-space prefix, folds a batch of unseen courses in
//! against the frozen basis, then absorbs them two ways: the online
//! subsystem's warm-start `refresh_model` (previous `W`/`H` seed HALS)
//! versus a cold NNDSVD fit of the very same augmented matrix. The gate:
//! warm iterations ≤ 0.7× cold at equal loss (≤ 5% worse), or the bench
//! exits nonzero.
//!
//! Part two stands up a real server over real sockets with a delta log
//! attached, hammers `/v1/recommend` from keep-alive clients while
//! fold-ins land and refresh ticks publish + atomically swap new models
//! under them. The gate: zero dropped requests across the swaps.
//!
//! Emits `BENCH_online.json` at the workspace root (and a copy under
//! `target/figures/`) for CI to archive. Knobs: `ANCHORS_BENCH_TAGS`,
//! `ANCHORS_BENCH_K`, `ANCHORS_BENCH_FOLDINS`, `ANCHORS_BENCH_CLIENTS`
//! env vars shrink the problem for quicker local smoke runs.

use anchors_bench::{figures_dir, header};
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{try_nnmf, Init, NnmfConfig, Solver};
use anchors_linalg::{matmul, Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_online::{refresh_model, DeltaLog, FoldInDelta, RefreshOptions};
use anchors_serve::{FittedModel, QueryEngine, Registry};
use anchors_server::{run_refresh_tick, AppState, Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_tags = env_usize("ANCHORS_BENCH_TAGS", 256);
    let k = env_usize("ANCHORS_BENCH_K", 8);
    let n_foldins = env_usize("ANCHORS_BENCH_FOLDINS", 16);
    let n_clients = env_usize("ANCHORS_BENCH_CLIENTS", 4);

    header("Online learning: warm-start refresh vs cold refit");

    // --- Part one: iterations-to-converge, warm vs cold -------------
    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(n_tags));
    let mut rng = StdRng::seed_from_u64(0x0B11E);
    let train = Matrix::from_fn(
        256,
        n_tags,
        |_, _| {
            if rng.gen::<f64>() < 0.05 {
                1.0
            } else {
                0.0
            }
        },
    );
    let cfg = NnmfConfig {
        solver: Solver::Hals,
        restarts: 2,
        ..NnmfConfig::paper_default(k)
    };
    let mut base_fit = try_nnmf(&train, &cfg).expect("base fit");
    base_fit.normalize();
    let base =
        FittedModel::new("online-smoke", cs, &space, &base_fit, Backend::Dense).expect("artifact");
    let engine = QueryEngine::new(base.clone(), cs, pdc12()).expect("engine");
    println!(
        "  base model: k = {k}, {n_tags} tags, {} iterations",
        base.iterations
    );

    // Unseen courses arrive and are folded in against the frozen basis.
    let arrivals = Matrix::from_fn(n_foldins, n_tags, |_, _| {
        if rng.gen::<f64>() < 8.0 / n_tags as f64 {
            1.0
        } else {
            0.0
        }
    });
    let deltas: Vec<(u64, FoldInDelta)> = (0..n_foldins)
        .map(|i| {
            let loadings = engine.fold_in_row(arrivals.row(i)).expect("fold-in");
            (
                i as u64 + 1,
                FoldInDelta {
                    base_version: 1,
                    name: format!("arrival-{i}"),
                    guideline: base.guideline.clone(),
                    fingerprint: base.fingerprint,
                    tags: arrivals.row(i).to_vec(),
                    loadings,
                },
            )
        })
        .collect();

    let options = RefreshOptions::default();
    let t0 = Instant::now();
    let (refreshed, report) = refresh_model(&base, &deltas, &options).expect("warm refresh");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.absorbed.len(), n_foldins, "every delta absorbed");
    assert_eq!(refreshed.w.rows(), 256 + n_foldins);

    // The cold comparator fits the *same* augmented matrix from scratch.
    let recon = matmul(&base.w, &base.h);
    let aug = Matrix::from_fn(256 + n_foldins, n_tags, |i, j| {
        if i < 256 {
            recon.get(i, j)
        } else {
            arrivals.get(i - 256, j)
        }
    });
    let cold_cfg = NnmfConfig {
        init: Init::Nndsvd,
        restarts: 1,
        max_iter: options.max_iter,
        tol: options.tol,
        ..NnmfConfig::paper_default(k)
    };
    let t1 = Instant::now();
    let cold = try_nnmf(&aug, &cold_cfg).expect("cold refit");
    let cold_ms = t1.elapsed().as_secs_f64() * 1e3;

    let warm_iters = report.warm.warm_iterations;
    let cold_iters = cold.iterations;
    let savings = 1.0 - warm_iters as f64 / cold_iters.max(1) as f64;
    println!(
        "  warm refresh:  {warm_iters:>6} iterations  {warm_ms:>8.1} ms  loss {:.6}",
        report.warm.warm_loss
    );
    println!(
        "  cold refit:    {cold_iters:>6} iterations  {cold_ms:>8.1} ms  loss {:.6}",
        cold.loss
    );
    println!("  iteration savings: {:.0}%", savings * 100.0);
    if report.warm.fell_back_cold {
        println!("  note: warm seed diverged; the cold ladder rescued the fit");
    }

    // --- Part two: the refresh swap under live load ------------------
    header("Online learning: refresh swap under load");
    let dir = std::env::temp_dir().join(format!("anchors-online-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let log = Arc::new(DeltaLog::open(&dir).expect("delta log"));
    let registry = Registry::open(&dir)
        .expect("registry")
        .with_pins(Arc::clone(&log) as Arc<_>);
    registry.save(&base).expect("publish v1");
    let state = Arc::new(
        AppState::from_registry(registry, cs2013(), pdc12())
            .expect("state")
            .with_online(Arc::clone(&log)),
    );
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("start");
    let addr = handle.addr();
    let timeout = Duration::from_secs(10);

    let codes = &base.tag_codes;
    let recommend = format!(
        r#"{{"name":"CS 201","labels":["DS"],"tags":["{}","{}","{}"]}}"#,
        codes[1], codes[4], codes[9]
    )
    .into_bytes();
    let per_client = 64usize;
    let clients: Vec<_> = (0..n_clients)
        .map(|_| {
            let body = recommend.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, timeout).expect("connect");
                let mut dropped = 0u64;
                for _ in 0..per_client {
                    match client.request("POST", "/v1/recommend", &body) {
                        Ok(resp) if resp.status == 200 => {}
                        _ => dropped += 1,
                    }
                }
                dropped
            })
        })
        .collect();

    let mut folder = Client::connect(addr, timeout).expect("connect");
    let mut swaps = 0u64;
    let swap_started = Instant::now();
    for round in 0..3 {
        let fold = format!(
            r#"{{"name":"CS 49{round}","labels":["DS"],"tags":["{}","{}"]}}"#,
            codes[2 + round],
            codes[11 + round]
        );
        let resp = folder
            .request("POST", "/v1/fold_in", fold.as_bytes())
            .expect("fold_in");
        assert_eq!(resp.status, 200, "{}", resp.text());
        if run_refresh_tick(&state, &options).expect("tick").is_some() {
            swaps += 1;
        }
    }
    let swap_ms = swap_started.elapsed().as_secs_f64() * 1e3;
    let dropped: u64 = clients.into_iter().map(|t| t.join().expect("client")).sum();
    let total = (n_clients * per_client) as u64;
    println!("  {total} requests across {swaps} publish+swap cycles ({swap_ms:.1} ms): {dropped} dropped");
    drop(folder);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // --- Report + gates ----------------------------------------------
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"online_warm_refresh_and_swap\",\n",
            "  \"tags\": {},\n",
            "  \"k\": {},\n",
            "  \"fold_ins\": {},\n",
            "  \"warm_iterations\": {},\n",
            "  \"cold_iterations\": {},\n",
            "  \"iteration_savings\": {:.3},\n",
            "  \"warm_loss\": {:.6},\n",
            "  \"cold_loss\": {:.6},\n",
            "  \"warm_ms\": {:.3},\n",
            "  \"cold_ms\": {:.3},\n",
            "  \"fell_back_cold\": {},\n",
            "  \"load_requests\": {},\n",
            "  \"load_clients\": {},\n",
            "  \"swaps\": {},\n",
            "  \"swap_window_ms\": {:.3},\n",
            "  \"dropped_requests\": {}\n",
            "}}\n"
        ),
        n_tags,
        k,
        n_foldins,
        warm_iters,
        cold_iters,
        savings,
        report.warm.warm_loss,
        cold.loss,
        warm_ms,
        cold_ms,
        report.warm.fell_back_cold,
        total,
        n_clients,
        swaps,
        swap_ms,
        dropped
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let root_path = root.join("BENCH_online.json");
    std::fs::write(&root_path, &json).expect("write BENCH_online.json");
    println!("  wrote {}", root_path.display());
    std::fs::write(figures_dir().join("BENCH_online.json"), &json).expect("write figures copy");

    let mut failed = false;
    if warm_iters as f64 > 0.7 * cold_iters as f64 {
        eprintln!(
            "GATE: warm refresh took {warm_iters} iterations, over 0.7x the cold refit's {cold_iters}"
        );
        failed = true;
    }
    if report.warm.warm_loss > cold.loss * 1.05 {
        eprintln!(
            "GATE: warm loss {:.6} is more than 5% worse than cold {:.6}",
            report.warm.warm_loss, cold.loss
        );
        failed = true;
    }
    if dropped > 0 {
        eprintln!("GATE: {dropped} of {total} requests dropped during refresh swaps");
        failed = true;
    }
    if swaps != 3 {
        eprintln!("GATE: expected 3 publish+swap cycles, saw {swaps}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
