//! Figure 5 — NNMF of the CS1 courses with k = 3: `W` and `H` heat maps,
//! the course→type reading of §4.4, and the k-selection diagnostics (k = 4
//! duplicates a dimension; k = 2 under-separates).

use anchors_bench::{compare, header, render_model, seed};
use anchors_core::discover_flavors;
use anchors_corpus::generate;
use anchors_curricula::cs2013;
use anchors_factor::{try_rank_scan, NnmfConfig};

fn main() {
    let corpus = generate(seed());
    let g = cs2013();
    let cs1 = corpus.cs1_group();

    header("Figure 5: NNMF of CS1 courses, k = 3");
    let fm = discover_flavors(&corpus.store, g, &cs1, 3);
    render_model(&fm, &corpus.store, "fig5_cs1_k3");

    header("Course → dominant type");
    for (i, &cid) in fm.matrix.courses.iter().enumerate() {
        let mix = fm.mixture_of(i);
        let mix_str: Vec<String> = mix.iter().map(|v| format!("{v:.2}")).collect();
        println!(
            "  {:<66} type {}  (mixture {})",
            corpus.store.course(cid).name,
            fm.assignments[i] + 1,
            mix_str.join("/")
        );
    }

    header("Type semantics (top knowledge units)");
    for t in &fm.types {
        println!(
            "  type {}: {}",
            t.index + 1,
            t.ku_weights
                .iter()
                .take(5)
                .map(|(k, w)| format!("{k} ({w:.2})"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    header("k-selection diagnostics (§4.4)");
    let matrix = fm.matrix.a.clone();
    let scan = try_rank_scan(&matrix, 2..=4, &NnmfConfig::paper_default(2)).expect("rank scan");
    for (d, _) in &scan {
        println!(
            "  k = {}: loss {:.3}, rel. err {:.3}, duplicate-dimension score {:.3}, separation {:.3}",
            d.k, d.loss, d.relative_error, d.duplicate_score, d.separation
        );
    }
    let d4 = &scan.iter().find(|(d, _)| d.k == 4).unwrap().0;
    let d3 = &scan.iter().find(|(d, _)| d.k == 3).unwrap().0;
    compare(
        "duplicate-dimension score k=4 vs k=3",
        "k=4 overfits",
        format!("{:.3} vs {:.3}", d4.duplicate_score, d3.duplicate_score),
    );
}
