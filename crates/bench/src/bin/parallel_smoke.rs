//! Outer-loop parallelism smoke benchmark: serial vs fanned-out rank scan
//! and consensus, with the determinism contract asserted along the way.
//!
//! Builds one noisy block matrix (2000 × 1024 by default), runs the same
//! rank scan (`k ∈ {2..4}`, 2 restarts each) plus consensus (`k = 3`,
//! 8 runs) four times — `ANCHORS_PAR_MODE=serial`, then outer fan-out at
//! 1, 2, and all hardware threads — and asserts every run produces
//! bitwise-identical factors, diagnostics, and consensus matrices. Emits
//! `BENCH_parallel.json` at the workspace root (and a copy under
//! `target/figures/`) for CI to archive; exits nonzero when the fan-out
//! fails to beat one thread at full problem size.
//!
//! Knobs: `ANCHORS_BENCH_ROWS`, `ANCHORS_BENCH_COLS`,
//! `ANCHORS_BENCH_RESTARTS`, `ANCHORS_BENCH_RUNS` env vars shrink the
//! problem for quicker local smoke runs.

use anchors_bench::{figures_dir, header};
use anchors_factor::{
    try_consensus, try_rank_scan, Consensus, NnmfConfig, NnmfModel, RankDiagnostics, Solver,
};
use anchors_linalg::parallel::{max_threads, set_num_threads, set_par_mode, ParMode};
use anchors_linalg::Matrix;
use std::path::Path;
use std::time::Instant;

const K_MIN: usize = 2;
const K_MAX: usize = 4;
const CONSENSUS_K: usize = 3;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Noisy rank-3 block matrix: deterministic, no RNG dependency.
fn block_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let block = if (i * 3) / rows == (j * 3) / cols {
            1.0
        } else {
            0.0
        };
        block + ((i * 31 + j * 17) % 13) as f64 / 64.0
    })
}

/// One full workload: the rank scan plus the consensus run.
fn workload(
    a: &Matrix,
    restarts: usize,
    runs: usize,
) -> (Vec<(RankDiagnostics, NnmfModel)>, Consensus) {
    let base = NnmfConfig {
        restarts,
        max_iter: 30,
        solver: Solver::Hals,
        ..NnmfConfig::paper_default(K_MIN)
    };
    let scan = try_rank_scan(a, K_MIN..=K_MAX, &base).expect("rank scan");
    let cons = try_consensus(a, CONSENSUS_K, runs, &base).expect("consensus");
    (scan, cons)
}

fn assert_identical(
    label: &str,
    (scan_a, cons_a): &(Vec<(RankDiagnostics, NnmfModel)>, Consensus),
    (scan_b, cons_b): &(Vec<(RankDiagnostics, NnmfModel)>, Consensus),
) {
    assert_eq!(scan_a.len(), scan_b.len(), "{label}: scan length");
    for ((da, ma), (db, mb)) in scan_a.iter().zip(scan_b) {
        assert_eq!(da.k, db.k, "{label}");
        assert_eq!(ma.w, mb.w, "{label}: W differs at k={}", da.k);
        assert_eq!(ma.h, mb.h, "{label}: H differs at k={}", da.k);
        assert_eq!(
            da.loss.to_bits(),
            db.loss.to_bits(),
            "{label}: loss differs at k={}",
            da.k
        );
        assert_eq!(ma.winning_seed, mb.winning_seed, "{label}");
        assert_eq!(ma.recovery, mb.recovery, "{label}");
    }
    assert_eq!(
        cons_a.matrix, cons_b.matrix,
        "{label}: consensus matrix differs"
    );
    assert_eq!(
        cons_a.stats.dispersion.to_bits(),
        cons_b.stats.dispersion.to_bits(),
        "{label}: dispersion differs"
    );
}

fn main() {
    let rows = env_usize("ANCHORS_BENCH_ROWS", 2000);
    let cols = env_usize("ANCHORS_BENCH_COLS", 1024);
    let restarts = env_usize("ANCHORS_BENCH_RESTARTS", 2);
    let runs = env_usize("ANCHORS_BENCH_RUNS", 8);
    let hw = max_threads();

    header("Outer-loop parallelism: rank scan + consensus");
    println!(
        "  {rows} x {cols} matrix; scan k {K_MIN}..={K_MAX} ({restarts} restarts), \
         consensus k={CONSENSUS_K} ({runs} runs); {hw} hardware threads"
    );

    let a = block_matrix(rows, cols);

    set_par_mode(Some(ParMode::Serial));
    let t = Instant::now();
    let serial = workload(&a, restarts, runs);
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("  serial mode:        {serial_ms:>10.1} ms");

    set_par_mode(Some(ParMode::Outer));
    let mut outer_ms = Vec::new();
    for threads in [1, 2, hw] {
        set_num_threads(Some(threads));
        let t = Instant::now();
        let par = workload(&a, restarts, runs);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_identical(&format!("outer@{threads}"), &serial, &par);
        println!("  outer, {threads:>2} thread(s): {ms:>10.1} ms");
        outer_ms.push(ms);
    }
    set_par_mode(None);
    set_num_threads(None);

    let speedup = outer_ms[0] / outer_ms[2].max(1e-9);
    println!("  speedup:       {speedup:>10.2}x (max threads over 1 thread)");
    println!("  factors bitwise identical across all modes and thread counts");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"parallel_rank_scan_consensus\",\n",
            "  \"rows\": {},\n",
            "  \"cols\": {},\n",
            "  \"k_min\": {},\n",
            "  \"k_max\": {},\n",
            "  \"restarts\": {},\n",
            "  \"consensus_runs\": {},\n",
            "  \"max_threads\": {},\n",
            "  \"serial_ms\": {:.3},\n",
            "  \"outer_1_ms\": {:.3},\n",
            "  \"outer_2_ms\": {:.3},\n",
            "  \"outer_max_ms\": {:.3},\n",
            "  \"speedup_max_vs_1\": {:.3},\n",
            "  \"factors_identical\": true\n",
            "}}\n"
        ),
        rows,
        cols,
        K_MIN,
        K_MAX,
        restarts,
        runs,
        hw,
        serial_ms,
        outer_ms[0],
        outer_ms[1],
        outer_ms[2],
        speedup
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let root_path = root.join("BENCH_parallel.json");
    std::fs::write(&root_path, &json).expect("write BENCH_parallel.json");
    println!("  wrote {}", root_path.display());
    std::fs::write(figures_dir().join("BENCH_parallel.json"), &json).expect("write figures copy");

    let full_size = rows >= 2000 && cols >= 1024;
    if full_size && hw >= 2 {
        if speedup < 1.0 {
            eprintln!(
                "WARNING: outer fan-out at {hw} threads ({:.1} ms) did not beat 1 thread ({:.1} ms)",
                outer_ms[2], outer_ms[0]
            );
            std::process::exit(1);
        }
        if speedup < 2.0 {
            eprintln!("WARNING: speedup {speedup:.2}x is below the 2x target");
        }
    }
}
