//! Figure 4 — radial views of the agreed-upon CS1 classification at
//! thresholds 2, 3, and 4 courses (root in red).

use anchors_bench::{agreement_tree_figure, compare, header, seed, write_artifact};
use anchors_core::AgreementAnalysis;
use anchors_corpus::generate;
use anchors_curricula::cs2013;

fn main() {
    let corpus = generate(seed());
    let g = cs2013();
    let cs1 = AgreementAnalysis::run(&corpus.store, g, "CS1", &corpus.cs1_group());

    header("Figure 4: agreement trees of CS1 courses");
    for m in 2..=4 {
        let title = format!("CS1 agreement: {m} courses or more");
        let (svg, summary) = agreement_tree_figure(g, &cs1, m, &title);
        print!("{summary}");
        write_artifact(&format!("fig4_cs1_agreement_{m}.svg"), &svg);
    }

    header("Paper checks");
    compare(
        "KAs spanned at >= 2 courses",
        "4 (SDF/Algo/Arch/PL)",
        cs1.spanned_kas(g, 2).join("+"),
    );
    let tree4 = cs1.tree(4);
    let fpc = g.by_code("SDF.FPC").unwrap();
    let sdf = g.by_code("SDF").unwrap();
    let in_sdf = tree4
        .agreed_leaves
        .iter()
        .filter(|&&(t, _)| g.is_ancestor(sdf, t))
        .count();
    let in_fpc = tree4
        .agreed_leaves
        .iter()
        .filter(|&&(t, _)| g.is_ancestor(fpc, t))
        .count();
    compare("items agreed by >= 4 courses", "13", tree4.len());
    compare("of which inside SDF", "13", in_sdf);
    compare(
        "of which inside SDF/Fundamental Programming Concepts",
        "12",
        in_fpc,
    );
}
