//! Per-kernel probe: times each multiply kernel under scalar and blocked
//! modes on the NNMF bench shapes, so a fit-level regression can be
//! attributed to the specific kernel that caused it. Diagnostic only —
//! prints a table, writes nothing, gates nothing.
//!
//! Knobs: `ANCHORS_BENCH_ROWS`, `ANCHORS_BENCH_COLS`, `ANCHORS_BENCH_K`,
//! `ANCHORS_BENCH_DENSITY` (percent, default 5).

use anchors_linalg::ops::{matmul_a_bt_into, matmul_at_b_into, matmul_into};
use anchors_linalg::{set_kernel_mode, CsrMatrix, KernelMode, MatKernels, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn synthetic(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen::<f64>() < density {
            rng.gen_range(0.1..=1.0)
        } else {
            0.0
        }
    })
}

fn time_modes(label: &str, reps: usize, mut f: impl FnMut()) {
    let mut ms = [0.0f64; 2];
    for (slot, mode) in [(0, KernelMode::Scalar), (1, KernelMode::Blocked)] {
        set_kernel_mode(Some(mode));
        f(); // warm up (arena growth, page faults)
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        ms[slot] = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
    }
    set_kernel_mode(None);
    println!(
        "  {label:<26} scalar {:>9.3} ms   blocked {:>9.3} ms   ratio {:>5.2}x",
        ms[0],
        ms[1],
        ms[0] / ms[1].max(1e-9)
    );
}

fn main() {
    let m = env_usize("ANCHORS_BENCH_ROWS", 2000);
    let n = env_usize("ANCHORS_BENCH_COLS", 1024);
    let k = env_usize("ANCHORS_BENCH_K", 8);
    let density = env_usize("ANCHORS_BENCH_DENSITY", 5) as f64 / 100.0;

    let a = synthetic(m, n, density, 0xBEEF);
    let csr = CsrMatrix::from_dense(&a);
    let w = synthetic(m, k, 1.0, 1);
    let h = synthetic(k, n, 1.0, 2);
    let dense_full = synthetic(m, n, 1.0, 3);
    println!(
        "kernel probe: A {m}x{n} density {:.3}, W {m}x{k}, H {k}x{n}",
        csr.density()
    );

    let mut aht = Matrix::zeros(m, k);
    time_modes("A·Hᵀ (dense, sparse-ish)", 3, || {
        a.a_bt_into(&h, &mut aht);
    });
    time_modes("A·Hᵀ (dense, full)", 3, || {
        dense_full.a_bt_into(&h, &mut aht);
    });
    time_modes("A·Hᵀ (CSR)", 10, || {
        csr.a_bt_into(&h, &mut aht);
    });

    let mut atw = Matrix::zeros(n, k);
    time_modes("Aᵀ·W (dense, sparse-ish)", 3, || {
        a.at_b_into(&w, &mut atw);
    });
    time_modes("Aᵀ·W (dense, full)", 3, || {
        dense_full.at_b_into(&w, &mut atw);
    });
    time_modes("Aᵀ·W (CSR)", 10, || {
        csr.at_b_into(&w, &mut atw);
    });

    let mut wtw = Matrix::zeros(k, k);
    time_modes("Wᵀ·W", 10, || {
        matmul_at_b_into(&w, &w, &mut wtw);
    });
    let mut hht = Matrix::zeros(k, k);
    time_modes("H·Hᵀ", 10, || {
        matmul_a_bt_into(&h, &h, &mut hht);
    });
    let mut wh = Matrix::zeros(m, n);
    time_modes("W·H (reconstruct)", 3, || {
        matmul_into(&w, &h, &mut wh);
    });
}
