//! Figure 3 — agreement distributions in CS1 (3a) and Data Structures (3b):
//! how many courses each curriculum tag appears in.

use anchors_bench::{compare, header, seed, write_artifact};
use anchors_core::AgreementAnalysis;
use anchors_corpus::generate;
use anchors_curricula::cs2013;
use anchors_viz::{svg_agreement_plot, text_agreement_plot};

fn main() {
    let corpus = generate(seed());
    let g = cs2013();

    let cs1 = AgreementAnalysis::run(&corpus.store, g, "CS1", &corpus.cs1_group());
    header("Figure 3a: agreement in CS1 courses");
    let text = text_agreement_plot(&cs1.tag_counts, "CS1: courses per tag");
    print!("{text}");
    write_artifact("fig3a_cs1_agreement.txt", &text);
    write_artifact(
        "fig3a_cs1_agreement.svg",
        &svg_agreement_plot(&cs1.tag_counts, "CS1: how many courses each tag appears in"),
    );
    compare("CS1 total distinct tags", "> 200", cs1.total_tags());
    compare("CS1 tags in >= 2 courses", "~ 50", cs1.tags_at(2));
    compare("CS1 tags in >= 3 courses", "~ 25", cs1.tags_at(3));
    compare("CS1 tags in >= 4 courses", "13", cs1.tags_at(4));

    let ds = AgreementAnalysis::run(&corpus.store, g, "DS", &corpus.ds_group());
    header("Figure 3b: agreement in Data Structure courses");
    let text = text_agreement_plot(&ds.tag_counts, "DS: courses per tag");
    print!("{text}");
    write_artifact("fig3b_ds_agreement.txt", &text);
    write_artifact(
        "fig3b_ds_agreement.svg",
        &svg_agreement_plot(&ds.tag_counts, "DS: how many courses each tag appears in"),
    );
    compare("DS total distinct tags", "~ 250", ds.total_tags());
    compare("DS tags in >= 2 courses", "~ 120", ds.tags_at(2));
    compare("DS tags in >= 4 courses", "~ 50", ds.tags_at(4));

    header("Headline comparison (§4.5)");
    compare(
        "agreement fraction at 2+ (DS vs CS1)",
        "DS ≫ CS1",
        format!(
            "DS {:.2} vs CS1 {:.2}",
            ds.agreement_fraction(2),
            cs1.agreement_fraction(2)
        ),
    );
}
