//! The paper's future work: "build better models of courses by
//! investigating other algorithms such as PCA and MDS". This binary runs
//! both baselines on the same corpus matrix and contrasts them with the
//! NNMF course types.

use anchors_bench::{compare, header, seed, write_artifact};
use anchors_core::discover_flavors;
use anchors_corpus::generate;
use anchors_curricula::cs2013;
use anchors_factor::{classical_mds, pca};
use anchors_linalg::{pairwise_distances, Metric};
use anchors_materials::{CourseLabel, CourseMatrix};
use anchors_viz::{svg_scatter, ScatterPoint};

fn main() {
    let corpus = generate(seed());
    let g = cs2013();
    let cm = CourseMatrix::build(&corpus.store, corpus.all());
    let fm = discover_flavors(&corpus.store, g, corpus.all(), 4);

    // --- PCA of the courses.
    header("PCA of the course matrix");
    let model = pca(&cm.a, 4);
    println!("explained variance ratio of top 4 components:");
    for (i, r) in model.explained_ratio.iter().enumerate() {
        println!("  PC{}: {:.3}", i + 1, r);
    }
    let scores = model.transform(&cm.a);

    // --- Classical MDS of the Jaccard distances.
    header("MDS of pairwise Jaccard distances");
    let d = pairwise_distances(&cm.a, Metric::Jaccard);
    let emb = classical_mds(&d, 2);
    println!("embedding stress: {:.4}", emb.stress);

    // Scatter artifacts colored by NNMF type.
    let label_group = |cid| {
        let c = corpus.store.course(cid);
        if c.has_label(CourseLabel::Pdc) {
            2
        } else if c.has_label(CourseLabel::SoftEng) {
            1
        } else if c.has_label(CourseLabel::DataStructures) || c.has_label(CourseLabel::Algorithms) {
            0
        } else {
            3
        }
    };
    let mk_points = |coords: &anchors_linalg::Matrix| -> Vec<ScatterPoint> {
        cm.courses
            .iter()
            .enumerate()
            .map(|(i, &cid)| ScatterPoint {
                x: coords.get(i, 0),
                y: coords.get(i, 1),
                label: corpus
                    .store
                    .course(cid)
                    .name
                    .split_whitespace()
                    .take(3)
                    .collect::<Vec<_>>()
                    .join(" "),
                group: label_group(cid),
            })
            .collect()
    };
    write_artifact(
        "baseline_pca_scatter.svg",
        &svg_scatter(&mk_points(&scores), "Courses in PCA space (color = family)"),
    );
    write_artifact(
        "baseline_mds_scatter.svg",
        &svg_scatter(
            &mk_points(&emb.points),
            "Courses in MDS space (color = family)",
        ),
    );

    // --- Quantitative comparison: do the baselines separate the families
    // the NNMF types separate?
    header("Family separation (mean intra-family vs inter-family distance)");
    for (name, coords) in [("PCA", &scores), ("MDS", &emb.points)] {
        let dd = pairwise_distances(coords, Metric::Euclidean);
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..cm.courses.len() {
            for j in (i + 1)..cm.courses.len() {
                if label_group(cm.courses[i]) == label_group(cm.courses[j]) {
                    intra.push(dd.get(i, j));
                } else {
                    inter.push(dd.get(i, j));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        compare(
            &format!("{name}: inter / intra distance ratio"),
            "> 1 separates families",
            format!("{:.2}", mean(&inter) / mean(&intra)),
        );
    }
    // NNMF separation for reference.
    let same_type = |i: usize, j: usize| fm.assignments[i] == fm.assignments[j];
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..cm.courses.len() {
        for j in (i + 1)..cm.courses.len() {
            total += 1;
            if (label_group(cm.courses[i]) == label_group(cm.courses[j])) == same_type(i, j) {
                agree += 1;
            }
        }
    }
    compare(
        "NNMF type partition vs family labels (pair agreement)",
        "high",
        format!("{:.0}%", 100.0 * agree as f64 / total as f64),
    );
}
