//! Figure 7 — NNMF of the Data Structures + Algorithms courses with k = 3:
//! `W`/`H` heat maps and the §4.6 course→type reading (VCU → OOP type,
//! algorithms courses + BSC → combinatorial type, UNCC 2214 → applied type,
//! UCF hitting all three evenly).

use anchors_bench::{compare, header, render_model, seed};
use anchors_core::discover_flavors;
use anchors_corpus::generate;
use anchors_curricula::cs2013;

fn main() {
    let corpus = generate(seed());
    let g = cs2013();
    let group = corpus.ds_and_algo_group();

    header("Figure 7: NNMF of Data Structure and Algorithm courses, k = 3");
    let fm = discover_flavors(&corpus.store, g, &group, 3);
    render_model(&fm, &corpus.store, "fig7_ds_algo_k3");

    header("Course → dominant type");
    let idx = |needle: &str| {
        fm.matrix
            .courses
            .iter()
            .position(|&id| corpus.store.course(id).name.contains(needle))
            .unwrap()
    };
    for (i, &cid) in fm.matrix.courses.iter().enumerate() {
        let mix = fm.mixture_of(i);
        println!(
            "  {:<70} type {}  (mixture {})",
            corpus.store.course(cid).name,
            fm.assignments[i] + 1,
            mix.iter()
                .map(|v| format!("{v:.2}"))
                .collect::<Vec<_>>()
                .join("/")
        );
    }

    header("Paper checks (§4.6)");
    compare(
        "VCU and the algorithms courses in different types",
        "yes",
        fm.assignments[idx("VCU")] != fm.assignments[idx("2215")],
    );
    compare(
        "both named-'algorithms' courses share a type",
        "yes",
        fm.assignments[idx("Wahl")] == fm.assignments[idx("2215")],
    );
    compare(
        "BSC maps with the algorithms type",
        "yes",
        fm.assignments[idx("BSC")] == fm.assignments[idx("2215")],
    );
    compare(
        "both UNCC 2214 sections share a type",
        "yes",
        fm.assignments[idx("2214 KRS")] == fm.assignments[idx("2214 Saule")],
    );
    let ucf_max = fm.mixture_of(idx("UCF")).into_iter().fold(0.0f64, f64::max);
    compare(
        "UCF hits all three types evenly (max mixture share)",
        "low",
        format!("{ucf_max:.2}"),
    );

    header("Type semantics (top knowledge units)");
    for t in &fm.types {
        println!(
            "  type {}: {}",
            t.index + 1,
            t.ku_weights
                .iter()
                .take(5)
                .map(|(k, w)| format!("{k} ({w:.2})"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
