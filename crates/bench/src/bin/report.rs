//! Render the full analysis as a markdown report into `target/figures/`.

use anchors_bench::{header, seed, write_artifact};
use anchors_core::{run_full_analysis, to_markdown};

fn main() {
    header("Full analysis report");
    let report = run_full_analysis(seed());
    let md = to_markdown(&report);
    println!("{} sections, {} bytes", md.matches("## ").count(), md.len());
    write_artifact("analysis_report.md", &md);
}
