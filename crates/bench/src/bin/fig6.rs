//! Figure 6 — radial views of the agreed-upon Data Structures
//! classification at thresholds 2, 3, and 4 courses.

use anchors_bench::{agreement_tree_figure, compare, header, seed, write_artifact};
use anchors_core::AgreementAnalysis;
use anchors_corpus::generate;
use anchors_curricula::cs2013;

fn main() {
    let corpus = generate(seed());
    let g = cs2013();
    let ds = AgreementAnalysis::run(&corpus.store, g, "DS", &corpus.ds_group());

    header("Figure 6: agreement trees of Data Structure courses");
    for m in 2..=4 {
        let title = format!("DS agreement: {m} courses or more");
        let (svg, summary) = agreement_tree_figure(g, &ds, m, &title);
        print!("{summary}");
        write_artifact(&format!("fig6_ds_agreement_{m}.svg"), &svg);
    }

    header("Paper checks (§4.5)");
    compare(
        "KAs spanned at >= 3 courses",
        "5 (Algo,SDF,DS,CS,PL)",
        ds.spanned_kas(g, 3).join("+"),
    );
    let at4 = ds.spanned_kas(g, 4);
    compare(
        "KAs spanned at >= 4 courses",
        "drops PL",
        format!(
            "{} (PL present: {})",
            at4.join("+"),
            at4.contains(&"PL".to_string())
        ),
    );
    // The traditional DS core named by the paper.
    let tree4 = ds.tree(4);
    for (code, what) in [
        ("AL.BA", "Big-Oh notation and complexity analysis"),
        ("SDF.FDS", "basic linear data structures"),
        ("AL.FDSA", "nonlinear structures, searching and sorting"),
        ("DS.GT", "graphs and trees / traversals"),
    ] {
        let ku = g.by_code(code).unwrap();
        let n = tree4
            .agreed_leaves
            .iter()
            .filter(|&&(t, _)| g.is_ancestor(ku, t))
            .count();
        compare(&format!("{what} in 4+ agreement"), "present", n);
    }
}
