//! §3.2 — the workshop's day-2 alignment study: "how to study the
//! alignment between content delivery, activities, and assessment". For
//! every course, compares lecture tags against assessment tags with the
//! divergent hit-tree of §3.1.1 (mid-scale = fully aligned) and renders the
//! most misaligned course radially.

use anchors_bench::{header, seed, write_artifact};
use anchors_corpus::generate;
use anchors_curricula::{cs2013, Level};
use anchors_materials::{AlignmentView, MaterialKind};
use anchors_viz::{divergent, radial_layout, render_radial, NodeStyle};

fn main() {
    let corpus = generate(seed());
    let g = cs2013();

    header("Alignment of content delivery vs assessment, per course");
    let mut scores: Vec<(String, f64, anchors_materials::CourseId)> = Vec::new();
    for &cid in corpus.all() {
        let lectures = corpus.store.course_tags_of_kind(cid, MaterialKind::Lecture);
        let exams = corpus
            .store
            .course_tags_of_kind(cid, MaterialKind::Assessment);
        if lectures.is_empty() || exams.is_empty() {
            continue;
        }
        let view = AlignmentView::build(g, &lectures, &exams);
        scores.push((
            corpus.store.course(cid).name.clone(),
            view.misalignment(g),
            cid,
        ));
    }
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("{:<74} misalignment (0 = perfectly aligned)", "course");
    for (name, m, _) in &scores {
        println!("{name:<74} {m:.3}");
    }

    // Radial divergent view of the most misaligned course.
    let (name, _, cid) = &scores[0];
    header(&format!(
        "Divergent view of the least aligned course: {name}"
    ));
    let lectures = corpus
        .store
        .course_tags_of_kind(*cid, MaterialKind::Lecture);
    let exams = corpus
        .store
        .course_tags_of_kind(*cid, MaterialKind::Assessment);
    let view = AlignmentView::build(g, &lectures, &exams);
    // Induced subtree: every node hit by either side, plus ancestors.
    let mut nodes = std::collections::BTreeSet::new();
    for n in g.nodes() {
        if view.size(n.id) > 0 {
            nodes.extend(g.path(n.id));
        }
    }
    let nodes: Vec<_> = nodes.into_iter().collect();
    let layout = radial_layout(g, &nodes);
    let svg = render_radial(
        g,
        &layout,
        |n| {
            let node = g.node(n);
            let score = view.score(n).unwrap_or(0.0);
            NodeStyle {
                radius: match node.level {
                    Level::Root => 7.0,
                    Level::KnowledgeArea => 5.5,
                    Level::KnowledgeUnit => 4.0,
                    _ => 2.0 + (view.size(n) as f64).min(4.0),
                },
                fill: if node.level == Level::Root {
                    "#d62728".to_string()
                } else {
                    divergent(score)
                },
                label: (node.level == Level::KnowledgeArea).then(|| node.code.clone()),
            }
        },
        &format!("Lectures (blue) vs assessments (red): {name}"),
    );
    write_artifact("alignment_worst_course.svg", &svg);
    println!("blue = covered only in lectures, red = assessed but not taught, white = aligned");
}
