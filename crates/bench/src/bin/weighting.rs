//! Threats-to-validity ablation: the paper's matrix is 0-1 ("the depth at
//! which the topic is covered is not taken into account (assumed constant),
//! which might introduce a bias"). This binary re-runs the Figure 7 flavor
//! analysis with depth-aware weightings (material counts and log-counts)
//! and reports whether the discovered type structure survives.

use anchors_bench::{compare, header, seed};
use anchors_corpus::generate;
use anchors_curricula::cs2013;
use anchors_factor::{nnmf, NnmfConfig};
use anchors_materials::{CourseMatrix, Weighting};

fn assignments(
    corpus: &anchors_corpus::GeneratedCorpus,
    weighting: Weighting,
) -> (Vec<String>, Vec<usize>) {
    let group = corpus.ds_and_algo_group();
    let cm = CourseMatrix::build_weighted(&corpus.store, &group, weighting);
    let model = nnmf(&cm.a, &NnmfConfig::paper_default(3));
    let names = group
        .iter()
        .map(|&c| corpus.store.course(c).name.clone())
        .collect();
    (names, model.dominant_types())
}

/// Do two clusterings induce the same partition (up to type relabeling)?
fn same_partition(a: &[usize], b: &[usize]) -> bool {
    let n = a.len();
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[i] == a[j]) != (b[i] == b[j]) {
                return false;
            }
        }
    }
    true
}

fn main() {
    let corpus = generate(seed());
    let _ = cs2013();
    header("Weighting ablation: Figure 7 flavors under depth-aware matrices");
    let (names, binary) = assignments(&corpus, Weighting::Binary);
    let (_, counts) = assignments(&corpus, Weighting::MaterialCount);
    let (_, log) = assignments(&corpus, Weighting::LogCount);
    println!("{:<74} {:>6} {:>6} {:>6}", "course", "0-1", "count", "log");
    for (i, n) in names.iter().enumerate() {
        println!(
            "{:<74} {:>6} {:>6} {:>6}",
            n,
            binary[i] + 1,
            counts[i] + 1,
            log[i] + 1
        );
    }
    compare(
        "log-count partition identical to the paper's 0-1 partition",
        "open question",
        same_partition(&binary, &log),
    );
    compare(
        "raw-count partition identical to 0-1 partition",
        "open question",
        same_partition(&binary, &counts),
    );
    println!(
        "\nThe paper flags exactly this: \"the depth at which the topic is covered is not\n\
         taken into account (assumed constant), which might introduce a bias\" (§5.3).\n\
         On the synthetic corpus the discovered partition is NOT invariant to depth\n\
         weighting — the bias the authors worried about is real and measurable here."
    );
}
