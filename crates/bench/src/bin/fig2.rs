//! Figure 2 — heat map of the `W` matrix of an NNMF of **all** courses with
//! k = 4.
//!
//! The paper reads the four dimensions as data structures, software
//! engineering, parallel computing, and CS1. This binary regenerates the
//! heat map (text + SVG) and verifies the dimension↔family alignment.

use anchors_bench::{compare, header, seed, write_artifact};
use anchors_core::discover_flavors;
use anchors_corpus::generate;
use anchors_curricula::cs2013;
use anchors_materials::CourseLabel;
use anchors_viz::{svg_heatmap, text_heatmap, HeatmapOptions};

fn main() {
    let corpus = generate(seed());
    let g = cs2013();
    let fm = discover_flavors(&corpus.store, g, corpus.all(), 4);

    header("Figure 2: NNMF model of all courses with k = 4, W matrix only");
    let row_labels: Vec<String> = fm
        .matrix
        .courses
        .iter()
        .map(|&c| corpus.store.course(c).name.clone())
        .collect();
    let col_labels: Vec<String> = (0..4).map(|t| format!("dim {}", t + 1)).collect();
    let opts = HeatmapOptions {
        row_labels: row_labels.clone(),
        col_labels,
        normalize_columns: true,
        title: "W matrix (courses x 4 types), column-normalized".into(),
        ..Default::default()
    };
    let text = text_heatmap(&fm.model.w, &opts);
    print!("{text}");
    write_artifact("fig2_w_heatmap.txt", &text);
    write_artifact("fig2_w_heatmap.svg", &svg_heatmap(&fm.model.w, &opts));

    // Dimension ↔ course-family attribution (the paper's reading).
    header("Dimension attribution");
    let idx_of = |cid| corpus.all().iter().position(|&x| x == cid).unwrap();
    for (label, name) in [
        (CourseLabel::DataStructures, "data structures"),
        (CourseLabel::SoftEng, "software engineering"),
        (CourseLabel::Pdc, "parallel computing"),
        (CourseLabel::Cs1, "CS1"),
    ] {
        let ids = corpus.with_label(label);
        let mut counts = [0usize; 4];
        for id in &ids {
            counts[fm.assignments[idx_of(*id)]] += 1;
        }
        let dim = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(t, _)| t + 1)
            .unwrap();
        compare(
            &format!("dominant dimension of {name} courses"),
            "one distinct dim each",
            format!("dim {dim} ({}/{} courses)", counts[dim - 1], ids.len()),
        );
    }
    println!("\nPer-type dominant knowledge areas:");
    for t in &fm.types {
        let kas: Vec<String> = t
            .ka_weights
            .iter()
            .take(3)
            .map(|(k, w)| format!("{k} ({w:.2})"))
            .collect();
        println!("  dim {}: {}", t.index + 1, kas.join(", "));
    }
}
