//! Figure 8 — agreement tree of the three PDC courses at threshold 2, plus
//! the §4.7 observation: outside the PDC knowledge area, the common tags
//! reduce to CS1/DS concepts (directed graphs, recursion/divide-and-
//! conquer, Big-Oh).

use anchors_bench::{agreement_tree_figure, compare, header, seed, write_artifact};
use anchors_core::AgreementAnalysis;
use anchors_corpus::generate;
use anchors_curricula::cs2013;

fn main() {
    let corpus = generate(seed());
    let g = cs2013();
    let pdc = AgreementAnalysis::run(&corpus.store, g, "PDC", &corpus.pdc_group());

    header("Figure 8: PDC course agreement, 2 courses or more");
    let (svg, summary) = agreement_tree_figure(g, &pdc, 2, "PDC agreement: 2 courses");
    print!("{summary}");
    write_artifact("fig8_pdc_agreement_2.svg", &svg);

    header("Paper checks (§4.7)");
    let tree = pdc.tree(2);
    let pd = g.by_code("PD").unwrap();
    let inside = tree
        .agreed_leaves
        .iter()
        .filter(|&&(t, _)| g.is_ancestor(pd, t))
        .count();
    compare(
        "agreed entries inside the PDC knowledge area",
        "most",
        format!("{inside}/{}", tree.len()),
    );
    let outside = pdc.agreed_outside(g, 2, "PD");
    compare("agreed entries outside PD", "a few", outside.len());
    println!("\nNon-PDC agreed entries (CS1/DS anchor concepts):");
    for t in &outside {
        let ku = g.knowledge_unit_of(*t).unwrap();
        println!(
            "  {:<14} {:<40} | {}",
            g.node(*t).code,
            g.node(ku).label,
            g.node(*t).label.chars().take(60).collect::<String>()
        );
    }
}
