//! Scale smoke benchmark: exact vs sketched NNMF fit time and JSON vs
//! binary artifact load time across corpus sizes far past the paper's.
//!
//! For each row count (default 2k / 20k / 100k) the bench plants a dense
//! rank-8 block structure over a real CS2013 tag-space prefix — row `i`
//! loads on type `i % 8`, types own disjoint tag blocks — and adds a
//! uniform nonnegative noise floor so neither solver can reach zero loss
//! and the quality ratio is meaningful. Dense is the regime where row
//! compression pays: exact HALS sweeps cost `O(m·n·k)` and grow linearly
//! in courses, while the sketched sweep is fixed at `O(s·n·k)`. (On a
//! few-percent-dense CSR corpus the exact sweep is already `O(nnz·k)`
//! and sketching buys little — the sketch of a sparse matrix is dense.)
//!
//! Per size the bench:
//!
//! 1. fits the exact HALS path (`try_nnmf`) and the sketched path
//!    (`try_nnmf_sketched`, unsigned CountSketch with bucket occupancy
//!    held at 6 by scaling `s = max(512, m/6)` with the row count — the
//!    512 floor keeps the paper-scale 2k sweep near occupancy 4),
//!    recording wall-clock and exact relative reconstruction error of
//!    both — the sketched number includes the sketch, the inner fit,
//!    and the exact NNLS lift;
//! 2. freezes the exact model as a serving artifact and saves it through
//!    two registries — one JSON, one binary — timing `Registry::load`
//!    (checksum verification included) best-of-3 for each format.
//!
//! Emits `BENCH_scale.json` at the workspace root (and a copy under
//! `target/figures/`). Gates, applied only when the relevant size is in
//! the run list:
//!
//! * 2k rows — sketched relative error within 5% of exact (parity);
//! * 20k rows — binary load ≥ 10× faster than JSON parse, sketched fit
//!   ≥ 2× faster than exact at equal rank.
//!
//! Knobs: `ANCHORS_SCALE_ROWS` (comma-separated row counts, default
//! `2000,20000,100000`) and `ANCHORS_SCALE_TAGS` (default 1024) shrink
//! the sweep for CI.

use anchors_bench::{figures_dir, header};
use anchors_curricula::cs2013;
use anchors_factor::{try_nnmf, try_nnmf_sketched, NnmfConfig, Solver};
use anchors_linalg::{Backend, Matrix, SketchConfig};
use anchors_materials::TagSpace;
use anchors_serve::{ArtifactFormat, FittedModel, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_sizes(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Planted rank-`k` course matrix with a noise floor: `A = W₀·H₀ + E`
/// where row `i` of `W₀` is 1-sparse on type `i % k` (with a per-row
/// scale), `H₀` gives each type a disjoint tag block over a small
/// cross-type floor, and `E` is uniform nonnegative noise. Generated
/// entrywise — `W₀` rows are 1-sparse, so each entry is `O(1)`.
fn planted_dense(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let block = n / k;
    Matrix::from_fn(m, n, |i, j| {
        let t = i % k;
        let w = 1.0 + 0.1 * ((i / k) % 5) as f64;
        let h = if j / block == t {
            0.7 + 0.05 * ((j * 7 + 3 * t) % 8) as f64
        } else {
            0.02
        };
        w * h + 0.08 * rng.gen::<f64>()
    })
}

struct SizeRow {
    rows: usize,
    sketch_rows: usize,
    exact_fit_ms: f64,
    sketched_fit_ms: f64,
    fit_speedup: f64,
    exact_iters: usize,
    sketch_iters: usize,
    exact_rel_err: f64,
    sketched_rel_err: f64,
    quality_ratio: f64,
    json_save_ms: f64,
    bin_save_ms: f64,
    json_load_ms: f64,
    bin_load_ms: f64,
    load_speedup: f64,
}

fn best_of_3(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let sizes = env_sizes("ANCHORS_SCALE_ROWS", &[2000, 20_000, 100_000]);
    let n_tags_req = env_usize("ANCHORS_SCALE_TAGS", 1024);
    let k = 8;

    header("Scale smoke: exact vs sketched fit, JSON vs binary load");

    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(n_tags_req));
    let n_tags = space.len();
    println!("  tag space: {n_tags} CS2013 leaves; k = {k}; sizes {sizes:?}");

    let scratch = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("target")
        .join("scale_smoke");
    let _ = std::fs::remove_dir_all(&scratch);

    let cfg = NnmfConfig {
        solver: Solver::Hals,
        restarts: 1,
        max_iter: 150,
        tol: 1e-4,
        ..NnmfConfig::paper_default(k)
    };

    let mut rows_out: Vec<SizeRow> = Vec::new();
    for &m in &sizes {
        let a = planted_dense(m, n_tags, k, 0x5CA1E ^ m as u64);
        println!("  -- {m} courses x {n_tags} tags (dense)");

        let t0 = Instant::now();
        let exact = try_nnmf(&a, &cfg).expect("exact fit");
        let exact_fit_ms = t0.elapsed().as_secs_f64() * 1e3;
        let exact_rel_err = exact.relative_error_on(&a);

        // Bucket occupancy m/s holds at 6 as m grows (single digits, per
        // the sketch module's identifiability guidance); the 512 floor
        // keeps small sweeps from under-sketching the rank.
        let s = (m / 6).max(512).min(m);
        let sketch = SketchConfig::count_sketch(s, 0xC0DE);
        let t1 = Instant::now();
        let sketched = try_nnmf_sketched(&a, &cfg, &sketch).expect("sketched fit");
        let sketched_fit_ms = t1.elapsed().as_secs_f64() * 1e3;
        let sketched_rel_err = sketched.report.relative_error;

        let fit_speedup = exact_fit_ms / sketched_fit_ms.max(1e-9);
        let quality_ratio = sketched_rel_err / exact_rel_err.max(1e-12);
        println!(
            "     exact:    {exact_fit_ms:>10.1} ms  rel err {exact_rel_err:.4} ({} iters)",
            exact.iterations
        );
        println!(
            "     sketched: {sketched_fit_ms:>10.1} ms  rel err {sketched_rel_err:.4} (s = {s}, {fit_speedup:.2}x faster, quality ratio {quality_ratio:.4})"
        );

        // Serving artifact: save the exact model through both codecs and
        // time the full Registry::load (read + checksum + decode + shape
        // validation) for each.
        let artifact = FittedModel::new(format!("scale-{m}"), cs, &space, &exact, Backend::Dense)
            .expect("artifact");
        let mut json_save_ms = 0.0;
        let mut bin_save_ms = 0.0;
        let mut json_load_ms = 0.0;
        let mut bin_load_ms = 0.0;
        for (format, save_ms, load_ms) in [
            (ArtifactFormat::Json, &mut json_save_ms, &mut json_load_ms),
            (ArtifactFormat::Bin, &mut bin_save_ms, &mut bin_load_ms),
        ] {
            let dir = scratch.join(format!("{m}-{}", format.extension()));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            let reg = Registry::open(&dir).expect("registry").with_format(format);
            let t = Instant::now();
            let v = reg.save(&artifact).expect("save");
            *save_ms = t.elapsed().as_secs_f64() * 1e3;
            *load_ms = best_of_3(|| {
                let loaded = reg.load(v).expect("load");
                assert_eq!(loaded.w.shape(), (m, k));
            });
        }
        let load_speedup = json_load_ms / bin_load_ms.max(1e-9);
        println!(
            "     load:     json {json_load_ms:>8.1} ms | bin {bin_load_ms:>8.1} ms ({load_speedup:.1}x)"
        );

        rows_out.push(SizeRow {
            rows: m,
            sketch_rows: s,
            exact_fit_ms,
            sketched_fit_ms,
            fit_speedup,
            exact_iters: exact.iterations,
            sketch_iters: sketched.report.sketch_iterations,
            exact_rel_err,
            sketched_rel_err,
            quality_ratio,
            json_save_ms,
            bin_save_ms,
            json_load_ms,
            bin_load_ms,
            load_speedup,
        });
    }

    let body: Vec<String> = rows_out
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"rows\": {},\n",
                    "      \"tags\": {},\n",
                    "      \"k\": {},\n",
                    "      \"sketch_rows\": {},\n",
                    "      \"exact_fit_ms\": {:.3},\n",
                    "      \"sketched_fit_ms\": {:.3},\n",
                    "      \"fit_speedup\": {:.3},\n",
                    "      \"exact_iters\": {},\n",
                    "      \"sketch_iters\": {},\n",
                    "      \"exact_rel_err\": {:.6},\n",
                    "      \"sketched_rel_err\": {:.6},\n",
                    "      \"quality_ratio\": {:.4},\n",
                    "      \"json_save_ms\": {:.3},\n",
                    "      \"bin_save_ms\": {:.3},\n",
                    "      \"json_load_ms\": {:.3},\n",
                    "      \"bin_load_ms\": {:.3},\n",
                    "      \"load_speedup\": {:.3}\n",
                    "    }}"
                ),
                r.rows,
                n_tags,
                k,
                r.sketch_rows,
                r.exact_fit_ms,
                r.sketched_fit_ms,
                r.fit_speedup,
                r.exact_iters,
                r.sketch_iters,
                r.exact_rel_err,
                r.sketched_rel_err,
                r.quality_ratio,
                r.json_save_ms,
                r.bin_save_ms,
                r.json_load_ms,
                r.bin_load_ms,
                r.load_speedup,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"scale_exact_vs_sketched_and_codec_load\",\n",
            "  \"sketch\": \"countsketch, s = max(512, rows/6)\",\n",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        body.join(",\n")
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let root_path = root.join("BENCH_scale.json");
    std::fs::write(&root_path, &json).expect("write BENCH_scale.json");
    println!("  wrote {}", root_path.display());
    std::fs::write(figures_dir().join("BENCH_scale.json"), &json).expect("write figures copy");
    let _ = std::fs::remove_dir_all(&scratch);

    let mut failed = false;
    if let Some(r) = rows_out.iter().find(|r| r.rows == 2000) {
        if r.sketched_rel_err > r.exact_rel_err * 1.05 {
            eprintln!(
                "GATE FAILED (2k parity): sketched rel err {:.4} exceeds exact {:.4} by more than 5%",
                r.sketched_rel_err, r.exact_rel_err
            );
            failed = true;
        }
    }
    if let Some(r) = rows_out.iter().find(|r| r.rows == 20_000) {
        if r.load_speedup < 10.0 {
            eprintln!(
                "GATE FAILED (20k load): binary load only {:.1}x faster than JSON (need 10x)",
                r.load_speedup
            );
            failed = true;
        }
        if r.fit_speedup < 2.0 {
            eprintln!(
                "GATE FAILED (20k fit): sketched only {:.2}x faster than exact (need 2x)",
                r.fit_speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("  gates: OK");
}
