//! §5.2 — the actionable output of the paper: per-course PDC anchor-point
//! recommendations, with resolved PDC12 topics and CS2013 anchors.

use anchors_bench::{header, seed, write_artifact};
use anchors_core::{anchor_sites, recommend_for_course};
use anchors_corpus::generate;
use anchors_curricula::{cs2013, pdc12};

fn main() {
    let corpus = generate(seed());
    let cs = cs2013();
    let pdc = pdc12();

    header("PDC anchor-point recommendations (§5.2)");
    let mut out = String::new();
    for &cid in corpus.all() {
        let recs = recommend_for_course(&corpus.store, cs, pdc, cid);
        if recs.is_empty() {
            continue;
        }
        out.push_str(&format!("\n{}\n", corpus.store.course(cid).name));
        for r in recs {
            out.push_str(&format!("  [{:?}] {}\n", r.flavor, r.title));
            out.push_str(&format!("    activity : {}\n", r.activity));
            out.push_str(&format!(
                "    teaches  : {}\n",
                r.pdc_topics
                    .iter()
                    .map(|c| format!(
                        "{c} ({})",
                        pdc.node(pdc.by_code(c).unwrap())
                            .label
                            .chars()
                            .take(48)
                            .collect::<String>()
                    ))
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
            out.push_str(&format!(
                "    anchors  : {}\n",
                r.anchors
                    .iter()
                    .map(|c| format!("{c} ({})", cs.node(cs.by_code(c).unwrap()).label))
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
            let sites = anchor_sites(&corpus.store, cs, cid, &r);
            if !sites.is_empty() {
                let names: Vec<String> = sites
                    .iter()
                    .take(3)
                    .map(|&(mid, hits)| {
                        format!("{} ({hits} tags)", corpus.store.material(mid).name)
                    })
                    .collect();
                out.push_str(&format!("    splice at: {}\n", names.join("; ")));
            }
        }
    }
    print!("{out}");
    write_artifact("anchors_recommendations.txt", &out);
}
