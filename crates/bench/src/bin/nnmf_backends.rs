//! Dense vs CSR backend smoke benchmark for the storage-generic NNMF.
//!
//! Fits the same synthetic sparse matrix (2000 × 1024, ~5% density, k = 8)
//! through both storage backends of the one generic solver and reports the
//! wall-clock ratio. Because the kernels are bitwise-paired, both fits
//! produce identical factors — the only difference is time. Emits
//! `BENCH_nnmf.json` at the workspace root (and a copy under
//! `target/figures/`) for CI to archive.
//!
//! Knobs: `ANCHORS_BENCH_ROWS`, `ANCHORS_BENCH_COLS`, `ANCHORS_BENCH_K`
//! env vars override the problem size for quicker local smoke runs.

use anchors_bench::{figures_dir, header};
use anchors_factor::{nnmf, NnmfConfig, Solver};
use anchors_linalg::{CsrMatrix, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Seeded synthetic matrix: each entry is nonzero with probability
/// `density`, magnitudes uniform in (0.1, 1.0].
fn synthetic(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen::<f64>() < density {
            rng.gen_range(0.1..=1.0)
        } else {
            0.0
        }
    })
}

fn main() {
    let rows = env_usize("ANCHORS_BENCH_ROWS", 2000);
    let cols = env_usize("ANCHORS_BENCH_COLS", 1024);
    let k = env_usize("ANCHORS_BENCH_K", 8);
    let target_density = 0.05;

    header("NNMF backend comparison (storage-generic solver)");
    let a = synthetic(rows, cols, target_density, 0xBEEF);
    let s = CsrMatrix::from_dense(&a);
    let density = s.density();
    println!("  matrix: {rows} x {cols}, density {density:.4}, k = {k}");

    let cfg = NnmfConfig {
        k,
        solver: Solver::Hals,
        restarts: 1,
        max_iter: 30,
        tol: 0.0, // run the full iteration budget on both backends
        ..NnmfConfig::paper_default(k)
    };

    let t0 = Instant::now();
    let dm = nnmf(&a, &cfg);
    let dense_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let sm = nnmf(&s, &cfg);
    let sparse_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_eq!(dm.w, sm.w, "backends must produce identical factors");
    assert_eq!(dm.h, sm.h, "backends must produce identical factors");

    let speedup = dense_ms / sparse_ms.max(1e-9);
    println!("  dense fit:  {dense_ms:>10.1} ms (loss {:.4})", dm.loss);
    println!("  sparse fit: {sparse_ms:>10.1} ms (loss {:.4})", sm.loss);
    println!("  speedup:    {speedup:>10.2}x (CSR over dense)");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"nnmf_dense_vs_sparse\",\n",
            "  \"rows\": {},\n",
            "  \"cols\": {},\n",
            "  \"density\": {:.6},\n",
            "  \"k\": {},\n",
            "  \"solver\": \"hals\",\n",
            "  \"max_iter\": {},\n",
            "  \"dense_ms\": {:.3},\n",
            "  \"sparse_ms\": {:.3},\n",
            "  \"speedup\": {:.3},\n",
            "  \"factors_identical\": true\n",
            "}}\n"
        ),
        rows, cols, density, k, cfg.max_iter, dense_ms, sparse_ms, speedup
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let root_path = root.join("BENCH_nnmf.json");
    std::fs::write(&root_path, &json).expect("write BENCH_nnmf.json");
    println!("  wrote {}", root_path.display());
    std::fs::write(figures_dir().join("BENCH_nnmf.json"), &json).expect("write figures copy");

    if speedup < 3.0 && rows >= 2000 {
        eprintln!("WARNING: CSR speedup {speedup:.2}x below the 3x target at full size");
        std::process::exit(1);
    }
}
