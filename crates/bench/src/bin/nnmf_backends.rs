//! Kernel and backend smoke benchmark for the storage-generic NNMF.
//!
//! Fits the same synthetic sparse matrix (2000 × 1024, ~5% density, k = 8)
//! three ways through the one generic solver:
//!
//! 1. dense storage, scalar kernels (`ANCHORS_KERNEL=scalar` equivalent) —
//!    the historical baseline;
//! 2. dense storage, cache-blocked microkernels — the default dispatch at
//!    this size;
//! 3. CSR storage, blocked kernels.
//!
//! Because the blocked kernels preserve the scalar per-entry reduction
//! order, and the CSR kernels are bitwise-paired with dense, all three
//! fits produce identical factors — the only difference is time. The run
//! gates on `kernel_speedup ≥ 2×` (blocked over scalar, dense) and
//! `speedup ≥ 3×` (CSR over scalar dense) at full size, and emits
//! `BENCH_nnmf.json` at the workspace root (plus a copy under
//! `target/figures/`) for CI to archive.
//!
//! Knobs: `ANCHORS_BENCH_ROWS`, `ANCHORS_BENCH_COLS`, `ANCHORS_BENCH_K`
//! env vars override the problem size for quicker local smoke runs.

use anchors_bench::{figures_dir, header};
use anchors_factor::{nnmf, NnmfConfig, Solver};
use anchors_linalg::{set_kernel_mode, CsrMatrix, KernelMode, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Seeded synthetic matrix: each entry is nonzero with probability
/// `density`, magnitudes uniform in (0.1, 1.0].
fn synthetic(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen::<f64>() < density {
            rng.gen_range(0.1..=1.0)
        } else {
            0.0
        }
    })
}

fn main() {
    let rows = env_usize("ANCHORS_BENCH_ROWS", 2000);
    let cols = env_usize("ANCHORS_BENCH_COLS", 1024);
    let k = env_usize("ANCHORS_BENCH_K", 8);
    let max_iter = env_usize("ANCHORS_BENCH_MAXITER", 30);
    let target_density = 0.05;

    header("NNMF kernel/backend comparison (storage-generic solver)");
    let a = synthetic(rows, cols, target_density, 0xBEEF);
    let s = CsrMatrix::from_dense(&a);
    let density = s.density();
    println!("  matrix: {rows} x {cols}, density {density:.4}, k = {k}");

    let cfg = NnmfConfig {
        k,
        solver: Solver::Hals,
        restarts: 1,
        max_iter,
        tol: 0.0, // run the full iteration budget on every configuration
        ..NnmfConfig::paper_default(k)
    };

    set_kernel_mode(Some(KernelMode::Scalar));
    let t0 = Instant::now();
    let scalar_model = nnmf(&a, &cfg);
    let dense_scalar_ms = t0.elapsed().as_secs_f64() * 1e3;

    set_kernel_mode(Some(KernelMode::Blocked));
    let t1 = Instant::now();
    let blocked_model = nnmf(&a, &cfg);
    let dense_blocked_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let sparse_model = nnmf(&s, &cfg);
    let sparse_ms = t2.elapsed().as_secs_f64() * 1e3;
    set_kernel_mode(None);

    assert_eq!(
        scalar_model.w, blocked_model.w,
        "scalar and blocked kernels must produce identical factors"
    );
    assert_eq!(
        scalar_model.h, blocked_model.h,
        "scalar and blocked kernels must produce identical factors"
    );
    assert_eq!(
        blocked_model.w, sparse_model.w,
        "backends must produce identical factors"
    );
    assert_eq!(
        blocked_model.h, sparse_model.h,
        "backends must produce identical factors"
    );

    // Both ratios measure against the same scalar dense baseline, so the
    // CSR gate keeps its historical meaning after the kernel change.
    let kernel_speedup = dense_scalar_ms / dense_blocked_ms.max(1e-9);
    let speedup = dense_scalar_ms / sparse_ms.max(1e-9);
    println!(
        "  dense fit (scalar):  {dense_scalar_ms:>10.1} ms (loss {:.4})",
        scalar_model.loss
    );
    println!(
        "  dense fit (blocked): {dense_blocked_ms:>10.1} ms (loss {:.4})",
        blocked_model.loss
    );
    println!(
        "  sparse fit:          {sparse_ms:>10.1} ms (loss {:.4})",
        sparse_model.loss
    );
    println!("  kernel speedup:      {kernel_speedup:>10.2}x (blocked over scalar, dense)");
    println!("  speedup:             {speedup:>10.2}x (CSR over scalar dense)");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"nnmf_dense_vs_sparse\",\n",
            "  \"rows\": {},\n",
            "  \"cols\": {},\n",
            "  \"density\": {:.6},\n",
            "  \"k\": {},\n",
            "  \"solver\": \"hals\",\n",
            "  \"max_iter\": {},\n",
            "  \"dense_scalar_ms\": {:.3},\n",
            "  \"dense_blocked_ms\": {:.3},\n",
            "  \"sparse_ms\": {:.3},\n",
            "  \"kernel_speedup\": {:.3},\n",
            "  \"speedup\": {:.3},\n",
            "  \"factors_identical\": true\n",
            "}}\n"
        ),
        rows,
        cols,
        density,
        k,
        cfg.max_iter,
        dense_scalar_ms,
        dense_blocked_ms,
        sparse_ms,
        kernel_speedup,
        speedup
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let root_path = root.join("BENCH_nnmf.json");
    std::fs::write(&root_path, &json).expect("write BENCH_nnmf.json");
    println!("  wrote {}", root_path.display());
    std::fs::write(figures_dir().join("BENCH_nnmf.json"), &json).expect("write figures copy");

    let mut failed = false;
    if kernel_speedup < 2.0 && rows >= 2000 {
        eprintln!(
            "WARNING: blocked-kernel speedup {kernel_speedup:.2}x below the 2x target at full size"
        );
        failed = true;
    }
    if speedup < 3.0 && rows >= 2000 {
        eprintln!("WARNING: CSR speedup {speedup:.2}x below the 3x target at full size");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
