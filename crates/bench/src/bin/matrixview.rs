//! §3.1.1 — the bi-clustered matrix view of CS Materials: materials as
//! columns, curriculum tags as rows, spectral co-clustering exposing the
//! block structure.

use anchors_bench::{compare, header, seed, write_artifact};
use anchors_core::matrix_view;
use anchors_corpus::generate;
use anchors_curricula::cs2013;

fn main() {
    let corpus = generate(seed());
    let g = cs2013();

    header("Matrix view: one OOP course + one algorithms course");
    let courses: Vec<_> = corpus
        .all()
        .iter()
        .copied()
        .filter(|&c| {
            let n = &corpus.store.course(c).name;
            n.contains("3112") || n.contains("2215")
        })
        .collect();
    let view = matrix_view(&corpus.store, &courses, 2, seed());
    let txt = view.render_text(&corpus.store, g);
    // The full rendering is large; print the head and write the artifact.
    for line in txt.lines().take(20) {
        println!("{line}");
    }
    println!("  …");
    write_artifact("matrixview_oop_vs_algo.txt", &txt);
    compare(
        "block purity of two-course view",
        "near 1 (courses are disjoint blocks)",
        format!("{:.2}", view.purity),
    );

    header("Matrix view: all five DS courses");
    let view = matrix_view(&corpus.store, &corpus.ds_group(), 5, seed());
    write_artifact(
        "matrixview_ds_courses.txt",
        &view.render_text(&corpus.store, g),
    );
    // DS courses share one core block (the §4.5 agreement finding), so the
    // co-clustering collapses most mass into a single bicluster — report
    // the dominant-cluster share rather than purity, which is trivially 1.
    let mut sizes = std::collections::BTreeMap::new();
    for &l in &view.bicluster.col_labels {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let dominant = sizes.values().copied().max().unwrap_or(0);
    compare(
        "share of DS materials in the dominant bicluster",
        "high (shared DS core)",
        format!(
            "{:.0}% of {} materials",
            100.0 * dominant as f64 / view.bicluster.col_labels.len().max(1) as f64,
            view.bicluster.col_labels.len()
        ),
    );
}
