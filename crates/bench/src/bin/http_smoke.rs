//! HTTP front-end smoke benchmark: serial vs pooled throughput, plus an
//! overload phase that must shed cleanly.
//!
//! Fits one small model, serves it over loopback with `anchors-server`,
//! and measures three phases:
//!
//! 1. **serial** — one worker, one closed-loop keep-alive client;
//! 2. **pooled** — a worker pool with `2×workers` concurrent clients,
//!    which must not be slower than serial (gate active when the
//!    machine has ≥ 2 hardware threads);
//! 3. **overload** — one deliberately slowed worker behind a depth-2
//!    queue under an 8-client burst, which must shed ≥ 1 connection
//!    with `503 Retry-After` while every accepted request still gets a
//!    real response.
//!
//! Emits `BENCH_http.json` at the workspace root (and a copy under
//! `target/figures/`) for CI to archive. Knobs: `ANCHORS_HTTP_REQUESTS`
//! (per-client request count), `ANCHORS_BENCH_TAGS`, `ANCHORS_BENCH_K`.

use anchors_bench::{figures_dir, header};
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{nnmf, NnmfConfig, Solver};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_serve::{FittedModel, Registry};
use anchors_server::{AppState, Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Percentile (µs) of a sorted latency vector.
fn percentile_us(sorted: &[u128], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx] as f64
}

/// Run `clients` closed-loop keep-alive clients, `requests` each.
/// Returns (total wall seconds, sorted per-request latencies in µs).
fn drive(
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    body: &Arc<Vec<u8>>,
) -> (f64, Vec<u128>) {
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..clients {
        let body = Arc::clone(body);
        threads.push(thread::spawn(move || {
            let mut client =
                Client::connect(addr, Duration::from_secs(10)).expect("bench client connect");
            let mut lat = Vec::with_capacity(requests);
            for _ in 0..requests {
                let t = Instant::now();
                let resp = client
                    .request("POST", "/v1/recommend", &body)
                    .expect("bench request");
                assert_eq!(resp.status, 200, "{}", resp.text());
                lat.push(t.elapsed().as_micros());
            }
            lat
        }));
    }
    let mut all: Vec<u128> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("bench client"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    all.sort_unstable();
    (wall, all)
}

fn main() {
    let requests = env_usize("ANCHORS_HTTP_REQUESTS", 400);
    let n_tags = env_usize("ANCHORS_BENCH_TAGS", 128);
    let k = env_usize("ANCHORS_BENCH_K", 4);
    let hw_threads = thread::available_parallelism().map_or(1, |n| n.get());

    header("HTTP front end: serial vs pooled vs overload");

    // One quick HALS fit over a real CS2013 tag-space prefix, published
    // through a registry exactly as production serving would be.
    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(n_tags));
    let mut rng = StdRng::seed_from_u64(0xA11C);
    let train = Matrix::from_fn(
        128,
        n_tags,
        |_, _| {
            if rng.gen::<f64>() < 0.05 {
                1.0
            } else {
                0.0
            }
        },
    );
    let cfg = NnmfConfig {
        solver: Solver::Hals,
        restarts: 1,
        max_iter: 20,
        ..NnmfConfig::paper_default(k)
    };
    let model = nnmf(&train, &cfg);
    let artifact =
        FittedModel::new("http-smoke", cs, &space, &model, Backend::Dense).expect("artifact");
    let dir = std::env::temp_dir().join(format!("anchors-http-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::open(&dir).expect("registry");
    registry.save(&artifact).expect("save model");

    // A fixed ~8-tag query body drawn from the artifact's dotted codes.
    let tags: Vec<String> = artifact
        .tag_codes
        .iter()
        .step_by((n_tags / 8).max(1))
        .map(|c| format!("\"{c}\""))
        .collect();
    let body = Arc::new(
        format!(
            r#"{{"name":"bench","labels":["DS"],"tags":[{}]}}"#,
            tags.join(",")
        )
        .into_bytes(),
    );
    println!(
        "  model: k = {k}, {n_tags} tags; {requests} requests/client; {hw_threads} hw threads"
    );

    // Phase 1: serial — one worker, one client.
    let state = Arc::new(
        AppState::from_registry(Registry::open(&dir).expect("registry"), cs, pdc12())
            .expect("state"),
    );
    let handle = Server::start(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("serial server");
    let (serial_wall, serial_lat) = drive(handle.addr(), 1, requests, &body);
    handle.shutdown();
    let serial_rps = requests as f64 / serial_wall.max(1e-9);
    let serial_p50 = percentile_us(&serial_lat, 0.50);
    let serial_p99 = percentile_us(&serial_lat, 0.99);
    println!(
        "  serial: {serial_rps:>9.0} req/s   p50 {serial_p50:>6.0} µs   p99 {serial_p99:>6.0} µs"
    );

    // Phase 2: pooled — worker pool, 2× concurrent clients.
    let workers = hw_threads.max(2);
    let pool_clients = workers * 2;
    let state = Arc::new(
        AppState::from_registry(Registry::open(&dir).expect("registry"), cs, pdc12())
            .expect("state"),
    );
    let handle = Server::start(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_depth: pool_clients * 2,
            ..ServerConfig::default()
        },
    )
    .expect("pooled server");
    let per_client = (requests / pool_clients).max(1);
    let (pooled_wall, pooled_lat) = drive(handle.addr(), pool_clients, per_client, &body);
    handle.shutdown();
    let pooled_total = pool_clients * per_client;
    let pooled_rps = pooled_total as f64 / pooled_wall.max(1e-9);
    let pooled_p50 = percentile_us(&pooled_lat, 0.50);
    let pooled_p99 = percentile_us(&pooled_lat, 0.99);
    let speedup = pooled_rps / serial_rps.max(1e-9);
    println!("  pooled: {pooled_rps:>9.0} req/s   p50 {pooled_p50:>6.0} µs   p99 {pooled_p99:>6.0} µs   ({workers} workers, {pool_clients} clients, {speedup:.2}x)");

    // Phase 3: overload — slow lone worker, tiny queue, 8-client burst.
    let state = Arc::new(
        AppState::from_registry(Registry::open(&dir).expect("registry"), cs, pdc12())
            .expect("state"),
    );
    let handle = Server::start(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 2,
            handler_delay: Some(Duration::from_millis(5)),
            ..ServerConfig::default()
        },
    )
    .expect("overload server");
    let addr = handle.addr();
    const BURST: usize = 8;
    let mut burst = Vec::new();
    for _ in 0..BURST {
        let body = Arc::clone(&body);
        burst.push(thread::spawn(move || {
            let mut client = Client::connect(addr, Duration::from_secs(10)).expect("burst connect");
            client
                .request("POST", "/v1/recommend", &body)
                .expect("every accepted connection is answered")
                .status
        }));
    }
    let statuses: Vec<u16> = burst
        .into_iter()
        .map(|t| t.join().expect("burst client"))
        .collect();
    let served = statuses.iter().filter(|&&s| s == 200).count();
    let shed = statuses.iter().filter(|&&s| s == 503).count();
    let dropped = statuses.len() - served - shed;
    handle.shutdown();
    println!("  overload: {served} served, {shed} shed with 503, {dropped} dropped (of {BURST})");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"http_serial_vs_pooled\",\n",
            "  \"requests\": {},\n",
            "  \"tags\": {},\n",
            "  \"k\": {},\n",
            "  \"hw_threads\": {},\n",
            "  \"workers\": {},\n",
            "  \"serial_rps\": {:.1},\n",
            "  \"serial_p50_us\": {:.0},\n",
            "  \"serial_p99_us\": {:.0},\n",
            "  \"pooled_rps\": {:.1},\n",
            "  \"pooled_p50_us\": {:.0},\n",
            "  \"pooled_p99_us\": {:.0},\n",
            "  \"speedup\": {:.3},\n",
            "  \"overload_served\": {},\n",
            "  \"overload_shed_503\": {},\n",
            "  \"overload_dropped\": {}\n",
            "}}\n"
        ),
        requests,
        n_tags,
        k,
        hw_threads,
        workers,
        serial_rps,
        serial_p50,
        serial_p99,
        pooled_rps,
        pooled_p50,
        pooled_p99,
        speedup,
        served,
        shed,
        dropped
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let root_path = root.join("BENCH_http.json");
    std::fs::write(&root_path, &json).expect("write BENCH_http.json");
    println!("  wrote {}", root_path.display());
    std::fs::write(figures_dir().join("BENCH_http.json"), &json).expect("write figures copy");
    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if hw_threads >= 2 && pooled_rps < serial_rps {
        eprintln!("WARNING: pooled throughput ({pooled_rps:.0} req/s) fell below serial ({serial_rps:.0} req/s) on {hw_threads} hw threads");
        failed = true;
    }
    if shed == 0 {
        eprintln!("WARNING: overload phase shed nothing — backpressure did not engage");
        failed = true;
    }
    if dropped > 0 {
        eprintln!("WARNING: {dropped} request(s) got no HTTP response under overload");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
