//! Serving-layer smoke benchmark: batched vs one-at-a-time fold-in.
//!
//! Fits one model (synthetic sparse course matrix over a real CS2013 tag
//! space), freezes it in a `QueryEngine`, then answers the same 512
//! unseen-course queries two ways: 512 independent single-row NNLS solves
//! versus one matrix-level `fold_in_batch` (Gram matrix and all
//! cross-products formed once). Both paths produce bitwise-identical
//! loadings — the only difference is time. A CSR batch of the same
//! queries is timed as well, since real query vectors are a handful of
//! tags wide. Emits `BENCH_serve.json` at the workspace root (and a copy
//! under `target/figures/`) for CI to archive.
//!
//! The same artifact is also frozen at `Precision::F32` and the per-query
//! fold-in latency is measured for both precisions (p50 over the query
//! set), along with the worst per-row relative error of the `f32`
//! loadings — asserted against the documented
//! `F32_FOLD_IN_MAX_REL_ERR` bound, so a serving-layer precision
//! regression fails the bench rather than shipping.
//!
//! Knobs: `ANCHORS_BENCH_QUERIES`, `ANCHORS_BENCH_TAGS`,
//! `ANCHORS_BENCH_K` env vars override the problem size for quicker
//! local smoke runs.

use anchors_bench::{figures_dir, header};
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{nnmf, NnmfConfig, Solver};
use anchors_linalg::{Backend, CsrMatrix, Matrix};
use anchors_materials::TagSpace;
use anchors_serve::{
    fold_in_max_rel_err, BatchQueue, CourseQuery, FittedModel, Precision, QueryEngine,
    F32_FOLD_IN_MAX_REL_ERR,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_queries = env_usize("ANCHORS_BENCH_QUERIES", 512);
    let n_tags = env_usize("ANCHORS_BENCH_TAGS", 512);
    let k = env_usize("ANCHORS_BENCH_K", 8);

    header("Serving fold-in: batched vs one-at-a-time");

    // Train on a synthetic corpus over a real CS2013 tag-space prefix so
    // the artifact round-trips real dotted codes.
    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(n_tags));
    let mut rng = StdRng::seed_from_u64(0xA11C);
    let train = Matrix::from_fn(
        256,
        n_tags,
        |_, _| {
            if rng.gen::<f64>() < 0.05 {
                1.0
            } else {
                0.0
            }
        },
    );
    let cfg = NnmfConfig {
        solver: Solver::Hals,
        restarts: 1,
        max_iter: 20,
        ..NnmfConfig::paper_default(k)
    };
    let model = nnmf(&train, &cfg);
    let artifact =
        FittedModel::new("serve-smoke", cs, &space, &model, Backend::Dense).expect("artifact");
    let engine = QueryEngine::new(artifact.clone(), cs, pdc12()).expect("engine");
    let engine_f32 =
        QueryEngine::with_precision(artifact, cs, pdc12(), Precision::F32).expect("f32 engine");
    println!("  model: k = {k}, {n_tags} tags; {n_queries} unseen queries");

    // Unseen queries: sparse binary tag rows, ~8 tags each.
    let batch = Matrix::from_fn(n_queries, n_tags, |_, _| {
        if rng.gen::<f64>() < 8.0 / n_tags as f64 {
            1.0
        } else {
            0.0
        }
    });
    let csr_batch = CsrMatrix::from_dense(&batch);

    let t0 = Instant::now();
    let mut single = Matrix::zeros(n_queries, k);
    for i in 0..n_queries {
        let w = engine.fold_in_row(batch.row(i)).expect("single fold-in");
        single.row_mut(i).copy_from_slice(&w);
    }
    let single_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let batched = engine.fold_in_batch(&batch).expect("batched fold-in");
    let batched_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let csr = engine.fold_in_batch(&csr_batch).expect("CSR fold-in");
    let csr_ms = t2.elapsed().as_secs_f64() * 1e3;

    assert_eq!(batched, csr, "dense and CSR batches must agree bitwise");
    for i in 0..n_queries {
        assert_eq!(
            single.row(i),
            batched.row(i),
            "batched fold-in must reproduce the one-at-a-time answer"
        );
    }

    // End-to-end BatchQueue drain: per-query tag resolution and
    // vectorization (fans out across the outer pool), one batched solve,
    // and full response assembly.
    let codes = &engine.model().tag_codes;
    let queries: Vec<CourseQuery> = (0..n_queries)
        .map(|i| {
            let tags: Vec<String> = batch
                .row(i)
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(j, _)| codes[j].clone())
                .collect();
            CourseQuery::new(format!("q{i}"), vec![], tags)
        })
        .collect();
    let mut queue = BatchQueue::new();
    for q in queries {
        queue.push(q);
    }
    let t3 = Instant::now();
    let responses = queue.flush(&engine).expect("queue flush");
    let flush_ms = t3.elapsed().as_secs_f64() * 1e3;
    assert_eq!(responses.len(), n_queries);
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(
            r.loadings,
            batched.row(i),
            "queue drain must reproduce the batched fold-in loadings"
        );
    }
    let flush_qps = n_queries as f64 / (flush_ms / 1e3).max(1e-9);
    let threads = match anchors_linalg::parallel::num_threads() {
        0 => anchors_linalg::parallel::max_threads(),
        n => n,
    };

    // Per-query latency pair: the same single-row fold-in timed at f64 and
    // f32, reported as the p50 over the query set.
    let p50_us = |engine: &QueryEngine| -> f64 {
        let mut us: Vec<f64> = (0..n_queries)
            .map(|i| {
                let t = Instant::now();
                let w = engine.fold_in_row(batch.row(i)).expect("fold-in row");
                let dt = t.elapsed().as_secs_f64() * 1e6;
                std::hint::black_box(w);
                dt
            })
            .collect();
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        us[us.len() / 2]
    };
    let query_f64_p50_us = p50_us(&engine);
    let query_f32_p50_us = p50_us(&engine_f32);

    // Accuracy of the narrowed path: worst per-row relative error of the
    // f32 loadings against the f64 reference, gated on the documented
    // serving-layer bound.
    let batched_f32 = engine_f32.fold_in_batch(&batch).expect("f32 fold-in");
    let f32_max_rel_err = fold_in_max_rel_err(&batched, &batched_f32);
    assert!(
        f32_max_rel_err <= F32_FOLD_IN_MAX_REL_ERR,
        "f32 fold-in error {f32_max_rel_err:.3e} exceeds the documented bound {F32_FOLD_IN_MAX_REL_ERR:.0e}"
    );

    let speedup = single_ms / batched_ms.max(1e-9);
    println!("  one-at-a-time: {single_ms:>10.1} ms");
    println!("  batched:       {batched_ms:>10.1} ms");
    println!("  batched (CSR): {csr_ms:>10.1} ms");
    println!("  queue drain:   {flush_ms:>10.1} ms ({flush_qps:.0} q/s on {threads} threads)");
    println!("  speedup:       {speedup:>10.2}x (batched over one-at-a-time)");
    println!(
        "  query p50:     {query_f64_p50_us:>10.1} us (f64)   {query_f32_p50_us:>8.1} us (f32)"
    );
    println!("  f32 max rel err: {f32_max_rel_err:.3e} (bound {F32_FOLD_IN_MAX_REL_ERR:.0e})");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"serve_fold_in_batched_vs_single\",\n",
            "  \"queries\": {},\n",
            "  \"tags\": {},\n",
            "  \"k\": {},\n",
            "  \"single_ms\": {:.3},\n",
            "  \"batched_ms\": {:.3},\n",
            "  \"batched_csr_ms\": {:.3},\n",
            "  \"flush_ms\": {:.3},\n",
            "  \"flush_qps\": {:.1},\n",
            "  \"threads\": {},\n",
            "  \"speedup\": {:.3},\n",
            "  \"query_f64_p50_us\": {:.2},\n",
            "  \"query_f32_p50_us\": {:.2},\n",
            "  \"f32_max_rel_err\": {:.6e},\n",
            "  \"f32_err_bound\": {:.0e},\n",
            "  \"loadings_identical\": true\n",
            "}}\n"
        ),
        n_queries,
        n_tags,
        k,
        single_ms,
        batched_ms,
        csr_ms,
        flush_ms,
        flush_qps,
        threads,
        speedup,
        query_f64_p50_us,
        query_f32_p50_us,
        f32_max_rel_err,
        F32_FOLD_IN_MAX_REL_ERR
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let root_path = root.join("BENCH_serve.json");
    std::fs::write(&root_path, &json).expect("write BENCH_serve.json");
    println!("  wrote {}", root_path.display());
    std::fs::write(figures_dir().join("BENCH_serve.json"), &json).expect("write figures copy");

    if speedup < 1.0 && n_queries >= 512 {
        eprintln!("WARNING: batched fold-in ({batched_ms:.1} ms) did not beat one-at-a-time ({single_ms:.1} ms)");
        std::process::exit(1);
    }
}
