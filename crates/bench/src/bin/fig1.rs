//! Figure 1 — the course roster table.
//!
//! Regenerates the dataset table: course name, institution, instructor, and
//! family labels, plus the per-course classification sizes of the synthetic
//! corpus.

use anchors_bench::{header, seed, write_artifact};
use anchors_corpus::generate;
use anchors_materials::CourseLabel;

const LABELS: [CourseLabel; 8] = [
    CourseLabel::Cs1,
    CourseLabel::Cs2,
    CourseLabel::Oop,
    CourseLabel::DataStructures,
    CourseLabel::Algorithms,
    CourseLabel::SoftEng,
    CourseLabel::Pdc,
    CourseLabel::Network,
];

fn main() {
    let corpus = generate(seed());
    header("Figure 1: Courses in the dataset");
    let mut out = String::new();
    out.push_str(&format!(
        "{:<72} {:>5} {:>4} {:>4} {:>4} {:>4} {:>7} {:>4} {:>4} | {:>5} {:>5}\n",
        "Class Name", "CS1", "CS2", "OOP", "DS", "Algo", "SoftEng", "PDC", "Net", "tags", "mats"
    ));
    for &cid in corpus.all() {
        let c = corpus.store.course(cid);
        let mut row = format!("{:<72}", c.name);
        for l in LABELS {
            row.push_str(&format!(" {:>4}", if c.has_label(l) { "X" } else { "" }));
            if l == CourseLabel::SoftEng {
                row.push_str("   ");
            }
        }
        row.push_str(&format!(
            " | {:>5} {:>5}",
            corpus.store.course_tags(cid).len(),
            c.materials.len()
        ));
        out.push_str(&row);
        out.push('\n');
    }
    out.push_str(&format!(
        "\n{} courses, {} materials, {} distinct tags in use\n",
        corpus.store.course_count(),
        corpus.store.material_count(),
        anchors_materials::CourseMatrix::build(&corpus.store, corpus.all()).n_tags()
    ));
    print!("{out}");
    write_artifact("fig1_roster.txt", &out);
}
