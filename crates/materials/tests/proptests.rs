//! Property-based tests of the CS Materials substrate over randomized
//! classifications of real guideline tags.

use anchors_curricula::{cs2013, NodeId};
use anchors_materials::*;
use proptest::prelude::*;

/// Strategy: a random subset of real CS2013 leaf items.
fn tag_subset() -> impl Strategy<Value = Vec<NodeId>> {
    let n_leaves = cs2013().leaf_items().len();
    prop::collection::btree_set(0usize..n_leaves, 0..60).prop_map(|idx| {
        let leaves = cs2013().leaf_items();
        idx.into_iter().map(|i| leaves[i]).collect()
    })
}

/// Strategy: a store with 2–5 courses carrying random tag sets.
fn random_store() -> impl Strategy<Value = (MaterialStore, Vec<CourseId>)> {
    prop::collection::vec(tag_subset(), 2..6).prop_map(|course_tags| {
        let mut store = MaterialStore::new();
        let mut ids = Vec::new();
        for (i, tags) in course_tags.into_iter().enumerate() {
            let c = store.add_course(
                format!("course {i}"),
                "U",
                format!("I{i}"),
                vec![CourseLabel::Cs1],
                None,
            );
            // Split tags across two materials.
            let half = tags.len() / 2;
            store.add_material(
                c,
                "m1",
                MaterialKind::Lecture,
                format!("I{i}"),
                None,
                vec![],
                tags[..half].to_vec(),
            );
            store.add_material(
                c,
                "m2",
                MaterialKind::Assignment,
                format!("I{i}"),
                None,
                vec![],
                tags[half..].to_vec(),
            );
            ids.push(c);
        }
        (store, ids)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stores_validate((store, _) in random_store()) {
        prop_assert!(store.validate(cs2013()).is_ok());
    }

    #[test]
    fn course_matrix_is_binary_with_correct_row_sums((store, ids) in random_store()) {
        let cm = CourseMatrix::build(&store, &ids);
        for &v in cm.a.as_slice() {
            prop_assert!(v == 0.0 || v == 1.0);
        }
        for (i, &c) in ids.iter().enumerate() {
            let row_sum: f64 = cm.a.row(i).iter().sum();
            prop_assert_eq!(row_sum as usize, store.course_tags(c).len());
        }
    }

    #[test]
    fn agreement_counts_monotone_in_threshold((store, ids) in random_store()) {
        let cm = CourseMatrix::build(&store, &ids);
        let mut prev = usize::MAX;
        for m in 1..=ids.len() + 1 {
            let n = cm.tags_with_agreement(m).len();
            prop_assert!(n <= prev);
            prev = n;
        }
        prop_assert_eq!(cm.tags_with_agreement(ids.len() + 1).len(), 0);
    }

    #[test]
    fn agreement_tree_is_ancestor_closed((store, ids) in random_store()) {
        let g = cs2013();
        let cm = CourseMatrix::build(&store, &ids);
        let counts = cm.tags_with_agreement(1);
        for m in 1..=3 {
            let tree = AgreementTree::build(g, &counts, m);
            for &n in &tree.nodes {
                if let Some(p) = g.node(n).parent {
                    prop_assert!(tree.nodes.contains(&p), "missing ancestor of {}", g.node(n).code);
                }
            }
        }
    }

    #[test]
    fn hit_tree_root_counts_all_tags(tags in tag_subset()) {
        let g = cs2013();
        let h = HitTree::from_tags(g, &tags);
        prop_assert_eq!(h.total(), tags.len());
        // Each KA count equals its share of tags.
        let per_ka: usize = g
            .node(g.root())
            .children
            .iter()
            .map(|&ka| h.count(ka))
            .sum();
        prop_assert_eq!(per_ka, tags.len());
    }

    #[test]
    fn coverage_audit_is_consistent(tags in tag_subset()) {
        let g = cs2013();
        let report = CoverageReport::audit(g, &tags);
        let covered: usize = report.units.iter().map(|u| u.covered).sum();
        prop_assert_eq!(covered, tags.len(), "every tag lands in exactly one KU");
        for u in &report.units {
            prop_assert!(u.covered <= u.total);
        }
    }

    #[test]
    fn search_returns_subset_sorted((store, _) in random_store(), tags in tag_subset()) {
        let g = cs2013();
        let hits = search(&store, g, &Query::tags(tags.iter().copied()));
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            // Pure facet searches (no tags) legitimately return score 0.
            if !tags.is_empty() {
                prop_assert!(h.score > 0.0);
            }
            prop_assert!(h.exact_matches <= tags.len());
        }
    }

    #[test]
    fn similarity_graph_weights_are_proper((store, _) in random_store(), tags in tag_subset()) {
        let ids: Vec<MaterialId> = store.materials().iter().map(|m| m.id).take(8).collect();
        let graph = SimilarityGraph::build(&store, &tags, &ids);
        let n = graph.len();
        for i in 0..n {
            prop_assert_eq!(graph.weights[i][i], 1.0);
            for j in 0..n {
                prop_assert!((0.0..=1.0).contains(&graph.weights[i][j]));
                prop_assert_eq!(graph.weights[i][j], graph.weights[j][i]);
            }
        }
        let d = graph.distance_matrix();
        prop_assert!(anchors_linalg::distance::validate_distance_matrix(&d).is_ok());
    }

    #[test]
    fn alignment_misalignment_bounded(tags_a in tag_subset(), tags_b in tag_subset()) {
        let g = cs2013();
        let v = AlignmentView::build(g, &tags_a, &tags_b);
        let m = v.misalignment(g);
        prop_assert!((0.0..=1.0).contains(&m));
        // Self-alignment is perfect.
        let vv = AlignmentView::build(g, &tags_a, &tags_a);
        prop_assert_eq!(vv.misalignment(g), 0.0);
    }
}
