//! Material search (Section 3.1.2 of the paper).
//!
//! CS Materials lets instructors search for materials "related to certain
//! topics, learning objectives, and outcomes", filtered "by course level,
//! author, programming language and datasets used". Queries here combine a
//! curriculum-tag part (scored by weighted overlap, with partial credit for
//! hits in the same knowledge unit) with exact-match facets.

use crate::model::{Material, MaterialId, MaterialKind};
use crate::store::MaterialStore;
use anchors_curricula::{NodeId, Ontology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A search query against a [`MaterialStore`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Query {
    /// Curriculum items the ideal material covers.
    pub tags: Vec<NodeId>,
    /// Restrict to materials by this author.
    pub author: Option<String>,
    /// Restrict to materials in this programming language.
    pub language: Option<String>,
    /// Restrict to materials using this dataset.
    pub dataset: Option<String>,
    /// Restrict to a material kind.
    pub kind: Option<MaterialKind>,
    /// Keep only the `top_k` best results (0 = unlimited).
    pub top_k: usize,
}

impl Query {
    /// A pure tag query.
    pub fn tags(tags: impl IntoIterator<Item = NodeId>) -> Self {
        Query {
            tags: tags.into_iter().collect(),
            ..Query::default()
        }
    }

    /// Builder-style author facet.
    pub fn by_author(mut self, author: impl Into<String>) -> Self {
        self.author = Some(author.into());
        self
    }

    /// Builder-style language facet.
    pub fn in_language(mut self, language: impl Into<String>) -> Self {
        self.language = Some(language.into());
        self
    }

    /// Builder-style dataset facet.
    pub fn with_dataset(mut self, dataset: impl Into<String>) -> Self {
        self.dataset = Some(dataset.into());
        self
    }

    /// Builder-style kind facet.
    pub fn of_kind(mut self, kind: MaterialKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Builder-style result limit.
    pub fn limit(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }
}

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The material found.
    pub material: MaterialId,
    /// Relevance score (higher is better; exact tag matches dominate).
    pub score: f64,
    /// Number of query tags the material matches exactly.
    pub exact_matches: usize,
}

/// Weight of an exact tag match.
const W_EXACT: f64 = 1.0;
/// Weight of a same-knowledge-unit near match.
const W_SAME_KU: f64 = 0.25;
/// Weight of a same-knowledge-area far match.
const W_SAME_KA: f64 = 0.05;

fn facet_ok(m: &Material, q: &Query) -> bool {
    if let Some(a) = &q.author {
        if !m.author.eq_ignore_ascii_case(a) {
            return false;
        }
    }
    if let Some(l) = &q.language {
        match &m.language {
            Some(ml) if ml.eq_ignore_ascii_case(l) => {}
            _ => return false,
        }
    }
    if let Some(d) = &q.dataset {
        if !m.datasets.iter().any(|x| x.eq_ignore_ascii_case(d)) {
            return false;
        }
    }
    if let Some(k) = q.kind {
        if m.kind != k {
            return false;
        }
    }
    true
}

/// Score one material against a tag query.
fn score_material(ontology: &Ontology, m: &Material, qtags: &[NodeId]) -> (f64, usize) {
    if qtags.is_empty() {
        return (0.0, 0);
    }
    let mtags: BTreeSet<NodeId> = m.tags.iter().copied().collect();
    let mkus: BTreeSet<NodeId> = m
        .tags
        .iter()
        .filter_map(|&t| ontology.knowledge_unit_of(t))
        .collect();
    let mkas: BTreeSet<NodeId> = m
        .tags
        .iter()
        .filter_map(|&t| ontology.knowledge_area_of(t))
        .collect();
    let mut score = 0.0;
    let mut exact = 0usize;
    for &q in qtags {
        if mtags.contains(&q) {
            score += W_EXACT;
            exact += 1;
        } else if ontology
            .knowledge_unit_of(q)
            .is_some_and(|ku| mkus.contains(&ku))
        {
            score += W_SAME_KU;
        } else if ontology
            .knowledge_area_of(q)
            .is_some_and(|ka| mkas.contains(&ka))
        {
            score += W_SAME_KA;
        }
    }
    // Normalize by query size so scores are comparable across queries.
    (score / qtags.len() as f64, exact)
}

/// Run a query against the store. Results are sorted by descending score
/// (ties broken by material id for determinism); zero-score results are
/// dropped unless the query has no tags (pure facet search).
pub fn search(store: &MaterialStore, ontology: &Ontology, query: &Query) -> Vec<SearchHit> {
    let mut hits: Vec<SearchHit> = store
        .materials()
        .iter()
        .filter(|m| facet_ok(m, query))
        .filter_map(|m| {
            let (score, exact) = score_material(ontology, m, &query.tags);
            if query.tags.is_empty() {
                Some(SearchHit {
                    material: m.id,
                    score: 0.0,
                    exact_matches: 0,
                })
            } else if score > 0.0 {
                Some(SearchHit {
                    material: m.id,
                    score,
                    exact_matches: exact,
                })
            } else {
                None
            }
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.material.cmp(&b.material))
    });
    if query.top_k > 0 {
        hits.truncate(query.top_k);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CourseLabel;
    use anchors_curricula::cs2013;

    fn fixture() -> (MaterialStore, Vec<MaterialId>) {
        let g = cs2013();
        let mut s = MaterialStore::new();
        let c = s.add_course("C", "U", "I", vec![CourseLabel::Cs1], None);
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        let t3 = g.by_code("AL.BA.t1").unwrap();
        let nearby = g.by_code("SDF.FPC.t5").unwrap();
        let m1 = s.add_material(
            c,
            "exact",
            MaterialKind::Lecture,
            "alice",
            Some("C".into()),
            vec![],
            vec![t1, t2],
        );
        let m2 = s.add_material(
            c,
            "near",
            MaterialKind::Lecture,
            "bob",
            Some("Java".into()),
            vec![],
            vec![nearby],
        );
        let m3 = s.add_material(
            c,
            "far",
            MaterialKind::Assignment,
            "alice",
            Some("C".into()),
            vec!["earthquakes".into()],
            vec![t3],
        );
        (s, vec![m1, m2, m3])
    }

    #[test]
    fn exact_match_ranks_first() {
        let (s, ms) = fixture();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let hits = search(&s, g, &Query::tags([t1]));
        assert!(!hits.is_empty());
        assert_eq!(hits[0].material, ms[0]);
        assert_eq!(hits[0].exact_matches, 1);
        assert!(hits[0].score > hits.last().unwrap().score || hits.len() == 1);
    }

    #[test]
    fn same_ku_gets_partial_credit() {
        let (s, ms) = fixture();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let hits = search(&s, g, &Query::tags([t1]));
        let near = hits.iter().find(|h| h.material == ms[1]).expect("near hit");
        assert_eq!(near.exact_matches, 0);
        assert!((near.score - 0.25).abs() < 1e-12);
    }

    #[test]
    fn facets_restrict() {
        let (s, ms) = fixture();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let hits = search(&s, g, &Query::tags([t1]).by_author("alice"));
        assert!(hits.iter().all(|h| h.material != ms[1]));
        let hits = search(&s, g, &Query::tags([t1]).in_language("Java"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].material, ms[1]);
    }

    #[test]
    fn dataset_and_kind_facets() {
        let (s, ms) = fixture();
        let g = cs2013();
        let hits = search(&s, g, &Query::default().with_dataset("Earthquakes"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].material, ms[2]);
        let hits = search(&s, g, &Query::default().of_kind(MaterialKind::Lecture));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn top_k_truncates_deterministically() {
        let (s, _) = fixture();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let all = search(&s, g, &Query::tags([t1]));
        let one = search(&s, g, &Query::tags([t1]).limit(1));
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], all[0]);
    }

    #[test]
    fn empty_tag_query_with_no_facets_returns_everything() {
        let (s, _) = fixture();
        let g = cs2013();
        let hits = search(&s, g, &Query::default());
        assert_eq!(hits.len(), 3);
    }
}
