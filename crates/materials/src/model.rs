//! Core entities of the CS Materials substrate: materials, courses, and
//! their classifications against a curriculum guideline.

use anchors_curricula::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a material within a [`crate::store::MaterialStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MaterialId(pub u32);

/// Identifier of a course within a [`crate::store::MaterialStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CourseId(pub u32);

/// The pedagogical role of a material. The paper's workshops teach
/// instructors to study the *alignment* between content delivery (lectures),
/// activities (labs/assignments), and assessment (exams/quizzes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MaterialKind {
    /// Lecture slides or notes (content delivery).
    Lecture,
    /// Programming or written assignment (activity).
    Assignment,
    /// Supervised lab activity.
    Lab,
    /// Quiz or exam (assessment).
    Assessment,
    /// External reading or reference.
    Reading,
}

impl MaterialKind {
    /// All kinds, in a stable order.
    pub const ALL: [MaterialKind; 5] = [
        MaterialKind::Lecture,
        MaterialKind::Assignment,
        MaterialKind::Lab,
        MaterialKind::Assessment,
        MaterialKind::Reading,
    ];

    /// Coarse alignment group used in alignment studies.
    pub fn alignment_group(self) -> AlignmentGroup {
        match self {
            MaterialKind::Lecture | MaterialKind::Reading => AlignmentGroup::ContentDelivery,
            MaterialKind::Assignment | MaterialKind::Lab => AlignmentGroup::Activity,
            MaterialKind::Assessment => AlignmentGroup::Assessment,
        }
    }
}

/// The three material groups whose mutual alignment the workshops study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlignmentGroup {
    /// Lectures and readings.
    ContentDelivery,
    /// Assignments and labs.
    Activity,
    /// Quizzes and exams.
    Assessment,
}

/// Rough course family, assigned from the course name as in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CourseLabel {
    /// CS1 / introduction to programming.
    Cs1,
    /// CS2.
    Cs2,
    /// Object-oriented programming.
    Oop,
    /// Data structures.
    DataStructures,
    /// Algorithms / algorithm analysis.
    Algorithms,
    /// Software engineering.
    SoftEng,
    /// Parallel and distributed computing.
    Pdc,
    /// Computer networking.
    Network,
}

impl CourseLabel {
    /// Every label, in Figure-1 column order.
    pub const ALL: [CourseLabel; 8] = [
        CourseLabel::Cs1,
        CourseLabel::Cs2,
        CourseLabel::Oop,
        CourseLabel::DataStructures,
        CourseLabel::Algorithms,
        CourseLabel::SoftEng,
        CourseLabel::Pdc,
        CourseLabel::Network,
    ];

    /// Parse a label from its [`short`](CourseLabel::short) display
    /// string (case-insensitive), as wire formats send it. Returns
    /// `None` for anything else, so callers can reject unknown labels
    /// with their own typed error.
    pub fn parse(s: &str) -> Option<CourseLabel> {
        CourseLabel::ALL
            .into_iter()
            .find(|label| label.short().eq_ignore_ascii_case(s))
    }

    /// Short display string matching the Figure 1 column heads.
    pub fn short(&self) -> &'static str {
        match self {
            CourseLabel::Cs1 => "CS1",
            CourseLabel::Cs2 => "CS2",
            CourseLabel::Oop => "OOP",
            CourseLabel::DataStructures => "DS",
            CourseLabel::Algorithms => "Algo",
            CourseLabel::SoftEng => "SoftEng",
            CourseLabel::Pdc => "PDC",
            CourseLabel::Network => "Net",
        }
    }
}

/// A single learning material and its curriculum classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Material {
    /// Store-assigned id.
    pub id: MaterialId,
    /// Display name, e.g. `"Week 3: linked lists"`.
    pub name: String,
    /// Pedagogical kind.
    pub kind: MaterialKind,
    /// Author (usually the instructor).
    pub author: String,
    /// Programming language the material uses, if any.
    pub language: Option<String>,
    /// Names of datasets the material uses, if any (CS Materials records
    /// these for its search facets).
    pub datasets: Vec<String>,
    /// Curriculum items (topics/outcomes of the guideline ontology) this
    /// material is classified against.
    pub tags: Vec<NodeId>,
}

impl Material {
    /// Whether the material is tagged with `tag`.
    pub fn has_tag(&self, tag: NodeId) -> bool {
        self.tags.contains(&tag)
    }
}

/// A course: a named collection of materials.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Course {
    /// Store-assigned id.
    pub id: CourseId,
    /// Full display name as in Figure 1, e.g.
    /// `"UNCC ITCS 2214 KRS Data Structures and Algorithms"`.
    pub name: String,
    /// Institution short name.
    pub institution: String,
    /// Instructor surname.
    pub instructor: String,
    /// Course families the name maps to (a course can carry several, e.g.
    /// UCF COP3502 is labeled both CS1 and DS in Figure 1).
    pub labels: Vec<CourseLabel>,
    /// Primary implementation language of the course, if known.
    pub language: Option<String>,
    /// Materials belonging to this course.
    pub materials: Vec<MaterialId>,
}

impl Course {
    /// Whether the course carries the given label.
    pub fn has_label(&self, label: CourseLabel) -> bool {
        self.labels.contains(&label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_groups() {
        assert_eq!(
            MaterialKind::Lecture.alignment_group(),
            AlignmentGroup::ContentDelivery
        );
        assert_eq!(
            MaterialKind::Lab.alignment_group(),
            AlignmentGroup::Activity
        );
        assert_eq!(
            MaterialKind::Assessment.alignment_group(),
            AlignmentGroup::Assessment
        );
    }

    #[test]
    fn label_short_strings_unique() {
        let labels = [
            CourseLabel::Cs1,
            CourseLabel::Cs2,
            CourseLabel::Oop,
            CourseLabel::DataStructures,
            CourseLabel::Algorithms,
            CourseLabel::SoftEng,
            CourseLabel::Pdc,
            CourseLabel::Network,
        ];
        let mut shorts: Vec<&str> = labels.iter().map(|l| l.short()).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), labels.len());
    }

    #[test]
    fn material_has_tag() {
        let m = Material {
            id: MaterialId(0),
            name: "x".into(),
            kind: MaterialKind::Lecture,
            author: "a".into(),
            language: None,
            datasets: vec![],
            tags: vec![NodeId(3), NodeId(7)],
        };
        assert!(m.has_tag(NodeId(3)));
        assert!(!m.has_tag(NodeId(4)));
    }
}
