//! The material store: the registry at the heart of the CS Materials
//! substrate.
//!
//! A store owns a set of courses and their materials, all classified against
//! one guideline ontology (held by reference — the ontologies themselves are
//! process-wide, see `anchors-curricula`).

use crate::model::{Course, CourseId, CourseLabel, Material, MaterialId, MaterialKind};
use anchors_curricula::{NodeId, Ontology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A collection of classified courses and materials.
///
/// Invariants (checked by [`MaterialStore::validate`]):
/// * every material belongs to exactly one course;
/// * every tag on every material is a leaf item (topic/outcome) of the
///   guideline;
/// * ids are dense indices into the internal vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MaterialStore {
    courses: Vec<Course>,
    materials: Vec<Material>,
}

impl MaterialStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of courses.
    pub fn course_count(&self) -> usize {
        self.courses.len()
    }

    /// Number of materials across all courses.
    pub fn material_count(&self) -> usize {
        self.materials.len()
    }

    /// Add a course shell (no materials yet).
    pub fn add_course(
        &mut self,
        name: impl Into<String>,
        institution: impl Into<String>,
        instructor: impl Into<String>,
        labels: Vec<CourseLabel>,
        language: Option<String>,
    ) -> CourseId {
        let id = CourseId(self.courses.len() as u32);
        self.courses.push(Course {
            id,
            name: name.into(),
            institution: institution.into(),
            instructor: instructor.into(),
            labels,
            language,
            materials: Vec::new(),
        });
        id
    }

    /// Add a material to a course.
    ///
    /// # Panics
    /// Panics if `course` does not exist.
    #[allow(clippy::too_many_arguments)]
    pub fn add_material(
        &mut self,
        course: CourseId,
        name: impl Into<String>,
        kind: MaterialKind,
        author: impl Into<String>,
        language: Option<String>,
        datasets: Vec<String>,
        tags: Vec<NodeId>,
    ) -> MaterialId {
        let id = MaterialId(self.materials.len() as u32);
        self.materials.push(Material {
            id,
            name: name.into(),
            kind,
            author: author.into(),
            language,
            datasets,
            tags,
        });
        self.courses[course.0 as usize].materials.push(id);
        id
    }

    /// Borrow a course.
    pub fn course(&self, id: CourseId) -> &Course {
        &self.courses[id.0 as usize]
    }

    /// Borrow a material.
    pub fn material(&self, id: MaterialId) -> &Material {
        &self.materials[id.0 as usize]
    }

    /// All courses.
    pub fn courses(&self) -> &[Course] {
        &self.courses
    }

    /// All materials.
    pub fn materials(&self) -> &[Material] {
        &self.materials
    }

    /// Ids of courses carrying a label.
    pub fn courses_with_label(&self, label: CourseLabel) -> Vec<CourseId> {
        self.courses
            .iter()
            .filter(|c| c.has_label(label))
            .map(|c| c.id)
            .collect()
    }

    /// The deduplicated tag set of a whole course (union over materials),
    /// sorted by node id. This is the row the paper's course matrix uses.
    pub fn course_tags(&self, id: CourseId) -> Vec<NodeId> {
        let mut set = BTreeSet::new();
        for &m in &self.course(id).materials {
            set.extend(self.material(m).tags.iter().copied());
        }
        set.into_iter().collect()
    }

    /// Tags of a course restricted to one material kind (used in alignment
    /// studies: lecture tags vs assessment tags).
    pub fn course_tags_of_kind(&self, id: CourseId, kind: MaterialKind) -> Vec<NodeId> {
        let mut set = BTreeSet::new();
        for &m in &self.course(id).materials {
            let mat = self.material(m);
            if mat.kind == kind {
                set.extend(mat.tags.iter().copied());
            }
        }
        set.into_iter().collect()
    }

    /// Add a tag to a material (interactive matrix-view edit operation).
    /// Returns false if the tag was already present.
    pub fn tag_material(&mut self, id: MaterialId, tag: NodeId) -> bool {
        let m = &mut self.materials[id.0 as usize];
        if m.tags.contains(&tag) {
            false
        } else {
            m.tags.push(tag);
            true
        }
    }

    /// Remove a tag from a material. Returns false if absent.
    pub fn untag_material(&mut self, id: MaterialId, tag: NodeId) -> bool {
        let m = &mut self.materials[id.0 as usize];
        match m.tags.iter().position(|&t| t == tag) {
            Some(p) => {
                m.tags.remove(p);
                true
            }
            None => false,
        }
    }

    /// Check the store against a guideline ontology.
    pub fn validate(&self, guideline: &Ontology) -> Result<(), StoreError> {
        let leaves: BTreeSet<NodeId> = guideline.leaf_items().into_iter().collect();
        let mut seen = vec![false; self.materials.len()];
        for c in &self.courses {
            for &m in &c.materials {
                let idx = m.0 as usize;
                if idx >= self.materials.len() {
                    return Err(StoreError::UnknownMaterial {
                        course: c.name.clone(),
                        material: m.0,
                    });
                }
                if seen[idx] {
                    return Err(StoreError::SharedMaterial { material: m.0 });
                }
                seen[idx] = true;
            }
        }
        if let Some(orphan) = seen.iter().position(|&s| !s) {
            return Err(StoreError::OrphanMaterial {
                material: orphan as u32,
            });
        }
        for m in &self.materials {
            for &t in &m.tags {
                if !leaves.contains(&t) {
                    return Err(StoreError::InvalidTag {
                        material: m.name.clone(),
                        node: t.0,
                    });
                }
            }
            let unique: BTreeSet<NodeId> = m.tags.iter().copied().collect();
            if unique.len() != m.tags.len() {
                return Err(StoreError::DuplicateTags {
                    material: m.name.clone(),
                });
            }
        }
        Ok(())
    }
}

/// Store-invariant violations reported by [`MaterialStore::validate`],
/// typed in the same style as [`crate::io::ImportError`] so callers can
/// match on the failure mode instead of parsing a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A course references a material id outside the store.
    UnknownMaterial {
        /// Course naming the missing material.
        course: String,
        /// The dangling material id.
        material: u32,
    },
    /// Two courses claim the same material.
    SharedMaterial {
        /// The doubly-owned material id.
        material: u32,
    },
    /// A material belongs to no course.
    OrphanMaterial {
        /// The orphaned material id.
        material: u32,
    },
    /// A material tag is not a leaf item of the guideline.
    InvalidTag {
        /// Offending material name.
        material: String,
        /// The non-leaf/unknown node id.
        node: u32,
    },
    /// A material lists the same tag twice.
    DuplicateTags {
        /// Offending material name.
        material: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownMaterial { course, material } => {
                write!(
                    f,
                    "course {course:?} references unknown material {material}"
                )
            }
            StoreError::SharedMaterial { material } => {
                write!(f, "material {material} owned by two courses")
            }
            StoreError::OrphanMaterial { material } => {
                write!(f, "material {material} belongs to no course")
            }
            StoreError::InvalidTag { material, node } => {
                write!(
                    f,
                    "material {material:?} tagged with non-leaf/unknown node {node}"
                )
            }
            StoreError::DuplicateTags { material } => {
                write!(f, "material {material:?} has duplicate tags")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    fn store_with_one_course() -> (MaterialStore, CourseId) {
        let mut s = MaterialStore::new();
        let c = s.add_course(
            "Test CS1",
            "TU",
            "Tester",
            vec![CourseLabel::Cs1],
            Some("C".into()),
        );
        (s, c)
    }

    #[test]
    fn add_and_fetch() {
        let (mut s, c) = store_with_one_course();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        let m = s.add_material(
            c,
            "Week 1",
            MaterialKind::Lecture,
            "Tester",
            None,
            vec![],
            vec![t1, t2],
        );
        assert_eq!(s.material_count(), 1);
        assert_eq!(s.material(m).tags.len(), 2);
        assert_eq!(s.course(c).materials, vec![m]);
        s.validate(g).expect("valid");
    }

    #[test]
    fn course_tags_dedupe_union() {
        let (mut s, c) = store_with_one_course();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        let t3 = g.by_code("SDF.AD.t1").unwrap();
        s.add_material(
            c,
            "L1",
            MaterialKind::Lecture,
            "T",
            None,
            vec![],
            vec![t1, t2],
        );
        s.add_material(
            c,
            "A1",
            MaterialKind::Assignment,
            "T",
            None,
            vec![],
            vec![t2, t3],
        );
        let tags = s.course_tags(c);
        assert_eq!(tags.len(), 3);
        assert!(tags.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn tags_by_kind() {
        let (mut s, c) = store_with_one_course();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        s.add_material(c, "L1", MaterialKind::Lecture, "T", None, vec![], vec![t1]);
        s.add_material(
            c,
            "E1",
            MaterialKind::Assessment,
            "T",
            None,
            vec![],
            vec![t2],
        );
        assert_eq!(s.course_tags_of_kind(c, MaterialKind::Lecture), vec![t1]);
        assert_eq!(s.course_tags_of_kind(c, MaterialKind::Assessment), vec![t2]);
        assert!(s.course_tags_of_kind(c, MaterialKind::Lab).is_empty());
    }

    #[test]
    fn interactive_tag_edits() {
        let (mut s, c) = store_with_one_course();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let m = s.add_material(c, "L1", MaterialKind::Lecture, "T", None, vec![], vec![]);
        assert!(s.tag_material(m, t1));
        assert!(!s.tag_material(m, t1), "double tag rejected");
        assert!(s.untag_material(m, t1));
        assert!(!s.untag_material(m, t1), "double untag rejected");
    }

    #[test]
    fn validation_rejects_non_leaf_tags() {
        let (mut s, c) = store_with_one_course();
        let g = cs2013();
        let ka = g.by_code("SDF").unwrap();
        s.add_material(c, "L1", MaterialKind::Lecture, "T", None, vec![], vec![ka]);
        match s.validate(g) {
            Err(StoreError::InvalidTag { material, node }) => {
                assert_eq!(material, "L1");
                assert_eq!(node, ka.0);
            }
            other => panic!("expected InvalidTag, got {other:?}"),
        }
    }

    #[test]
    fn validation_classifies_failure_modes() {
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        // Duplicate tag on one material.
        let (mut s, c) = store_with_one_course();
        s.add_material(
            c,
            "Dup",
            MaterialKind::Lecture,
            "T",
            None,
            vec![],
            vec![t1, t1],
        );
        assert!(matches!(
            s.validate(g),
            Err(StoreError::DuplicateTags { .. })
        ));
        // Errors render a human-readable message.
        let msg = s.validate(g).unwrap_err().to_string();
        assert!(msg.contains("Dup"), "{msg}");
    }

    #[test]
    fn labels_filter() {
        let (mut s, _) = store_with_one_course();
        s.add_course("DS", "TU", "X", vec![CourseLabel::DataStructures], None);
        s.add_course(
            "Mixed",
            "TU",
            "Y",
            vec![CourseLabel::Cs1, CourseLabel::DataStructures],
            None,
        );
        assert_eq!(s.courses_with_label(CourseLabel::Cs1).len(), 2);
        assert_eq!(s.courses_with_label(CourseLabel::DataStructures).len(), 2);
        assert_eq!(s.courses_with_label(CourseLabel::Pdc).len(), 0);
    }
}
