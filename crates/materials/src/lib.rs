//! # anchors-materials
//!
//! The *CS Materials* substrate (Goncharow et al. 2021) that the paper's
//! data collection is built on: courses, learning materials, and their
//! classifications against curriculum guidelines, plus the system's three
//! analysis services:
//!
//! * [`matrix`] — the course × curriculum-tag 0-1 matrix of §4.1 and the
//!   materials × tags "matrix view";
//! * [`hittree`] — coverage/agreement/alignment hit-trees behind the radial
//!   visualizations (Figures 4, 6, 8);
//! * [`search`] + [`similarity`] — tag/facet search with weighted-overlap
//!   scoring, and the similarity graph handed to MDS for 2D layout.

pub mod coverage;
pub mod hittree;
pub mod io;
pub mod matrix;
pub mod model;
pub mod search;
pub mod similarity;
pub mod store;

pub use coverage::{CoverageReport, KuCoverage, TierCoverage};
pub use hittree::{AgreementTree, AlignmentView, HitTree};
pub use io::{export, export_json, import, import_json, ImportError, PortableStore};
pub use matrix::{
    CourseMatrix, MaterialMatrix, SparseCourseMatrix, SparseMaterialMatrix, TagSpace, Weighting,
};
pub use model::{
    AlignmentGroup, Course, CourseId, CourseLabel, Material, MaterialId, MaterialKind,
};
pub use search::{search, Query, SearchHit};
pub use similarity::{jaccard, SimilarityGraph, Vertex};
pub use store::{MaterialStore, StoreError};
