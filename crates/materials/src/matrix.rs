//! Construction of the paper's course × curriculum-tag matrix.
//!
//! Section 4.1: *"we represent the courses as `A`, a 0-1 matrix where each
//! row represents a course in our analysis, and each column represents an
//! entry in the curriculum guideline."*
//!
//! The column space can either span the full guideline or be restricted to
//! the tags actually used by the selected courses (scikit-learn's NMF is
//! indifferent to all-zero columns, but restricting keeps the matrices small
//! and the `H` heat maps legible, matching the paper's figures).

use crate::model::CourseId;
use crate::store::MaterialStore;
use anchors_curricula::NodeId;
use anchors_linalg::{CsrMatrix, Matrix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Column space of a course matrix: which curriculum tag each column means.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TagSpace {
    tags: Vec<NodeId>,
}

impl TagSpace {
    /// Build a tag space from an explicit tag list (deduplicated, sorted).
    pub fn from_tags(tags: impl IntoIterator<Item = NodeId>) -> Self {
        let set: BTreeSet<NodeId> = tags.into_iter().collect();
        TagSpace {
            tags: set.into_iter().collect(),
        }
    }

    /// The tag space spanned by the union of tags of `courses`.
    pub fn spanned_by(store: &MaterialStore, courses: &[CourseId]) -> Self {
        Self::from_tags(courses.iter().flat_map(|&c| store.course_tags(c)))
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Tag of column `j`.
    pub fn tag(&self, j: usize) -> NodeId {
        self.tags[j]
    }

    /// All tags in column order.
    pub fn tags(&self) -> &[NodeId] {
        &self.tags
    }

    /// Column of a tag, if present (binary search — tags are sorted).
    pub fn column_of(&self, tag: NodeId) -> Option<usize> {
        self.tags.binary_search(&tag).ok()
    }
}

/// How matrix entries encode a course's relation to a tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Weighting {
    /// 0-1 incidence (the paper's §4.1 matrix).
    Binary,
    /// Number of materials of the course covering the tag — a proxy for
    /// the coverage *depth* the paper's threats-to-validity section notes
    /// is ignored by the binary encoding.
    MaterialCount,
    /// `ln(1 + material count)`: depth-aware but compressed.
    LogCount,
}

/// A course matrix: rows = courses (in `courses` order), columns = tags of
/// the [`TagSpace`], entries ∈ {0, 1}.
#[derive(Debug, Clone)]
pub struct CourseMatrix {
    /// Row order.
    pub courses: Vec<CourseId>,
    /// Column space.
    pub tag_space: TagSpace,
    /// The 0-1 matrix `A` (courses × tags).
    pub a: Matrix,
}

impl CourseMatrix {
    /// Build the binary matrix for `courses` over the tags they span.
    pub fn build(store: &MaterialStore, courses: &[CourseId]) -> Self {
        let tag_space = TagSpace::spanned_by(store, courses);
        Self::build_with_space(store, courses, tag_space)
    }

    /// Build the binary matrix for `courses` over an explicit tag space.
    /// Tags a course has outside the space are ignored.
    pub fn build_with_space(
        store: &MaterialStore,
        courses: &[CourseId],
        tag_space: TagSpace,
    ) -> Self {
        Self::build_weighted_with_space(store, courses, tag_space, Weighting::Binary)
    }

    /// Build with an explicit [`Weighting`] over the spanned tags.
    pub fn build_weighted(
        store: &MaterialStore,
        courses: &[CourseId],
        weighting: Weighting,
    ) -> Self {
        let tag_space = TagSpace::spanned_by(store, courses);
        Self::build_weighted_with_space(store, courses, tag_space, weighting)
    }

    /// Build with an explicit weighting and tag space.
    pub fn build_weighted_with_space(
        store: &MaterialStore,
        courses: &[CourseId],
        tag_space: TagSpace,
        weighting: Weighting,
    ) -> Self {
        let mut a = Matrix::zeros(courses.len(), tag_space.len());
        for (i, &c) in courses.iter().enumerate() {
            match weighting {
                Weighting::Binary => {
                    for tag in store.course_tags(c) {
                        if let Some(j) = tag_space.column_of(tag) {
                            a.set(i, j, 1.0);
                        }
                    }
                }
                Weighting::MaterialCount | Weighting::LogCount => {
                    for &mid in &store.course(c).materials {
                        for &tag in &store.material(mid).tags {
                            if let Some(j) = tag_space.column_of(tag) {
                                a.set(i, j, a.get(i, j) + 1.0);
                            }
                        }
                    }
                    if weighting == Weighting::LogCount {
                        for v in a.row_mut(i) {
                            *v = (1.0 + *v).ln();
                        }
                    }
                }
            }
        }
        CourseMatrix {
            courses: courses.to_vec(),
            tag_space,
            a,
        }
    }

    /// Number of courses (rows).
    pub fn n_courses(&self) -> usize {
        self.a.rows()
    }

    /// Number of tags (columns).
    pub fn n_tags(&self) -> usize {
        self.a.cols()
    }

    /// How many of the selected courses carry each tag (counting any
    /// positive entry once, so the statistic is weighting-independent).
    /// This is the statistic behind the paper's Figure 3.
    pub fn tag_course_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.a.cols()];
        for i in 0..self.a.rows() {
            for (j, &v) in self.a.row(i).iter().enumerate() {
                if v > 0.0 {
                    counts[j] += 1;
                }
            }
        }
        counts
    }

    /// Tags that appear in at least `threshold` courses, with their counts.
    pub fn tags_with_agreement(&self, threshold: usize) -> Vec<(NodeId, usize)> {
        self.tag_course_counts()
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c >= threshold)
            .map(|(j, c)| (self.tag_space.tag(j), c))
            .collect()
    }

    /// Density of the 0-1 matrix (fraction of ones).
    pub fn density(&self) -> f64 {
        if self.a.is_empty() {
            0.0
        } else {
            self.a.sum() / self.a.len() as f64
        }
    }
}

/// A course matrix held in CSR storage, built directly from the store
/// without ever materializing the dense `A`. Row/column semantics match
/// [`CourseMatrix`] exactly: `to_dense()` of the CSR matrix equals the
/// dense builder's output entry for entry.
#[derive(Debug, Clone)]
pub struct SparseCourseMatrix {
    /// Row order.
    pub courses: Vec<CourseId>,
    /// Column space.
    pub tag_space: TagSpace,
    /// The matrix `A` (courses × tags) in CSR form.
    pub a: CsrMatrix,
}

impl SparseCourseMatrix {
    /// Build the binary CSR matrix for `courses` over the tags they span.
    pub fn build(store: &MaterialStore, courses: &[CourseId]) -> Self {
        let tag_space = TagSpace::spanned_by(store, courses);
        Self::build_weighted_with_space(store, courses, tag_space, Weighting::Binary)
    }

    /// Build with an explicit [`Weighting`] over the spanned tags.
    pub fn build_weighted(
        store: &MaterialStore,
        courses: &[CourseId],
        weighting: Weighting,
    ) -> Self {
        let tag_space = TagSpace::spanned_by(store, courses);
        Self::build_weighted_with_space(store, courses, tag_space, weighting)
    }

    /// Build with an explicit weighting and tag space, assembling the CSR
    /// arrays row by row. Stored entries and values are bitwise identical
    /// to `CsrMatrix::from_dense` of the dense builder's output: counts
    /// accumulate by the same repeated `+1.0` per material–tag incidence,
    /// and zero entries are simply never stored.
    pub fn build_weighted_with_space(
        store: &MaterialStore,
        courses: &[CourseId],
        tag_space: TagSpace,
        weighting: Weighting,
    ) -> Self {
        let mut indptr = Vec::with_capacity(courses.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        // BTreeMap keeps each row's columns sorted, as CSR requires.
        let mut row: BTreeMap<usize, f64> = BTreeMap::new();
        for &c in courses {
            row.clear();
            match weighting {
                Weighting::Binary => {
                    for tag in store.course_tags(c) {
                        if let Some(j) = tag_space.column_of(tag) {
                            row.insert(j, 1.0);
                        }
                    }
                }
                Weighting::MaterialCount | Weighting::LogCount => {
                    for &mid in &store.course(c).materials {
                        for &tag in &store.material(mid).tags {
                            if let Some(j) = tag_space.column_of(tag) {
                                *row.entry(j).or_insert(0.0) += 1.0;
                            }
                        }
                    }
                    if weighting == Weighting::LogCount {
                        for v in row.values_mut() {
                            *v = (1.0 + *v).ln();
                        }
                    }
                }
            }
            for (&j, &v) in &row {
                indices.push(j);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        let a = CsrMatrix::from_parts(courses.len(), tag_space.len(), indptr, indices, values);
        SparseCourseMatrix {
            courses: courses.to_vec(),
            tag_space,
            a,
        }
    }

    /// Number of courses (rows).
    pub fn n_courses(&self) -> usize {
        self.a.rows()
    }

    /// Number of tags (columns).
    pub fn n_tags(&self) -> usize {
        self.a.cols()
    }

    /// Density as the same statistic the dense [`CourseMatrix::density`]
    /// reports (mean entry value; fraction of ones for binary weighting).
    pub fn density(&self) -> f64 {
        let (r, c) = (self.a.rows(), self.a.cols());
        if r == 0 || c == 0 {
            0.0
        } else {
            self.a.sum() / (r * c) as f64
        }
    }
}

/// A materials × tags 0-1 matrix (the CS Materials "matrix view", where
/// materials are columns and tags are rows).
#[derive(Debug, Clone)]
pub struct MaterialMatrix {
    /// Column order: material ids.
    pub materials: Vec<crate::model::MaterialId>,
    /// Row space: tags.
    pub tag_space: TagSpace,
    /// tags × materials matrix (note the orientation: the paper's matrix
    /// view displays materials as columns).
    pub m: Matrix,
}

impl MaterialMatrix {
    /// Build the matrix view for all materials of the given courses.
    pub fn build(store: &MaterialStore, courses: &[CourseId]) -> Self {
        let materials: Vec<crate::model::MaterialId> = courses
            .iter()
            .flat_map(|&c| store.course(c).materials.iter().copied())
            .collect();
        let tag_space = TagSpace::from_tags(
            materials
                .iter()
                .flat_map(|&m| store.material(m).tags.iter().copied()),
        );
        let mut m = Matrix::zeros(tag_space.len(), materials.len());
        for (j, &mid) in materials.iter().enumerate() {
            for &tag in &store.material(mid).tags {
                if let Some(i) = tag_space.column_of(tag) {
                    m.set(i, j, 1.0);
                }
            }
        }
        MaterialMatrix {
            materials,
            tag_space,
            m,
        }
    }

    /// Build the matrix view directly in CSR storage (tags × materials),
    /// without materializing the dense matrix. Stored entries match
    /// `CsrMatrix::from_dense(&MaterialMatrix::build(..).m)` exactly.
    pub fn build_sparse(store: &MaterialStore, courses: &[CourseId]) -> SparseMaterialMatrix {
        let materials: Vec<crate::model::MaterialId> = courses
            .iter()
            .flat_map(|&c| store.course(c).materials.iter().copied())
            .collect();
        let tag_space = TagSpace::from_tags(
            materials
                .iter()
                .flat_map(|&m| store.material(m).tags.iter().copied()),
        );
        // Rows are tags, so gather (tag row, material column) incidences
        // and bucket them per row; BTreeSet sorts columns and dedups
        // repeated tags within one material.
        let mut rows: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); tag_space.len()];
        for (j, &mid) in materials.iter().enumerate() {
            for &tag in &store.material(mid).tags {
                if let Some(i) = tag_space.column_of(tag) {
                    rows[i].insert(j);
                }
            }
        }
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        for row in &rows {
            indices.extend(row.iter().copied());
            indptr.push(indices.len());
        }
        let values = vec![1.0; indices.len()];
        let m = CsrMatrix::from_parts(tag_space.len(), materials.len(), indptr, indices, values);
        SparseMaterialMatrix {
            materials,
            tag_space,
            m,
        }
    }
}

/// The materials × tags matrix view in CSR storage; see
/// [`MaterialMatrix::build_sparse`].
#[derive(Debug, Clone)]
pub struct SparseMaterialMatrix {
    /// Column order: material ids.
    pub materials: Vec<crate::model::MaterialId>,
    /// Row space: tags.
    pub tag_space: TagSpace,
    /// tags × materials matrix in CSR form.
    pub m: CsrMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CourseLabel, MaterialKind};
    use anchors_curricula::cs2013;

    fn two_course_store() -> (MaterialStore, Vec<CourseId>) {
        let g = cs2013();
        let mut s = MaterialStore::new();
        let c1 = s.add_course("A", "U", "I1", vec![CourseLabel::Cs1], None);
        let c2 = s.add_course("B", "U", "I2", vec![CourseLabel::Cs1], None);
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        let t3 = g.by_code("SDF.AD.t1").unwrap();
        s.add_material(
            c1,
            "L",
            MaterialKind::Lecture,
            "I1",
            None,
            vec![],
            vec![t1, t2],
        );
        s.add_material(
            c2,
            "L",
            MaterialKind::Lecture,
            "I2",
            None,
            vec![],
            vec![t2, t3],
        );
        (s, vec![c1, c2])
    }

    #[test]
    fn builds_binary_matrix() {
        let (s, cs) = two_course_store();
        let cm = CourseMatrix::build(&s, &cs);
        assert_eq!(cm.a.shape(), (2, 3));
        // Every entry is 0 or 1.
        for &v in cm.a.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
        // Shared tag column sums to 2.
        let counts = cm.tag_course_counts();
        assert_eq!(counts.iter().sum::<usize>(), 4);
        assert!(counts.contains(&2));
    }

    #[test]
    fn agreement_threshold_filters() {
        let (s, cs) = two_course_store();
        let cm = CourseMatrix::build(&s, &cs);
        assert_eq!(cm.tags_with_agreement(1).len(), 3);
        assert_eq!(cm.tags_with_agreement(2).len(), 1);
        assert_eq!(cm.tags_with_agreement(3).len(), 0);
    }

    #[test]
    fn explicit_space_ignores_outside_tags() {
        let (s, cs) = two_course_store();
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let space = TagSpace::from_tags([t1]);
        let cm = CourseMatrix::build_with_space(&s, &cs, space);
        assert_eq!(cm.a.shape(), (2, 1));
        assert_eq!(cm.a.get(0, 0), 1.0);
        assert_eq!(cm.a.get(1, 0), 0.0);
    }

    #[test]
    fn density_in_unit_interval() {
        let (s, cs) = two_course_store();
        let cm = CourseMatrix::build(&s, &cs);
        let d = cm.density();
        assert!(d > 0.0 && d <= 1.0);
        assert!((d - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn material_matrix_orientation() {
        let (s, cs) = two_course_store();
        let mm = MaterialMatrix::build(&s, &cs);
        // tags × materials.
        assert_eq!(mm.m.shape(), (3, 2));
        assert_eq!(mm.m.col_sums().iter().sum::<f64>(), 4.0);
    }

    #[test]
    fn weighted_variants() {
        let (s, cs) = two_course_store();
        let counts = CourseMatrix::build_weighted(&s, &cs, Weighting::MaterialCount);
        // Single material per course here, so counts equal the binary matrix.
        let binary = CourseMatrix::build(&s, &cs);
        assert_eq!(counts.a, binary.a);
        let log = CourseMatrix::build_weighted(&s, &cs, Weighting::LogCount);
        for (&lv, &bv) in log.a.as_slice().iter().zip(binary.a.as_slice()) {
            if bv > 0.0 {
                assert!((lv - 2.0f64.ln()).abs() < 1e-12);
            } else {
                assert_eq!(lv, 0.0);
            }
        }
        // Agreement statistics are weighting-independent.
        assert_eq!(binary.tag_course_counts(), log.tag_course_counts());
    }

    #[test]
    fn weighted_counts_accumulate_over_materials() {
        let g = cs2013();
        let mut s = MaterialStore::new();
        let c = s.add_course("A", "U", "I", vec![CourseLabel::Cs1], None);
        let t = g.by_code("SDF.FPC.t1").unwrap();
        s.add_material(c, "m1", MaterialKind::Lecture, "I", None, vec![], vec![t]);
        s.add_material(
            c,
            "m2",
            MaterialKind::Assessment,
            "I",
            None,
            vec![],
            vec![t],
        );
        s.add_material(c, "m3", MaterialKind::Lab, "I", None, vec![], vec![t]);
        let cm = CourseMatrix::build_weighted(&s, &[c], Weighting::MaterialCount);
        assert_eq!(cm.a.get(0, 0), 3.0, "three materials cover the tag");
        let b = CourseMatrix::build(&s, &[c]);
        assert_eq!(b.a.get(0, 0), 1.0);
    }

    #[test]
    fn sparse_builder_matches_dense_for_all_weightings() {
        let (s, cs) = two_course_store();
        for weighting in [
            Weighting::Binary,
            Weighting::MaterialCount,
            Weighting::LogCount,
        ] {
            let dense = CourseMatrix::build_weighted(&s, &cs, weighting);
            let sparse = SparseCourseMatrix::build_weighted(&s, &cs, weighting);
            assert_eq!(sparse.courses, dense.courses);
            assert_eq!(sparse.tag_space.tags(), dense.tag_space.tags());
            assert_eq!(
                sparse.a.to_dense(),
                dense.a,
                "{weighting:?}: sparse build must reproduce the dense matrix"
            );
            // Stored-entry structure matches exact-zero sparsification too.
            assert_eq!(sparse.a, CsrMatrix::from_dense(&dense.a));
            assert!((sparse.density() - dense.density()).abs() < 1e-15);
        }
    }

    #[test]
    fn sparse_builder_accumulates_material_counts() {
        let g = cs2013();
        let mut s = MaterialStore::new();
        let c = s.add_course("A", "U", "I", vec![CourseLabel::Cs1], None);
        let t = g.by_code("SDF.FPC.t1").unwrap();
        for name in ["m1", "m2", "m3"] {
            s.add_material(c, name, MaterialKind::Lecture, "I", None, vec![], vec![t]);
        }
        let cm = SparseCourseMatrix::build_weighted(&s, &[c], Weighting::MaterialCount);
        assert_eq!(cm.a.to_dense().get(0, 0), 3.0);
        assert_eq!(cm.n_courses(), 1);
        assert_eq!(cm.n_tags(), 1);
    }

    #[test]
    fn sparse_material_matrix_matches_dense() {
        let (s, cs) = two_course_store();
        let dense = MaterialMatrix::build(&s, &cs);
        let sparse = MaterialMatrix::build_sparse(&s, &cs);
        assert_eq!(sparse.materials, dense.materials);
        assert_eq!(sparse.tag_space.tags(), dense.tag_space.tags());
        assert_eq!(sparse.m.to_dense(), dense.m);
        assert_eq!(sparse.m, CsrMatrix::from_dense(&dense.m));
    }

    #[test]
    fn tag_space_sorted_and_searchable() {
        let (s, cs) = two_course_store();
        let cm = CourseMatrix::build(&s, &cs);
        let tags = cm.tag_space.tags();
        assert!(tags.windows(2).all(|w| w[0] < w[1]));
        for (j, &t) in tags.iter().enumerate() {
            assert_eq!(cm.tag_space.column_of(t), Some(j));
        }
    }
}
