//! Portable import/export of a material store.
//!
//! The in-memory store references guideline items by arena [`NodeId`],
//! which is not stable across guideline revisions. The exchange format
//! references items by their dotted *code* (`"SDF.FPC.t2"`), so exported
//! corpora survive ontology edits that preserve codes, and imports from
//! other tools can be validated precisely.

use crate::model::{CourseLabel, MaterialKind};
use crate::store::MaterialStore;
use anchors_curricula::Ontology;
use serde::{Deserialize, Serialize};

/// Portable form of one material.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortableMaterial {
    /// Display name.
    pub name: String,
    /// Pedagogical kind.
    pub kind: MaterialKind,
    /// Author.
    pub author: String,
    /// Programming language, if any.
    pub language: Option<String>,
    /// Datasets used.
    pub datasets: Vec<String>,
    /// Guideline item codes.
    pub tags: Vec<String>,
}

/// Portable form of one course.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortableCourse {
    /// Display name.
    pub name: String,
    /// Institution.
    pub institution: String,
    /// Instructor.
    pub instructor: String,
    /// Family labels.
    pub labels: Vec<CourseLabel>,
    /// Course language.
    pub language: Option<String>,
    /// Materials.
    pub materials: Vec<PortableMaterial>,
}

/// Portable form of a whole store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortableStore {
    /// Name of the guideline the tags reference.
    pub guideline: String,
    /// Courses with nested materials.
    pub courses: Vec<PortableCourse>,
}

/// Errors an import can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The JSON was malformed.
    Parse(String),
    /// The file references a different guideline.
    GuidelineMismatch {
        /// Guideline named in the file.
        found: String,
        /// Guideline supplied to the importer.
        expected: String,
    },
    /// A tag code does not resolve to a leaf item.
    UnknownTag {
        /// Offending course name.
        course: String,
        /// Offending code.
        code: String,
    },
    /// Two courses share the same display name (the analysis keys figures
    /// and recommendations by name, so duplicates would silently alias).
    DuplicateCourse {
        /// The duplicated name.
        name: String,
    },
    /// A course lists two materials with the same name.
    DuplicateMaterial {
        /// Offending course name.
        course: String,
        /// The duplicated material name.
        name: String,
    },
    /// The file contains no courses at all.
    Empty,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Parse(e) => write!(f, "parse error: {e}"),
            ImportError::GuidelineMismatch { found, expected } => {
                write!(
                    f,
                    "guideline mismatch: file references {found:?}, expected {expected:?}"
                )
            }
            ImportError::UnknownTag { course, code } => {
                write!(f, "course {course:?} references unknown tag {code:?}")
            }
            ImportError::DuplicateCourse { name } => {
                write!(f, "duplicate course {name:?}")
            }
            ImportError::DuplicateMaterial { course, name } => {
                write!(f, "course {course:?} lists material {name:?} twice")
            }
            ImportError::Empty => write!(f, "store contains no courses"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Export a store to the portable structure.
pub fn export(store: &MaterialStore, ontology: &Ontology) -> PortableStore {
    PortableStore {
        guideline: ontology.name.clone(),
        courses: store
            .courses()
            .iter()
            .map(|c| PortableCourse {
                name: c.name.clone(),
                institution: c.institution.clone(),
                instructor: c.instructor.clone(),
                labels: c.labels.clone(),
                language: c.language.clone(),
                materials: c
                    .materials
                    .iter()
                    .map(|&mid| {
                        let m = store.material(mid);
                        PortableMaterial {
                            name: m.name.clone(),
                            kind: m.kind,
                            author: m.author.clone(),
                            language: m.language.clone(),
                            datasets: m.datasets.clone(),
                            tags: m
                                .tags
                                .iter()
                                .map(|&t| ontology.node(t).code.clone())
                                .collect(),
                        }
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Export a store to a JSON string.
pub fn export_json(store: &MaterialStore, ontology: &Ontology) -> String {
    serde_json::to_string_pretty(&export(store, ontology)).expect("portable store serializes")
}

/// Import a portable structure into a fresh store, resolving tag codes
/// against `ontology`.
pub fn import(portable: &PortableStore, ontology: &Ontology) -> Result<MaterialStore, ImportError> {
    if portable.guideline != ontology.name {
        return Err(ImportError::GuidelineMismatch {
            found: portable.guideline.clone(),
            expected: ontology.name.clone(),
        });
    }
    if portable.courses.is_empty() {
        return Err(ImportError::Empty);
    }
    let mut seen_courses = std::collections::HashSet::new();
    let mut store = MaterialStore::new();
    for c in &portable.courses {
        if !seen_courses.insert(c.name.as_str()) {
            return Err(ImportError::DuplicateCourse {
                name: c.name.clone(),
            });
        }
        let mut seen_materials = std::collections::HashSet::new();
        let cid = store.add_course(
            c.name.clone(),
            c.institution.clone(),
            c.instructor.clone(),
            c.labels.clone(),
            c.language.clone(),
        );
        for m in &c.materials {
            if !seen_materials.insert(m.name.as_str()) {
                return Err(ImportError::DuplicateMaterial {
                    course: c.name.clone(),
                    name: m.name.clone(),
                });
            }
            let tags = m
                .tags
                .iter()
                .map(|code| {
                    ontology
                        .by_code(code)
                        .ok_or_else(|| ImportError::UnknownTag {
                            course: c.name.clone(),
                            code: code.clone(),
                        })
                })
                .collect::<Result<Vec<_>, _>>()?;
            store.add_material(
                cid,
                m.name.clone(),
                m.kind,
                m.author.clone(),
                m.language.clone(),
                m.datasets.clone(),
                tags,
            );
        }
    }
    Ok(store)
}

/// Import from a JSON string.
pub fn import_json(json: &str, ontology: &Ontology) -> Result<MaterialStore, ImportError> {
    let portable: PortableStore =
        serde_json::from_str(json).map_err(|e| ImportError::Parse(e.to_string()))?;
    import(&portable, ontology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    fn sample_store() -> MaterialStore {
        let g = cs2013();
        let mut s = MaterialStore::new();
        let c = s.add_course("Test", "U", "I", vec![CourseLabel::Cs1], Some("C".into()));
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("AL.BA.o1").unwrap();
        s.add_material(
            c,
            "L1",
            MaterialKind::Lecture,
            "I",
            Some("C".into()),
            vec!["quakes".into()],
            vec![t1, t2],
        );
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = cs2013();
        let s = sample_store();
        let json = export_json(&s, g);
        let back = import_json(&json, g).expect("roundtrip");
        assert_eq!(back.course_count(), s.course_count());
        assert_eq!(back.material_count(), s.material_count());
        assert_eq!(
            back.course_tags(back.courses()[0].id),
            s.course_tags(s.courses()[0].id)
        );
        let m = back.material(back.courses()[0].materials[0]);
        assert_eq!(m.datasets, vec!["quakes".to_string()]);
        back.validate(g).expect("valid after import");
    }

    #[test]
    fn guideline_mismatch_detected() {
        let g = cs2013();
        let s = sample_store();
        let mut portable = export(&s, g);
        portable.guideline = "some other guideline".into();
        let err = import(&portable, g).unwrap_err();
        assert!(matches!(err, ImportError::GuidelineMismatch { .. }));
    }

    #[test]
    fn unknown_tag_detected() {
        let g = cs2013();
        let s = sample_store();
        let mut portable = export(&s, g);
        portable.courses[0].materials[0]
            .tags
            .push("NOT.A.CODE".into());
        let err = import(&portable, g).unwrap_err();
        match err {
            ImportError::UnknownTag { code, .. } => assert_eq!(code, "NOT.A.CODE"),
            other => panic!("expected UnknownTag, got {other}"),
        }
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let g = cs2013();
        let err = import_json("{not json", g).unwrap_err();
        assert!(matches!(err, ImportError::Parse(_)));
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn truncated_json_is_a_parse_error() {
        let g = cs2013();
        let s = sample_store();
        let json = export_json(&s, g);
        // Cut the document mid-stream: every prefix must fail cleanly.
        let cut = json.len() / 2;
        let err = import_json(&json[..cut], g).unwrap_err();
        assert!(matches!(err, ImportError::Parse(_)));
    }

    #[test]
    fn duplicate_course_detected() {
        let g = cs2013();
        let s = sample_store();
        let mut portable = export(&s, g);
        let copy = portable.courses[0].clone();
        portable.courses.push(copy);
        let err = import(&portable, g).unwrap_err();
        match err {
            ImportError::DuplicateCourse { name } => assert_eq!(name, "Test"),
            other => panic!("expected DuplicateCourse, got {other}"),
        }
    }

    #[test]
    fn duplicate_material_detected() {
        let g = cs2013();
        let s = sample_store();
        let mut portable = export(&s, g);
        let copy = portable.courses[0].materials[0].clone();
        portable.courses[0].materials.push(copy);
        let err = import(&portable, g).unwrap_err();
        match err {
            ImportError::DuplicateMaterial { course, name } => {
                assert_eq!(course, "Test");
                assert_eq!(name, "L1");
            }
            other => panic!("expected DuplicateMaterial, got {other}"),
        }
    }

    #[test]
    fn empty_store_detected() {
        let g = cs2013();
        let portable = PortableStore {
            guideline: g.name.clone(),
            courses: vec![],
        };
        let err = import(&portable, g).unwrap_err();
        assert_eq!(err, ImportError::Empty);
        assert!(err.to_string().contains("no courses"));
    }

    #[test]
    fn export_uses_codes_not_ids() {
        let g = cs2013();
        let s = sample_store();
        let json = export_json(&s, g);
        assert!(json.contains("SDF.FPC.t1"));
        assert!(json.contains("AL.BA.o1"));
    }
}
