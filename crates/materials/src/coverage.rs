//! Curriculum-coverage audit.
//!
//! The CS Materials system is built "for Design, Alignment, Audit, and
//! Search" (Goncharow et al., SIGCSE'21). This module is the audit: how
//! much of the guideline's core does a course (or program = set of courses)
//! actually cover? CS2013 requires 100% of core tier-1 and ≥80% of core
//! tier-2 across a whole curriculum, which is exactly the check
//! [`CoverageReport::meets_cs2013_core_requirements`] implements.

use crate::model::CourseId;
use crate::store::MaterialStore;
use anchors_curricula::{Level, NodeId, Ontology, Tier};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Coverage of one knowledge unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KuCoverage {
    /// The knowledge unit.
    pub ku: NodeId,
    /// Unit tier.
    pub tier: Tier,
    /// Leaf items under the unit.
    pub total: usize,
    /// Leaf items covered by the audited tag set.
    pub covered: usize,
}

impl KuCoverage {
    /// Covered fraction (1 for empty units).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }
}

/// A full audit of a tag set against a guideline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Per-unit coverage, in guideline order.
    pub units: Vec<KuCoverage>,
}

/// Tier-aggregated coverage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierCoverage {
    /// Total leaf items in the tier.
    pub total: usize,
    /// Covered leaf items.
    pub covered: usize,
}

impl TierCoverage {
    /// Covered fraction (1 for an empty tier).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }
}

impl CoverageReport {
    /// Audit an arbitrary tag set.
    pub fn audit(ontology: &Ontology, tags: &[NodeId]) -> Self {
        let tag_set: BTreeSet<NodeId> = tags.iter().copied().collect();
        let mut units = Vec::new();
        for ku in ontology.at_level(Level::KnowledgeUnit) {
            let leaves = ontology.leaves_under(ku);
            let covered = leaves.iter().filter(|l| tag_set.contains(l)).count();
            units.push(KuCoverage {
                ku,
                tier: ontology.node(ku).tier,
                total: leaves.len(),
                covered,
            });
        }
        CoverageReport { units }
    }

    /// Audit one course.
    pub fn audit_course(store: &MaterialStore, ontology: &Ontology, course: CourseId) -> Self {
        Self::audit(ontology, &store.course_tags(course))
    }

    /// Audit a set of courses jointly (a program audit): union of tags.
    pub fn audit_program(store: &MaterialStore, ontology: &Ontology, courses: &[CourseId]) -> Self {
        let mut tags = BTreeSet::new();
        for &c in courses {
            tags.extend(store.course_tags(c));
        }
        let tags: Vec<NodeId> = tags.into_iter().collect();
        Self::audit(ontology, &tags)
    }

    /// Aggregate coverage of one tier.
    pub fn tier(&self, tier: Tier) -> TierCoverage {
        let mut total = 0;
        let mut covered = 0;
        for u in self.units.iter().filter(|u| u.tier == tier) {
            total += u.total;
            covered += u.covered;
        }
        TierCoverage { total, covered }
    }

    /// The CS2013 curriculum-level requirement: all of core tier-1 and at
    /// least 80% of core tier-2.
    pub fn meets_cs2013_core_requirements(&self) -> bool {
        self.tier(Tier::Core1).fraction() >= 1.0 - 1e-12
            && self.tier(Tier::Core2).fraction() >= 0.80
    }

    /// Units with no coverage at all in a tier (audit gaps).
    pub fn uncovered_units(&self, tier: Tier) -> Vec<NodeId> {
        self.units
            .iter()
            .filter(|u| u.tier == tier && u.covered == 0 && u.total > 0)
            .map(|u| u.ku)
            .collect()
    }

    /// Units with any coverage, sorted by descending fraction then id.
    pub fn strongest_units(&self, n: usize) -> Vec<&KuCoverage> {
        let mut covered: Vec<&KuCoverage> = self.units.iter().filter(|u| u.covered > 0).collect();
        covered.sort_by(|a, b| {
            b.fraction()
                .partial_cmp(&a.fraction())
                .expect("finite fractions")
                .then(a.ku.cmp(&b.ku))
        });
        covered.truncate(n);
        covered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CourseLabel, MaterialKind};
    use anchors_curricula::cs2013;

    #[test]
    fn audit_counts_covered_items() {
        let g = cs2013();
        let fpc = g.by_code("SDF.FPC").unwrap();
        let leaves = g.leaves_under(fpc);
        let half: Vec<NodeId> = leaves.iter().copied().take(leaves.len() / 2).collect();
        let report = CoverageReport::audit(g, &half);
        let u = report
            .units
            .iter()
            .find(|u| u.ku == fpc)
            .expect("FPC audited");
        assert_eq!(u.covered, half.len());
        assert_eq!(u.total, leaves.len());
        assert!((u.fraction() - 0.5).abs() < 0.1);
    }

    #[test]
    fn empty_tag_set_covers_nothing() {
        let g = cs2013();
        let report = CoverageReport::audit(g, &[]);
        assert_eq!(report.tier(Tier::Core1).covered, 0);
        assert!(!report.meets_cs2013_core_requirements());
        assert!(!report.uncovered_units(Tier::Core1).is_empty());
    }

    #[test]
    fn full_guideline_meets_requirements() {
        let g = cs2013();
        let all = g.leaf_items();
        let report = CoverageReport::audit(g, &all);
        assert!(report.meets_cs2013_core_requirements());
        assert_eq!(report.tier(Tier::Core1).fraction(), 1.0);
        assert_eq!(report.tier(Tier::Core2).fraction(), 1.0);
        assert!(report.uncovered_units(Tier::Core1).is_empty());
    }

    #[test]
    fn course_and_program_audits() {
        let g = cs2013();
        let mut s = MaterialStore::new();
        let c1 = s.add_course("A", "U", "I", vec![CourseLabel::Cs1], None);
        let c2 = s.add_course("B", "U", "I", vec![CourseLabel::Cs2], None);
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("AL.BA.t1").unwrap();
        s.add_material(c1, "m1", MaterialKind::Lecture, "I", None, vec![], vec![t1]);
        s.add_material(c2, "m2", MaterialKind::Lecture, "I", None, vec![], vec![t2]);
        let r1 = CoverageReport::audit_course(&s, g, c1);
        let rp = CoverageReport::audit_program(&s, g, &[c1, c2]);
        let covered = |r: &CoverageReport| -> usize { r.units.iter().map(|u| u.covered).sum() };
        assert_eq!(covered(&r1), 1);
        assert_eq!(covered(&rp), 2, "program audit unions course tags");
    }

    #[test]
    fn strongest_units_sorted() {
        let g = cs2013();
        let fpc = g.by_code("SDF.FPC").unwrap();
        let ba = g.by_code("AL.BA").unwrap();
        let mut tags = g.leaves_under(fpc); // full FPC
        tags.push(g.leaves_under(ba)[0]); // one BA item
        let report = CoverageReport::audit(g, &tags);
        let top = report.strongest_units(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].ku, fpc);
        assert!((top[0].fraction() - 1.0).abs() < 1e-12);
        assert!(top[1].fraction() < 1.0);
    }
}
