//! Material similarity graphs (Section 3.1.2).
//!
//! To show "how good the result of a search is", the paper builds "a graph
//! where materials (including query and results) are vertices and the edges
//! between them are weighted by the similarity they share", then feeds the
//! similarities to MDS for a 2D layout. This module builds the graph; the
//! MDS embedding itself lives in `anchors-factor`.

use crate::model::MaterialId;
use crate::store::MaterialStore;
use anchors_curricula::NodeId;
use anchors_linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A weighted undirected similarity graph over a set of vertices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimilarityGraph {
    /// What each vertex is.
    pub vertices: Vec<Vertex>,
    /// Dense symmetric similarity matrix in `[0, 1]` (diagonal = 1).
    pub weights: Vec<Vec<f64>>,
}

/// A vertex of the similarity graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vertex {
    /// The query itself (tag set supplied by the user).
    Query,
    /// A material from the store.
    Material(MaterialId),
}

/// Jaccard similarity of two tag sets.
pub fn jaccard(a: &BTreeSet<NodeId>, b: &BTreeSet<NodeId>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

impl SimilarityGraph {
    /// Build the graph over a query tag set and a list of result materials.
    pub fn build(store: &MaterialStore, query_tags: &[NodeId], results: &[MaterialId]) -> Self {
        let mut vertices = vec![Vertex::Query];
        vertices.extend(results.iter().map(|&m| Vertex::Material(m)));
        let sets: Vec<BTreeSet<NodeId>> = std::iter::once(query_tags.iter().copied().collect())
            .chain(
                results
                    .iter()
                    .map(|&m| store.material(m).tags.iter().copied().collect()),
            )
            .collect();
        let n = sets.len();
        let mut weights = vec![vec![0.0; n]; n];
        for i in 0..n {
            weights[i][i] = 1.0;
            for j in (i + 1)..n {
                let w = jaccard(&sets[i], &sets[j]);
                weights[i][j] = w;
                weights[j][i] = w;
            }
        }
        SimilarityGraph { vertices, weights }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Edges above a similarity threshold, as `(i, j, w)` with `i < j`.
    pub fn edges(&self, min_weight: f64) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                let w = self.weights[i][j];
                if w >= min_weight {
                    out.push((i, j, w));
                }
            }
        }
        out
    }

    /// Convert similarities to a distance matrix (`d = 1 - s`) suitable for
    /// MDS embedding.
    pub fn distance_matrix(&self) -> Matrix {
        let n = self.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    d.set(i, j, (1.0 - self.weights[i][j]).max(0.0));
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CourseLabel, MaterialKind};
    use anchors_curricula::cs2013;

    fn fixture() -> (MaterialStore, Vec<MaterialId>, Vec<NodeId>) {
        let g = cs2013();
        let mut s = MaterialStore::new();
        let c = s.add_course("C", "U", "I", vec![CourseLabel::Cs1], None);
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        let t3 = g.by_code("AL.BA.t1").unwrap();
        let m1 = s.add_material(
            c,
            "m1",
            MaterialKind::Lecture,
            "a",
            None,
            vec![],
            vec![t1, t2],
        );
        let m2 = s.add_material(c, "m2", MaterialKind::Lecture, "a", None, vec![], vec![t1]);
        let m3 = s.add_material(c, "m3", MaterialKind::Lecture, "a", None, vec![], vec![t3]);
        (s, vec![m1, m2, m3], vec![t1, t2])
    }

    #[test]
    fn jaccard_cases() {
        let a: BTreeSet<NodeId> = [NodeId(1), NodeId(2)].into_iter().collect();
        let b: BTreeSet<NodeId> = [NodeId(2), NodeId(3)].into_iter().collect();
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        let e = BTreeSet::new();
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(jaccard(&a, &e), 0.0);
    }

    #[test]
    fn graph_symmetric_unit_diagonal() {
        let (s, ms, qt) = fixture();
        let g = SimilarityGraph::build(&s, &qt, &ms);
        assert_eq!(g.len(), 4);
        for i in 0..4 {
            assert_eq!(g.weights[i][i], 1.0);
            for j in 0..4 {
                assert_eq!(g.weights[i][j], g.weights[j][i]);
            }
        }
    }

    #[test]
    fn query_most_similar_to_identical_material() {
        let (s, ms, qt) = fixture();
        let g = SimilarityGraph::build(&s, &qt, &ms);
        // m1 has exactly the query tags → similarity 1; m3 disjoint → 0.
        assert_eq!(g.weights[0][1], 1.0);
        assert_eq!(g.weights[0][3], 0.0);
        assert!(g.weights[0][2] > 0.0 && g.weights[0][2] < 1.0);
    }

    #[test]
    fn edge_threshold_filters() {
        let (s, ms, qt) = fixture();
        let g = SimilarityGraph::build(&s, &qt, &ms);
        let all = g.edges(0.0);
        assert_eq!(all.len(), 6);
        let strong = g.edges(0.9);
        assert!(strong.iter().all(|&(_, _, w)| w >= 0.9));
        assert!(strong.len() < all.len());
    }

    #[test]
    fn distance_matrix_is_valid() {
        let (s, ms, qt) = fixture();
        let g = SimilarityGraph::build(&s, &qt, &ms);
        let d = g.distance_matrix();
        anchors_linalg::distance::validate_distance_matrix(&d).expect("valid");
        assert_eq!(d.get(0, 1), 0.0, "identical tag sets at distance 0");
        assert_eq!(d.get(0, 3), 1.0, "disjoint tag sets at distance 1");
    }
}
