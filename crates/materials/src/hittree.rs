//! Hit-trees: the paper's radial tree model.
//!
//! A *hit-tree* overlays counts on the guideline ontology: each leaf item
//! counts how many materials (or courses) are classified against it, and
//! counts aggregate up the tree. The paper uses hit-trees for
//!
//! * coverage views of one course,
//! * **agreement trees** (Figures 4, 6, 8): the subtree of items that appear
//!   in ≥ *m* courses of a group, and
//! * **alignment views**: a divergent score comparing two material sets
//!   (node color ranges between the two sets; mid-scale = fully aligned).

use anchors_curricula::{NodeId, Ontology};
use serde::{Deserialize, Serialize};

/// Per-node hit counts over an ontology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitTree {
    /// `counts[node.index()]` = hits at or below that node.
    counts: Vec<usize>,
}

impl HitTree {
    /// Build from leaf hit counts: `leaf_hits` maps leaf items to counts;
    /// internal nodes receive the sum of their subtree.
    pub fn from_leaf_hits(ontology: &Ontology, leaf_hits: &[(NodeId, usize)]) -> Self {
        let mut counts = vec![0usize; ontology.len()];
        for &(id, c) in leaf_hits {
            counts[id.index()] += c;
        }
        // Children precede parents nowhere in general; aggregate by walking
        // nodes in reverse arena order only works if parents come first.
        // The builder always pushes parents before children, so a reverse
        // sweep accumulates child counts into parents correctly.
        for idx in (1..ontology.len()).rev() {
            let node = &ontology.nodes()[idx];
            if let Some(p) = node.parent {
                counts[p.index()] += counts[idx];
            }
        }
        HitTree { counts }
    }

    /// Build from a set of tagged leaf items, each hit once.
    pub fn from_tags(ontology: &Ontology, tags: &[NodeId]) -> Self {
        let hits: Vec<(NodeId, usize)> = tags.iter().map(|&t| (t, 1)).collect();
        Self::from_leaf_hits(ontology, &hits)
    }

    /// Hits at or below `id`.
    pub fn count(&self, id: NodeId) -> usize {
        self.counts[id.index()]
    }

    /// Total hits (root count).
    pub fn total(&self) -> usize {
        self.counts.first().copied().unwrap_or(0)
    }

    /// Nodes with nonzero count, in arena order.
    pub fn hit_nodes(&self) -> Vec<NodeId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// The agreement subtree of a course group at threshold `m`: leaf items that
/// appear in at least `m` of the courses, plus all their ancestors (so the
/// result renders as a tree rooted at the guideline root).
#[derive(Debug, Clone)]
pub struct AgreementTree {
    /// The threshold used.
    pub threshold: usize,
    /// Leaf items meeting the threshold, with the number of courses they
    /// appear in.
    pub agreed_leaves: Vec<(NodeId, usize)>,
    /// All nodes of the induced subtree (leaves + ancestors), sorted.
    pub nodes: Vec<NodeId>,
}

impl AgreementTree {
    /// Build from per-tag course counts (as produced by
    /// `CourseMatrix::tags_with_agreement(1)`).
    pub fn build(
        ontology: &Ontology,
        tag_course_counts: &[(NodeId, usize)],
        threshold: usize,
    ) -> Self {
        let agreed_leaves: Vec<(NodeId, usize)> = tag_course_counts
            .iter()
            .filter(|&&(_, c)| c >= threshold)
            .copied()
            .collect();
        let mut set = std::collections::BTreeSet::new();
        for &(leaf, _) in &agreed_leaves {
            for id in ontology.path(leaf) {
                set.insert(id);
            }
        }
        AgreementTree {
            threshold,
            agreed_leaves,
            nodes: set.into_iter().collect(),
        }
    }

    /// Knowledge areas spanned by the agreed items.
    pub fn knowledge_areas(&self, ontology: &Ontology) -> Vec<NodeId> {
        let mut kas = std::collections::BTreeSet::new();
        for &(leaf, _) in &self.agreed_leaves {
            if let Some(ka) = ontology.knowledge_area_of(leaf) {
                kas.insert(ka);
            }
        }
        kas.into_iter().collect()
    }

    /// Knowledge units spanned, with how many agreed leaves each holds.
    pub fn knowledge_units(&self, ontology: &Ontology) -> Vec<(NodeId, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for &(leaf, _) in &self.agreed_leaves {
            if let Some(ku) = ontology.knowledge_unit_of(leaf) {
                *map.entry(ku).or_insert(0) += 1;
            }
        }
        map.into_iter().collect()
    }

    /// Number of agreed leaf items.
    pub fn len(&self) -> usize {
        self.agreed_leaves.len()
    }

    /// Whether no item meets the threshold.
    pub fn is_empty(&self) -> bool {
        self.agreed_leaves.is_empty()
    }
}

/// Divergent alignment score between two tag multisets over the ontology.
///
/// For each node, the score is in `[-1, +1]`: −1 = only the first set hits
/// the subtree, +1 = only the second, 0 = perfectly balanced (the paper's
/// "mid-range of the scale represents the materials are fully aligned").
#[derive(Debug, Clone)]
pub struct AlignmentView {
    /// Hit tree of the first set.
    pub left: HitTree,
    /// Hit tree of the second set.
    pub right: HitTree,
}

impl AlignmentView {
    /// Build from two tag sets.
    pub fn build(ontology: &Ontology, left: &[NodeId], right: &[NodeId]) -> Self {
        AlignmentView {
            left: HitTree::from_tags(ontology, left),
            right: HitTree::from_tags(ontology, right),
        }
    }

    /// Divergent score at a node: `(r - l) / (r + l)`, or `None` if neither
    /// side hits the subtree.
    pub fn score(&self, id: NodeId) -> Option<f64> {
        let l = self.left.count(id) as f64;
        let r = self.right.count(id) as f64;
        if l + r == 0.0 {
            None
        } else {
            Some((r - l) / (r + l))
        }
    }

    /// Combined size at a node (total hits from both sides) — the radial
    /// view maps this to node radius.
    pub fn size(&self, id: NodeId) -> usize {
        self.left.count(id) + self.right.count(id)
    }

    /// Mean absolute divergence over nodes hit by either side: 0 = perfectly
    /// aligned course, 1 = disjoint.
    pub fn misalignment(&self, ontology: &Ontology) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for node in ontology.nodes() {
            if let Some(s) = self.score(node.id) {
                total += s.abs();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    #[test]
    fn hit_counts_aggregate_up() {
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        let t3 = g.by_code("AL.BA.t1").unwrap();
        let h = HitTree::from_tags(g, &[t1, t2, t3]);
        assert_eq!(h.count(t1), 1);
        let fpc = g.by_code("SDF.FPC").unwrap();
        assert_eq!(h.count(fpc), 2);
        let sdf = g.by_code("SDF").unwrap();
        assert_eq!(h.count(sdf), 2);
        let al = g.by_code("AL").unwrap();
        assert_eq!(h.count(al), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn multi_hits_accumulate() {
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let h = HitTree::from_leaf_hits(g, &[(t1, 5)]);
        assert_eq!(h.count(t1), 5);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn agreement_tree_thresholds() {
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        let t3 = g.by_code("AL.BA.t1").unwrap();
        let counts = vec![(t1, 4), (t2, 2), (t3, 1)];
        let at2 = AgreementTree::build(g, &counts, 2);
        assert_eq!(at2.len(), 2);
        let at4 = AgreementTree::build(g, &counts, 4);
        assert_eq!(at4.len(), 1);
        assert_eq!(at4.agreed_leaves[0].0, t1);
        // Induced tree contains ancestors.
        assert!(at4.nodes.contains(&g.root()));
        assert!(at4.nodes.contains(&g.by_code("SDF").unwrap()));
        let at5 = AgreementTree::build(g, &counts, 5);
        assert!(at5.is_empty());
    }

    #[test]
    fn agreement_tree_spans() {
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t3 = g.by_code("AL.BA.t1").unwrap();
        let at = AgreementTree::build(g, &[(t1, 2), (t3, 2)], 2);
        let kas = at.knowledge_areas(g);
        assert_eq!(kas.len(), 2);
        let kus = at.knowledge_units(g);
        assert_eq!(kus.len(), 2);
        assert!(kus.iter().all(|&(_, n)| n == 1));
    }

    #[test]
    fn alignment_scores() {
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("SDF.FPC.t2").unwrap();
        let v = AlignmentView::build(g, &[t1], &[t2]);
        assert_eq!(v.score(t1), Some(-1.0));
        assert_eq!(v.score(t2), Some(1.0));
        let fpc = g.by_code("SDF.FPC").unwrap();
        assert_eq!(v.score(fpc), Some(0.0), "balanced at the KU");
        assert_eq!(v.size(fpc), 2);
        let unrelated = g.by_code("NC").unwrap();
        assert_eq!(v.score(unrelated), None);
    }

    #[test]
    fn perfectly_aligned_has_zero_misalignment() {
        let g = cs2013();
        let t1 = g.by_code("SDF.FPC.t1").unwrap();
        let t2 = g.by_code("AL.BA.t2").unwrap();
        let v = AlignmentView::build(g, &[t1, t2], &[t1, t2]);
        assert_eq!(v.misalignment(g), 0.0);
        let w = AlignmentView::build(g, &[t1], &[t2]);
        assert!(w.misalignment(g) > 0.5);
    }
}
