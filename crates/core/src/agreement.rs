//! Course-group agreement analysis (§4.3, §4.5, §4.7; Figures 3, 4, 6, 8).

use anchors_curricula::{NodeId, Ontology};
use anchors_linalg::stats::survival_counts;
use anchors_materials::{AgreementTree, CourseId, CourseMatrix, MaterialStore};

/// Full agreement analysis of one course group.
#[derive(Debug, Clone)]
pub struct AgreementAnalysis {
    /// Group name (e.g. `"CS1"`).
    pub group: String,
    /// The course matrix the analysis is computed from.
    pub matrix: CourseMatrix,
    /// For each tag (column), the number of courses it appears in.
    pub tag_counts: Vec<usize>,
    /// `survival[m]` = number of tags appearing in ≥ m courses.
    pub survival: Vec<usize>,
    /// Agreement trees at thresholds 2, 3, 4 (the paper's figures).
    pub trees: Vec<AgreementTree>,
}

impl AgreementAnalysis {
    /// Run the analysis for a course group.
    pub fn run(
        store: &MaterialStore,
        ontology: &Ontology,
        group_name: impl Into<String>,
        courses: &[CourseId],
    ) -> Self {
        let matrix = CourseMatrix::build(store, courses);
        let tag_counts = matrix.tag_course_counts();
        let survival = survival_counts(&tag_counts);
        let all_counts = matrix.tags_with_agreement(1);
        let trees = (2..=4)
            .map(|m| AgreementTree::build(ontology, &all_counts, m))
            .collect();
        AgreementAnalysis {
            group: group_name.into(),
            matrix,
            tag_counts,
            survival,
            trees,
        }
    }

    /// Number of distinct tags the group maps to.
    pub fn total_tags(&self) -> usize {
        self.matrix.n_tags()
    }

    /// Number of tags appearing in at least `m` courses.
    pub fn tags_at(&self, m: usize) -> usize {
        self.survival.get(m).copied().unwrap_or(0)
    }

    /// The agreement tree at threshold `m` (2 ≤ m ≤ 4).
    pub fn tree(&self, m: usize) -> &AgreementTree {
        assert!((2..=4).contains(&m), "trees are built for m in 2..=4");
        &self.trees[m - 2]
    }

    /// Agreement fraction at threshold `m`: `tags_at(m) / total`.
    pub fn agreement_fraction(&self, m: usize) -> f64 {
        if self.total_tags() == 0 {
            0.0
        } else {
            self.tags_at(m) as f64 / self.total_tags() as f64
        }
    }

    /// Knowledge-area codes spanned by the agreement tree at threshold `m`.
    pub fn spanned_kas(&self, ontology: &Ontology, m: usize) -> Vec<String> {
        self.tree(m)
            .knowledge_areas(ontology)
            .into_iter()
            .map(|ka| ontology.node(ka).code.clone())
            .collect()
    }

    /// Agreed tags at threshold `m` lying *outside* a knowledge area — used
    /// for the §4.7 observation about non-PDC agreement in PDC courses.
    pub fn agreed_outside(&self, ontology: &Ontology, m: usize, ka_code: &str) -> Vec<NodeId> {
        let ka = ontology
            .by_code(ka_code)
            .unwrap_or_else(|| panic!("unknown KA {ka_code}"));
        self.tree(m)
            .agreed_leaves
            .iter()
            .filter(|&&(t, _)| !ontology.is_ancestor(ka, t))
            .map(|&(t, _)| t)
            .collect()
    }

    /// One-paragraph textual summary (used by examples and figure dumps).
    pub fn summary(&self) -> String {
        format!(
            "{}: {} courses map to {} distinct curriculum tags; {} appear in >=2 courses, {} in >=3, {} in >=4",
            self.group,
            self.matrix.n_courses(),
            self.total_tags(),
            self.tags_at(2),
            self.tags_at(3),
            self.tags_at(4),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_corpus::default_corpus;
    use anchors_curricula::cs2013;

    fn cs1_analysis() -> AgreementAnalysis {
        let c = default_corpus();
        AgreementAnalysis::run(&c.store, cs2013(), "CS1", &c.cs1_group())
    }

    #[test]
    fn survival_is_consistent_with_trees() {
        let a = cs1_analysis();
        for m in 2..=4 {
            assert_eq!(a.tree(m).len(), a.tags_at(m), "threshold {m}");
        }
        assert_eq!(a.tags_at(1), a.total_tags());
    }

    #[test]
    fn survival_monotone() {
        let a = cs1_analysis();
        for w in a.survival.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn cs1_agreement_at_4_inside_sdf() {
        let a = cs1_analysis();
        let kas = a.spanned_kas(cs2013(), 4);
        assert!(kas.contains(&"SDF".to_string()));
        assert!(
            kas.len() <= 2,
            "agreement@4 nearly collapses to SDF: {kas:?}"
        );
    }

    #[test]
    fn cs1_agreement_at_2_spans_multiple_areas() {
        let a = cs1_analysis();
        let kas = a.spanned_kas(cs2013(), 2);
        assert!(
            kas.len() >= 4,
            "paper: agreement@2 spans 4 knowledge areas, got {kas:?}"
        );
    }

    #[test]
    fn pdc_outside_pd_items_are_cs1_ds_concepts() {
        let g = cs2013();
        let c = default_corpus();
        let a = AgreementAnalysis::run(&c.store, g, "PDC", &c.pdc_group());
        let outside = a.agreed_outside(g, 2, "PD");
        assert!(!outside.is_empty());
        // Every outside item should come from the course-overlap areas the
        // paper names (plus the systems fundamentals the PDC profile uses).
        for t in &outside {
            let ka = g.knowledge_area_of(*t).unwrap();
            let code = g.node(ka).code.as_str();
            assert!(
                ["DS", "AL", "SF", "SDF", "PL", "OS", "AR"].contains(&code),
                "unexpected agreement area {code}"
            );
        }
    }

    #[test]
    fn summary_mentions_counts() {
        let a = cs1_analysis();
        let s = a.summary();
        assert!(s.contains("CS1"));
        assert!(s.contains(&a.total_tags().to_string()));
    }

    #[test]
    fn fraction_bounds() {
        let a = cs1_analysis();
        for m in 1..=4 {
            let f = a.agreement_fraction(m);
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
