//! Flavor discovery: NNMF over a course group plus interpretation of the
//! resulting types (§4.2, §4.4, §4.6; Figures 2, 5, 7).

use crate::error::AnchorsError;
use anchors_curricula::{NodeId, Ontology};
use anchors_factor::{
    select_rank, try_nnmf, try_nnmf_sketched, try_nnmf_warm, try_rank_scan, Init, NnmfConfig,
    NnmfModel, SketchReport, WarmStart, DUPLICATE_THRESHOLD,
};
use anchors_linalg::{Backend, Matrix, SketchConfig};
use anchors_materials::{CourseId, CourseMatrix, MaterialStore, SparseCourseMatrix};
use std::collections::BTreeMap;

/// Below this matrix density the NNMF runs on CSR storage; at or above it,
/// dense. Course × tag incidence matrices get sparser as corpora grow
/// (each course touches a bounded set of tags while the guideline union
/// keeps widening), and at ~25% stored entries the CSR kernels' per-entry
/// overhead breaks even with dense traversal. Factors are bitwise
/// identical either way, so the threshold is purely a performance choice.
pub const SPARSE_DENSITY_THRESHOLD: f64 = 0.25;

/// Pick the NNMF storage backend for a matrix of the given density
/// (fraction of nonzero entries).
pub fn select_backend(density: f64) -> Backend {
    if density < SPARSE_DENSITY_THRESHOLD {
        Backend::Sparse
    } else {
        Backend::Dense
    }
}

/// Aggregated weight of a type over knowledge areas / units.
#[derive(Debug, Clone)]
pub struct TypeSummary {
    /// Type index (row of `H`).
    pub index: usize,
    /// Total `H` mass of the type.
    pub mass: f64,
    /// Knowledge-area code → aggregated weight, sorted descending.
    pub ka_weights: Vec<(String, f64)>,
    /// Knowledge-unit code → aggregated weight, top units first.
    pub ku_weights: Vec<(String, f64)>,
}

impl TypeSummary {
    /// Dominant knowledge area code.
    pub fn dominant_ka(&self) -> Option<&str> {
        self.ka_weights.first().map(|(k, _)| k.as_str())
    }

    /// Top `n` knowledge-unit codes.
    pub fn top_kus(&self, n: usize) -> Vec<&str> {
        self.ku_weights
            .iter()
            .take(n)
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Weight a knowledge unit contributes to this type (0 if absent).
    pub fn ku_weight(&self, ku_code: &str) -> f64 {
        self.ku_weights
            .iter()
            .find(|(k, _)| k == ku_code)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }
}

/// How the requested factorization was adjusted to fit the data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlavorDiagnostics {
    /// The `k` the caller asked for.
    pub requested_k: usize,
    /// The `k` actually factorized (≤ requested; clamped to the matrix's
    /// minimum dimension).
    pub effective_k: usize,
    /// Whether `requested_k` had to be clamped.
    pub clamped: bool,
    /// Free-form notes (clamp reasons, NNMF recovery actions). Non-empty
    /// notes mark the fit as degraded in the resilient pipeline.
    pub notes: Vec<String>,
    /// Storage backend the NNMF ran on, selected by matrix density.
    pub backend: Backend,
    /// Fraction of nonzero entries in the course matrix.
    pub density: f64,
    /// Informational annotations (backend choice, density) that do *not*
    /// degrade the stage — unlike `notes`, these describe a healthy fit.
    pub info: Vec<String>,
    /// Sketch parameters and quality when the fit went through the
    /// sketched path ([`try_discover_flavors_sketched`]); `None` for
    /// exact fits.
    pub sketch: Option<SketchReport>,
    /// Measured warm-vs-cold comparison when the fit went through the
    /// warm-start path ([`try_discover_flavors_warm`]); `None` for cold
    /// fits.
    pub warm: Option<WarmStartDiagnostics>,
}

/// The measured iterations-to-converge delta of a warm-started refit
/// against a cold deterministic NNDSVD fit of the *same* matrix — the
/// honest audit of whether the previous `H` actually bought anything.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartDiagnostics {
    /// Iterations the warm-started fit used.
    pub warm_iterations: usize,
    /// Iterations the cold NNDSVD reference fit used.
    pub cold_iterations: usize,
    /// Final loss of the warm fit (the returned model's loss).
    pub warm_loss: f64,
    /// Final loss of the cold reference fit.
    pub cold_loss: f64,
    /// Whether the warm start diverged and the cold ladder produced the
    /// returned model instead.
    pub fell_back_cold: bool,
}

impl WarmStartDiagnostics {
    /// Fraction of cold iterations the warm start saved (0 when it saved
    /// nothing or fell back; 0.7 means warm used 30% of cold's sweeps).
    pub fn iteration_savings(&self) -> f64 {
        if self.cold_iterations == 0 || self.warm_iterations >= self.cold_iterations {
            0.0
        } else {
            1.0 - self.warm_iterations as f64 / self.cold_iterations as f64
        }
    }
}

/// A fitted flavor model of a course group.
#[derive(Debug, Clone)]
pub struct FlavorModel {
    /// The underlying course matrix.
    pub matrix: CourseMatrix,
    /// The winning NNMF model (normalized: unit-norm `H` rows).
    pub model: NnmfModel,
    /// Per-type interpretation.
    pub types: Vec<TypeSummary>,
    /// Dominant type per course (aligned with `matrix.courses`).
    pub assignments: Vec<usize>,
    /// What was adjusted to produce the fit (k clamps, recovery actions).
    pub diagnostics: FlavorDiagnostics,
}

/// Discover flavors with a fixed `k` (the paper's settings: `k = 4` for the
/// all-courses model of Figure 2; `k = 3` for Figures 5 and 7).
///
/// # Panics
/// Panics on the conditions [`try_discover_flavors`] reports as errors
/// (empty course group, degenerate matrix, unrecoverable NNMF divergence).
pub fn discover_flavors(
    store: &MaterialStore,
    ontology: &Ontology,
    courses: &[CourseId],
    k: usize,
) -> FlavorModel {
    match try_discover_flavors(store, ontology, courses, k) {
        Ok(fm) => fm,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible flavor discovery with a fixed requested `k`.
///
/// A `k` larger than the group supports is clamped to
/// `min(n_courses, n_tags)` (and recorded in the returned model's
/// [`FlavorDiagnostics`]) instead of panicking, mirroring how an analyst
/// would shrink the rank for a small group.
pub fn try_discover_flavors(
    store: &MaterialStore,
    ontology: &Ontology,
    courses: &[CourseId],
    k: usize,
) -> Result<FlavorModel, AnchorsError> {
    try_discover_flavors_with(store, ontology, courses, &NnmfConfig::paper_default(k))
}

/// [`try_discover_flavors`] with an explicit NNMF configuration (the
/// resilient pipeline reseeds retries through this entry point).
/// `config.k` is the requested rank and is clamped the same way.
pub fn try_discover_flavors_with(
    store: &MaterialStore,
    ontology: &Ontology,
    courses: &[CourseId],
    config: &NnmfConfig,
) -> Result<FlavorModel, AnchorsError> {
    if courses.is_empty() {
        return Err(AnchorsError::EmptyGroup { stage: "flavors" });
    }
    // Build directly into CSR (never materializing a dense intermediate),
    // then decide the solver backend from the observed density. The dense
    // view is materialized only when needed: for the dense solve, and for
    // the interpretation layer of the returned model.
    let sparse = SparseCourseMatrix::build(store, courses);
    if sparse.n_tags() == 0 {
        return Err(AnchorsError::DegenerateMatrix {
            stage: "flavors",
            detail: format!("{} courses span no curriculum tags", courses.len()),
        });
    }
    let density = sparse.density();
    let backend = select_backend(density);
    let requested_k = config.k;
    let max_k = sparse.n_courses().min(sparse.n_tags()).max(1);
    let effective_k = requested_k.min(max_k).max(1);
    let mut diagnostics = FlavorDiagnostics {
        requested_k,
        effective_k,
        clamped: effective_k != requested_k,
        notes: Vec::new(),
        backend,
        density,
        info: vec![format!("nnmf backend: {backend} (density {density:.3})")],
        sketch: None,
        warm: None,
    };
    if diagnostics.clamped {
        diagnostics.notes.push(format!(
            "k clamped from {requested_k} to {effective_k} (matrix is {:?})",
            (sparse.n_courses(), sparse.n_tags())
        ));
    }
    let cfg = NnmfConfig {
        k: effective_k,
        ..config.clone()
    };
    let dense_a = sparse.a.to_dense();
    let mut model = match backend {
        Backend::Sparse => try_nnmf(&sparse.a, &cfg)?,
        Backend::Dense => try_nnmf(&dense_a, &cfg)?,
    };
    let matrix = CourseMatrix {
        courses: sparse.courses,
        tag_space: sparse.tag_space,
        a: dense_a,
    };
    if !model.recovery.is_clean() {
        diagnostics
            .notes
            .push(format!("NNMF recovery engaged: {:?}", model.recovery));
    }
    model.normalize();
    let types = summarize_types(&model, &matrix, ontology);
    let assignments = model.dominant_types();
    Ok(FlavorModel {
        matrix,
        model,
        types,
        assignments,
        diagnostics,
    })
}

/// [`try_discover_flavors_with`] through the sketched NNMF path: the
/// factorization runs on an `s × tags` row sketch of the course matrix
/// (`s = sketch.rows ≪ n_courses`) and `W` is lifted back with one exact
/// batched-NNLS pass — see `anchors_factor::sketched` for the algorithm
/// and its cone-preservation requirements. Intended for corpora far past
/// the paper's scale, where the exact per-sweep cost grows linearly in
/// courses.
///
/// The sketch parameters and measured quality (sketch-side loss, exact
/// loss, exact relative error) land in the returned model's
/// [`FlavorDiagnostics::sketch`], and an `info` line annotates the fit;
/// recovery actions degrade the stage exactly as on the exact path.
pub fn try_discover_flavors_sketched(
    store: &MaterialStore,
    ontology: &Ontology,
    courses: &[CourseId],
    config: &NnmfConfig,
    sketch: &SketchConfig,
) -> Result<FlavorModel, AnchorsError> {
    if courses.is_empty() {
        return Err(AnchorsError::EmptyGroup { stage: "flavors" });
    }
    let sparse = SparseCourseMatrix::build(store, courses);
    if sparse.n_tags() == 0 {
        return Err(AnchorsError::DegenerateMatrix {
            stage: "flavors",
            detail: format!("{} courses span no curriculum tags", courses.len()),
        });
    }
    let density = sparse.density();
    let backend = select_backend(density);
    let requested_k = config.k;
    // The rank must fit both the course matrix and the sketch.
    let max_k = sparse
        .n_courses()
        .min(sparse.n_tags())
        .min(sketch.rows)
        .max(1);
    let effective_k = requested_k.min(max_k).max(1);
    let mut diagnostics = FlavorDiagnostics {
        requested_k,
        effective_k,
        clamped: effective_k != requested_k,
        notes: Vec::new(),
        backend,
        density,
        info: vec![format!("nnmf backend: {backend} (density {density:.3})")],
        sketch: None,
        warm: None,
    };
    if diagnostics.clamped {
        diagnostics.notes.push(format!(
            "k clamped from {requested_k} to {effective_k} (matrix is {:?}, sketch rows {})",
            (sparse.n_courses(), sparse.n_tags()),
            sketch.rows
        ));
    }
    let cfg = NnmfConfig {
        k: effective_k,
        ..config.clone()
    };
    let dense_a = sparse.a.to_dense();
    let fitted = match backend {
        Backend::Sparse => try_nnmf_sketched(&sparse.a, &cfg, sketch)?,
        Backend::Dense => try_nnmf_sketched(&dense_a, &cfg, sketch)?,
    };
    let mut model = fitted.model;
    let report = fitted.report;
    diagnostics.info.push(format!(
        "sketched nnmf: {} sketch, {} rows (seed {}), exact relative error {:.4}",
        report.kind, report.sketch_rows, report.sketch_seed, report.relative_error
    ));
    diagnostics.sketch = Some(report);
    let matrix = CourseMatrix {
        courses: sparse.courses,
        tag_space: sparse.tag_space,
        a: dense_a,
    };
    if !model.recovery.is_clean() {
        diagnostics
            .notes
            .push(format!("NNMF recovery engaged: {:?}", model.recovery));
    }
    model.normalize();
    let types = summarize_types(&model, &matrix, ontology);
    let assignments = model.dominant_types();
    Ok(FlavorModel {
        matrix,
        model,
        types,
        assignments,
        diagnostics,
    })
}

/// [`try_discover_flavors_with`] through the warm-start path: HALS is
/// seeded from `warm_h`, a `k × tags` mixing matrix from a *previous* fit
/// of (an earlier revision of) the same course group, instead of a cold
/// NNDSVD/random init — see `anchors_factor::warm` for the seeding math
/// and the cases where a stale `H` cannot help.
///
/// To keep the speedup honest, the same matrix is also fitted cold from a
/// deterministic NNDSVD init and the measured iterations-to-converge delta
/// lands in the returned model's [`FlavorDiagnostics::warm`]. The *warm*
/// model is the one returned (unless it diverged and fell back, which the
/// diagnostics record).
///
/// `warm_h` must have exactly `k` rows and one column per tag of the
/// rebuilt matrix; a shape drift (the tag union widened since the previous
/// fit) surfaces as a typed error rather than a silent misalignment, and
/// callers should fall back to a cold fit.
pub fn try_discover_flavors_warm(
    store: &MaterialStore,
    ontology: &Ontology,
    courses: &[CourseId],
    config: &NnmfConfig,
    warm_h: &Matrix,
) -> Result<FlavorModel, AnchorsError> {
    if courses.is_empty() {
        return Err(AnchorsError::EmptyGroup { stage: "flavors" });
    }
    let sparse = SparseCourseMatrix::build(store, courses);
    if sparse.n_tags() == 0 {
        return Err(AnchorsError::DegenerateMatrix {
            stage: "flavors",
            detail: format!("{} courses span no curriculum tags", courses.len()),
        });
    }
    let density = sparse.density();
    let backend = select_backend(density);
    let requested_k = config.k;
    let max_k = sparse.n_courses().min(sparse.n_tags()).max(1);
    let effective_k = requested_k.min(max_k).max(1);
    let mut diagnostics = FlavorDiagnostics {
        requested_k,
        effective_k,
        clamped: effective_k != requested_k,
        notes: Vec::new(),
        backend,
        density,
        info: vec![format!("nnmf backend: {backend} (density {density:.3})")],
        sketch: None,
        warm: None,
    };
    if diagnostics.clamped {
        diagnostics.notes.push(format!(
            "k clamped from {requested_k} to {effective_k} (matrix is {:?})",
            (sparse.n_courses(), sparse.n_tags())
        ));
    }
    let cfg = NnmfConfig {
        k: effective_k,
        ..config.clone()
    };
    let warm = WarmStart { h: warm_h, w: None };
    let dense_a = sparse.a.to_dense();
    let fitted = match backend {
        Backend::Sparse => try_nnmf_warm(&sparse.a, &cfg, &warm)?,
        Backend::Dense => try_nnmf_warm(&dense_a, &cfg, &warm)?,
    };
    let mut model = fitted.model;
    let report = fitted.report;
    // The honest reference: one deterministic cold fit of the same matrix.
    // NNDSVD with a single restart so the comparison is not noise from a
    // lucky random seed.
    let cold_cfg = NnmfConfig {
        init: Init::Nndsvd,
        restarts: 1,
        ..cfg.clone()
    };
    let cold = match backend {
        Backend::Sparse => try_nnmf(&sparse.a, &cold_cfg)?,
        Backend::Dense => try_nnmf(&dense_a, &cold_cfg)?,
    };
    let warm_diag = WarmStartDiagnostics {
        warm_iterations: report.warm_iterations,
        cold_iterations: cold.iterations,
        warm_loss: report.warm_loss,
        cold_loss: cold.loss,
        fell_back_cold: report.fell_back_cold,
    };
    diagnostics.info.push(format!(
        "warm nnmf: {} iterations vs {} cold ({:.0}% saved{})",
        warm_diag.warm_iterations,
        warm_diag.cold_iterations,
        warm_diag.iteration_savings() * 100.0,
        if warm_diag.fell_back_cold {
            ", fell back cold"
        } else {
            ""
        }
    ));
    if report.fell_back_cold {
        diagnostics
            .notes
            .push("warm start diverged; cold restart ladder produced the model".to_string());
    }
    diagnostics.warm = Some(warm_diag);
    let matrix = CourseMatrix {
        courses: sparse.courses,
        tag_space: sparse.tag_space,
        a: dense_a,
    };
    if !model.recovery.is_clean() {
        diagnostics
            .notes
            .push(format!("NNMF recovery engaged: {:?}", model.recovery));
    }
    model.normalize();
    let types = summarize_types(&model, &matrix, ontology);
    let assignments = model.dominant_types();
    Ok(FlavorModel {
        matrix,
        model,
        types,
        assignments,
        diagnostics,
    })
}

/// Mechanized version of the paper's §4.4 k-selection: scan `k_range`, pick
/// the largest k without duplicated dimensions, and return the chosen model
/// together with the scan diagnostics.
///
/// # Panics
/// Panics on the conditions [`try_discover_flavors_auto`] reports as
/// errors (empty course group, degenerate matrix, unrecoverable NNMF
/// divergence at some scanned `k`).
pub fn discover_flavors_auto(
    store: &MaterialStore,
    ontology: &Ontology,
    courses: &[CourseId],
    k_range: std::ops::RangeInclusive<usize>,
) -> (FlavorModel, Vec<anchors_factor::RankDiagnostics>) {
    match try_discover_flavors_auto(store, ontology, courses, k_range) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible automatic k-selection. The per-`k` fits inside the scan fan
/// out across threads (deterministically — see `anchors_linalg::parallel`);
/// a fit failure at any scanned `k` surfaces as a typed error instead of
/// panicking, so the resilient pipeline can degrade the stage.
pub fn try_discover_flavors_auto(
    store: &MaterialStore,
    ontology: &Ontology,
    courses: &[CourseId],
    k_range: std::ops::RangeInclusive<usize>,
) -> Result<(FlavorModel, Vec<anchors_factor::RankDiagnostics>), AnchorsError> {
    if courses.is_empty() {
        return Err(AnchorsError::EmptyGroup { stage: "flavors" });
    }
    let sparse = SparseCourseMatrix::build(store, courses);
    if sparse.n_tags() == 0 {
        return Err(AnchorsError::DegenerateMatrix {
            stage: "flavors",
            detail: format!("{} courses span no curriculum tags", courses.len()),
        });
    }
    let density = sparse.density();
    let backend = select_backend(density);
    let base = NnmfConfig::paper_default(2);
    let scan = match backend {
        Backend::Sparse => try_rank_scan(&sparse.a, k_range, &base)?,
        Backend::Dense => try_rank_scan(&sparse.a.to_dense(), k_range, &base)?,
    };
    let matrix = CourseMatrix {
        courses: sparse.courses,
        tag_space: sparse.tag_space,
        a: sparse.a.to_dense(),
    };
    let k = select_rank(&scan, DUPLICATE_THRESHOLD);
    let diags: Vec<anchors_factor::RankDiagnostics> = scan.iter().map(|(d, _)| d.clone()).collect();
    let mut model = scan
        .into_iter()
        .find(|(d, _)| d.k == k)
        .map(|(_, m)| m)
        .expect("selected k came from the scan");
    model.normalize();
    let types = summarize_types(&model, &matrix, ontology);
    let assignments = model.dominant_types();
    let diagnostics = FlavorDiagnostics {
        requested_k: k,
        effective_k: k,
        clamped: false,
        notes: Vec::new(),
        backend,
        density,
        info: vec![format!("nnmf backend: {backend} (density {density:.3})")],
        sketch: None,
        warm: None,
    };
    Ok((
        FlavorModel {
            matrix,
            model,
            types,
            assignments,
            diagnostics,
        },
        diags,
    ))
}

/// Aggregate each type's `H` row over knowledge areas and units.
fn summarize_types(
    model: &NnmfModel,
    matrix: &CourseMatrix,
    ontology: &Ontology,
) -> Vec<TypeSummary> {
    let mut out = Vec::with_capacity(model.k());
    for t in 0..model.k() {
        let row = model.h.row(t);
        let mut ka: BTreeMap<String, f64> = BTreeMap::new();
        let mut ku: BTreeMap<String, f64> = BTreeMap::new();
        let mut mass = 0.0;
        for (j, &w) in row.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            mass += w;
            let tag: NodeId = matrix.tag_space.tag(j);
            if let Some(a) = ontology.knowledge_area_of(tag) {
                *ka.entry(ontology.node(a).code.clone()).or_insert(0.0) += w;
            }
            if let Some(u) = ontology.knowledge_unit_of(tag) {
                *ku.entry(ontology.node(u).code.clone()).or_insert(0.0) += w;
            }
        }
        let mut ka_weights: Vec<(String, f64)> = ka.into_iter().collect();
        ka_weights.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let mut ku_weights: Vec<(String, f64)> = ku.into_iter().collect();
        ku_weights.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        out.push(TypeSummary {
            index: t,
            mass,
            ka_weights,
            ku_weights,
        });
    }
    out
}

impl FlavorModel {
    /// Number of types.
    pub fn k(&self) -> usize {
        self.model.k()
    }

    /// Courses whose dominant type is `t`, as indices into
    /// `matrix.courses`.
    pub fn courses_of_type(&self, t: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Row of `W` for a course index, normalized to sum 1 (mixture view).
    pub fn mixture_of(&self, course_idx: usize) -> Vec<f64> {
        let row = self.model.w.row(course_idx);
        let s: f64 = row.iter().sum();
        if s == 0.0 {
            vec![0.0; row.len()]
        } else {
            row.iter().map(|v| v / s).collect()
        }
    }

    /// Whether a course loads "evenly" on all types: no type holds more
    /// than `threshold` of its mixture (the paper's observation about UCF).
    pub fn is_even_mixture(&self, course_idx: usize, threshold: f64) -> bool {
        self.mixture_of(course_idx)
            .into_iter()
            .all(|v| v <= threshold)
    }

    /// The type whose profile gives the largest weight to a knowledge unit.
    pub fn type_emphasizing(&self, ku_code: &str) -> Option<usize> {
        self.types
            .iter()
            .max_by(|a, b| {
                a.ku_weight(ku_code)
                    .partial_cmp(&b.ku_weight(ku_code))
                    .expect("finite")
            })
            .filter(|t| t.ku_weight(ku_code) > 0.0)
            .map(|t| t.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_corpus::default_corpus;
    use anchors_curricula::cs2013;
    use anchors_materials::CourseLabel;

    #[test]
    fn all_courses_k4_separates_families() {
        // Figure 2: the k=4 decomposition of all courses shows dimensions
        // aligned with DS, SoftEng, PDC, and CS1.
        let c = default_corpus();
        let g = cs2013();
        let fm = discover_flavors(&c.store, g, c.all(), 4);
        assert_eq!(fm.k(), 4);

        let idx_of = |cid| c.all().iter().position(|&x| x == cid).unwrap();
        // Courses of the same family should mostly share a dominant type,
        // and different families should use different types.
        let type_of_label = |label: CourseLabel| -> usize {
            let ids = c.with_label(label);
            let mut counts = [0usize; 4];
            for id in ids {
                counts[fm.assignments[idx_of(id)]] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(t, _)| t)
                .unwrap()
        };
        let t_pdc = type_of_label(CourseLabel::Pdc);
        let t_se = type_of_label(CourseLabel::SoftEng);
        let t_ds = type_of_label(CourseLabel::DataStructures);
        assert_ne!(t_pdc, t_se, "PDC and SoftEng use different dimensions");
        assert_ne!(t_pdc, t_ds, "PDC and DS use different dimensions");
        assert_ne!(t_se, t_ds, "SoftEng and DS use different dimensions");
        // All three PDC courses agree on their dimension.
        for id in c.pdc_group() {
            assert_eq!(fm.assignments[idx_of(id)], t_pdc);
        }
    }

    #[test]
    fn cs1_k3_recovers_paper_flavors() {
        // Figure 5: Singh → OOP type, Kerney → imperative type, Ahmed →
        // algorithmic type, and the three types are distinguishable by
        // their dominant knowledge units.
        let c = default_corpus();
        let g = cs2013();
        let cs1 = c.cs1_group();
        let fm = discover_flavors(&c.store, g, &cs1, 3);
        let idx = |needle: &str| {
            fm.matrix
                .courses
                .iter()
                .position(|&id| c.store.course(id).name.contains(needle))
                .unwrap()
        };
        let t_singh = fm.assignments[idx("Singh")];
        let t_kerney = fm.assignments[idx("Kerney")];
        let t_ahmed = fm.assignments[idx("Ahmed")];
        assert_ne!(t_singh, t_kerney, "OOP and imperative CS1 separate");
        assert_ne!(t_singh, t_ahmed, "OOP and algorithmic CS1 separate");
        assert_ne!(t_kerney, t_ahmed, "imperative and algorithmic separate");

        // Type semantics: Singh's type is OOP-heavy; Ahmed's is
        // algorithms-heavy; Kerney's covers data representation.
        assert!(fm.types[t_singh].ku_weight("PL.OOP") > fm.types[t_kerney].ku_weight("PL.OOP"));
        assert!(fm.types[t_ahmed].ku_weight("AL.BA") > fm.types[t_singh].ku_weight("AL.BA"));
        assert!(
            fm.types[t_kerney].ku_weight("AR.MLRD") > fm.types[t_singh].ku_weight("AR.MLRD"),
            "type 2 covers in-memory representation which types 1/3 do not"
        );
    }

    #[test]
    fn ds_algo_k3_flavors_and_ucf_evenness() {
        // Figure 7: OOP flavor (VCU), combinatorial flavor (Algorithms +
        // BSC), applied flavor (UNCC 2214); UCF hits types evenly.
        let c = default_corpus();
        let g = cs2013();
        let group = c.ds_and_algo_group();
        let fm = discover_flavors(&c.store, g, &group, 3);
        let idx = |needle: &str| {
            fm.matrix
                .courses
                .iter()
                .position(|&id| c.store.course(id).name.contains(needle))
                .unwrap()
        };
        let t_vcu = fm.assignments[idx("VCU")];
        let t_2215 = fm.assignments[idx("2215")];
        let t_2214 = fm.assignments[idx("2214 KRS")];
        assert_ne!(t_vcu, t_2215, "OOP and combinatorial DS separate");
        assert_ne!(t_2214, t_2215, "applied and combinatorial DS separate");
        // Wahl's algorithm course lands with the other algorithms course.
        assert_eq!(fm.assignments[idx("Wahl")], t_2215);
        // Type semantics.
        assert!(fm.types[t_vcu].ku_weight("PL.OOP") > fm.types[t_2215].ku_weight("PL.OOP"));
        assert!(fm.types[t_2215].ku_weight("AL.AS") > fm.types[t_vcu].ku_weight("AL.AS"));
        assert!(
            fm.types[t_2214].ku_weight("CN.DIK") > fm.types[t_2215].ku_weight("CN.DIK"),
            "applied type carries datasets/visualization"
        );
        // UCF loads more evenly than the committed courses.
        let ucf_mix = fm.mixture_of(idx("UCF"));
        let vcu_mix = fm.mixture_of(idx("VCU"));
        let max_ucf = ucf_mix.iter().cloned().fold(0.0, f64::max);
        let max_vcu = vcu_mix.iter().cloned().fold(0.0, f64::max);
        assert!(
            max_ucf < max_vcu,
            "UCF ({max_ucf:.2}) spreads over types more than VCU ({max_vcu:.2})"
        );
    }

    #[test]
    fn auto_selection_prefers_3_for_cs1() {
        // §4.4: k=3 was most revealing; k=4 showed duplicate dimensions.
        let c = default_corpus();
        let g = cs2013();
        let (fm, diags) = discover_flavors_auto(&c.store, g, &c.cs1_group(), 2..=4);
        assert!(
            fm.k() >= 2 && fm.k() <= 4,
            "selected k within the scanned range"
        );
        assert_eq!(diags.len(), 3);
        // Diagnostics must show loss decreasing with k.
        assert!(diags[0].loss >= diags[2].loss - 1e-9);
    }

    #[test]
    fn mixtures_sum_to_one() {
        let c = default_corpus();
        let g = cs2013();
        let fm = discover_flavors(&c.store, g, &c.cs1_group(), 3);
        for i in 0..fm.matrix.n_courses() {
            let m = fm.mixture_of(i);
            let s: f64 = m.iter().sum();
            assert!((s - 1.0).abs() < 1e-9 || s == 0.0);
        }
    }

    #[test]
    fn oversized_k_is_clamped_with_diagnostics() {
        // The PDC group has 3 courses; k = 10 used to panic inside nnmf.
        let c = default_corpus();
        let g = cs2013();
        let pdc = c.pdc_group();
        let fm = try_discover_flavors(&c.store, g, &pdc, 10).expect("clamp, not panic");
        assert_eq!(fm.k(), 3, "k clamps to the group size");
        assert!(fm.diagnostics.clamped);
        assert_eq!(fm.diagnostics.requested_k, 10);
        assert_eq!(fm.diagnostics.effective_k, 3);
        assert!(
            fm.diagnostics.notes.iter().any(|n| n.contains("clamped")),
            "{:?}",
            fm.diagnostics.notes
        );
        // A fit within bounds stays clean.
        let fm = try_discover_flavors(&c.store, g, &pdc, 3).unwrap();
        assert!(!fm.diagnostics.clamped);
        assert!(fm.diagnostics.notes.is_empty());
    }

    #[test]
    fn backend_selection_recorded_in_diagnostics() {
        let c = default_corpus();
        let g = cs2013();
        let fm = discover_flavors(&c.store, g, c.all(), 4);
        let d = &fm.diagnostics;
        assert!((0.0..=1.0).contains(&d.density));
        assert_eq!(d.backend, select_backend(d.density));
        assert!(
            d.info.iter().any(|n| n.contains("nnmf backend")),
            "backend choice must be annotated: {:?}",
            d.info
        );
        // Backend selection is informational, never degrading.
        assert!(d.notes.is_empty());
    }

    #[test]
    fn backend_threshold_boundaries() {
        assert_eq!(select_backend(0.0), Backend::Sparse);
        assert_eq!(
            select_backend(SPARSE_DENSITY_THRESHOLD - 1e-9),
            Backend::Sparse
        );
        assert_eq!(select_backend(SPARSE_DENSITY_THRESHOLD), Backend::Dense);
        assert_eq!(select_backend(1.0), Backend::Dense);
    }

    #[test]
    fn empty_group_is_a_typed_error() {
        let c = default_corpus();
        let g = cs2013();
        let err = try_discover_flavors(&c.store, g, &[], 3).unwrap_err();
        assert!(matches!(
            err,
            crate::error::AnchorsError::EmptyGroup { stage: "flavors" }
        ));
    }

    #[test]
    fn sketched_discovery_matches_the_exact_pipeline_shape() {
        let c = default_corpus();
        let g = cs2013();
        let courses = c.all();
        // Sketch down to half the corpus rows; on a corpus this small the
        // point is the plumbing (diagnostics, feasibility), not speed.
        let sketch = SketchConfig::count_sketch(courses.len() / 2, 42);
        let fm = try_discover_flavors_sketched(
            &c.store,
            g,
            courses,
            &NnmfConfig::paper_default(4),
            &sketch,
        )
        .expect("sketched discovery");
        assert_eq!(fm.k(), 4);
        assert_eq!(fm.assignments.len(), courses.len());
        assert!(fm.model.w.is_nonnegative());
        assert!(fm.model.h.is_nonnegative());
        let report = fm.diagnostics.sketch.as_ref().expect("sketch report");
        assert_eq!(report.kind, "countsketch");
        assert_eq!(report.sketch_rows, courses.len() / 2);
        assert!(report.relative_error.is_finite());
        assert!(
            fm.diagnostics.info.iter().any(|n| n.contains("sketched")),
            "sketch use must be annotated: {:?}",
            fm.diagnostics.info
        );
        // The exact path never records a sketch.
        let exact = try_discover_flavors(&c.store, g, courses, 4).unwrap();
        assert!(exact.diagnostics.sketch.is_none());
    }

    #[test]
    fn sketched_discovery_clamps_k_to_the_sketch() {
        let c = default_corpus();
        let g = cs2013();
        // A 3-row sketch cannot support k = 10: clamp, don't panic.
        let sketch = SketchConfig::gaussian(3, 7);
        let fm = try_discover_flavors_sketched(
            &c.store,
            g,
            c.all(),
            &NnmfConfig::paper_default(10),
            &sketch,
        )
        .expect("clamp, not panic");
        assert_eq!(fm.k(), 3);
        assert!(fm.diagnostics.clamped);
        assert!(
            fm.diagnostics
                .notes
                .iter()
                .any(|n| n.contains("sketch rows 3")),
            "{:?}",
            fm.diagnostics.notes
        );
    }

    #[test]
    fn warm_discovery_reuses_a_previous_h_and_audits_the_savings() {
        let c = default_corpus();
        let g = cs2013();
        let courses = c.all();
        let cfg = NnmfConfig::paper_default(4);
        // A previous fit of the same group is the warm seed.
        let prev = try_discover_flavors_with(&c.store, g, courses, &cfg).expect("cold fit");
        let fm = try_discover_flavors_warm(&c.store, g, courses, &cfg, &prev.model.h)
            .expect("warm discovery");
        assert_eq!(fm.k(), 4);
        assert_eq!(fm.assignments.len(), courses.len());
        assert!(fm.model.w.is_nonnegative());
        assert!(fm.model.h.is_nonnegative());
        let warm = fm.diagnostics.warm.as_ref().expect("warm diagnostics");
        assert!(warm.warm_loss.is_finite());
        assert!(warm.cold_loss.is_finite());
        assert!(warm.cold_iterations > 0);
        assert!((0.0..=1.0).contains(&warm.iteration_savings()));
        assert!(
            fm.diagnostics.info.iter().any(|n| n.contains("warm nnmf")),
            "warm use must be annotated: {:?}",
            fm.diagnostics.info
        );
        // Refitting from an already-converged H of the *same* matrix must
        // not need more sweeps than the cold reference.
        assert!(
            warm.warm_iterations <= warm.cold_iterations,
            "warm {} vs cold {}",
            warm.warm_iterations,
            warm.cold_iterations
        );
        // The cold path never records warm diagnostics.
        assert!(prev.diagnostics.warm.is_none());
    }

    #[test]
    fn warm_discovery_rejects_a_misshaped_h() {
        let c = default_corpus();
        let g = cs2013();
        let cfg = NnmfConfig::paper_default(4);
        // An H whose tag axis no longer matches the rebuilt matrix (the
        // guideline union widened) must surface a typed error.
        let stale = Matrix::zeros(4, 3);
        let err = try_discover_flavors_warm(&c.store, g, c.all(), &cfg, &stale)
            .expect_err("shape drift must not be silent");
        assert!(err.to_string().contains("nnmf_warm"), "{err}");
    }

    #[test]
    fn type_emphasizing_finds_oop() {
        let c = default_corpus();
        let g = cs2013();
        let fm = discover_flavors(&c.store, g, &c.cs1_group(), 3);
        let t = fm.type_emphasizing("PL.OOP").expect("some type covers OOP");
        assert!(fm.types[t].ku_weight("PL.OOP") > 0.0);
    }
}
