//! Matching PDC materials to particular courses — the paper's stated future
//! work (§6: "classify more of the publicly available PDC materials in the
//! system to help recommend PDC materials for particular courses").
//!
//! A library material anchors at CS2013 knowledge units; a course covers
//! some of those units. The matcher scores materials by how well their
//! anchors are already covered by the course (so the material lands on
//! familiar ground) with facet bonuses for language fit, and filters by the
//! course's detected flavors.

use crate::recommend::{classify_course, FlavorKind};
use anchors_corpus::pdc_library::{pdc_library, PdcMaterial};
use anchors_curricula::{NodeId, Ontology};
use anchors_materials::{CourseId, MaterialStore};
use std::collections::BTreeSet;

/// A scored library match.
#[derive(Debug, Clone)]
pub struct MaterialMatch {
    /// Index into [`pdc_library`].
    pub library_index: usize,
    /// Anchor-coverage score in `[0, 1]`: mean over the material's anchor
    /// units of `min(1, hits/3)`.
    pub anchor_score: f64,
    /// Whether the course's language is supported (language-free materials
    /// always fit).
    pub language_fit: bool,
    /// Combined ranking score.
    pub score: f64,
}

impl MaterialMatch {
    /// The matched material.
    pub fn material(&self) -> &'static PdcMaterial {
        &pdc_library()[self.library_index]
    }
}

/// How many leaves of knowledge unit `ku` the tag set covers.
fn ku_hits(ontology: &Ontology, tags: &BTreeSet<NodeId>, ku: NodeId) -> usize {
    ontology
        .leaves_under(ku)
        .into_iter()
        .filter(|l| tags.contains(l))
        .count()
}

/// Score the whole library against one course. Results sorted by
/// descending score (ties by library order); zero-anchor-score materials
/// are dropped.
pub fn match_materials(
    store: &MaterialStore,
    ontology: &Ontology,
    course: CourseId,
) -> Vec<MaterialMatch> {
    let tags: BTreeSet<NodeId> = store.course_tags(course).into_iter().collect();
    let language = store.course(course).language.clone();
    let mut out: Vec<MaterialMatch> = pdc_library()
        .iter()
        .enumerate()
        .filter_map(|(i, m)| {
            let per_anchor: Vec<f64> = m
                .anchors
                .iter()
                .map(|&ku| (ku_hits(ontology, &tags, ku) as f64 / 3.0).min(1.0))
                .collect();
            let anchor_score = per_anchor.iter().sum::<f64>() / per_anchor.len().max(1) as f64;
            if anchor_score <= 0.0 {
                return None;
            }
            let language_fit = m.languages.is_empty()
                || language
                    .as_deref()
                    .map(|l| m.languages.iter().any(|ml| ml.eq_ignore_ascii_case(l)))
                    .unwrap_or(false);
            let score = anchor_score * if language_fit { 1.0 } else { 0.5 };
            Some(MaterialMatch {
                library_index: i,
                anchor_score,
                language_fit,
                score,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.library_index.cmp(&b.library_index))
    });
    out
}

/// Flavor-aware shortlist: keep the top `k` matches whose material teaches
/// a PDC topic referenced by one of the course's flavor rules. Falls back
/// to plain ranking when the course has no detected flavor.
pub fn shortlist_materials(
    store: &MaterialStore,
    cs: &Ontology,
    pdc: &Ontology,
    course: CourseId,
    k: usize,
) -> Vec<MaterialMatch> {
    let matches = match_materials(store, cs, course);
    let flavors = classify_course(store, cs, course);
    if flavors.is_empty() {
        return matches.into_iter().take(k).collect();
    }
    // Topics the course's flavor rules teach.
    let rule_topics: BTreeSet<NodeId> = flavors
        .iter()
        .flat_map(|&f| crate::recommend::rules_for(f, cs, pdc))
        .flat_map(|r| {
            r.pdc_topics
                .iter()
                .filter_map(|c| pdc.by_code(c))
                .collect::<Vec<_>>()
        })
        .collect();
    let (mut preferred, rest): (Vec<MaterialMatch>, Vec<MaterialMatch>) =
        matches.into_iter().partition(|m| {
            m.material()
                .pdc_topics
                .iter()
                .any(|t| rule_topics.contains(t))
        });
    preferred.extend(rest);
    preferred.truncate(k);
    preferred
}

/// Exercise the flavor list (used by tests to keep the enum exhaustive).
pub fn flavor_count() -> usize {
    [
        FlavorKind::Cs1Imperative,
        FlavorKind::Cs1Algorithmic,
        FlavorKind::Cs1Oop,
        FlavorKind::Cs1Core,
        FlavorKind::DsApplied,
        FlavorKind::DsOop,
        FlavorKind::DsCombinatorial,
        FlavorKind::DsCore,
        FlavorKind::GraphsCovered,
    ]
    .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_corpus::default_corpus;
    use anchors_curricula::{cs2013, pdc12};

    fn find_course(corpus: &anchors_corpus::GeneratedCorpus, needle: &str) -> CourseId {
        corpus
            .all()
            .iter()
            .copied()
            .find(|&c| corpus.store.course(c).name.contains(needle))
            .unwrap_or_else(|| panic!("no course matching {needle}"))
    }

    #[test]
    fn every_ds_course_gets_matches() {
        let corpus = default_corpus();
        let g = cs2013();
        for cid in corpus.ds_group() {
            let m = match_materials(&corpus.store, g, cid);
            assert!(
                m.len() >= 5,
                "{} matched only {} materials",
                corpus.store.course(cid).name,
                m.len()
            );
            // Sorted by score.
            for w in m.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn thread_safe_lab_ranks_high_for_vcu() {
        let corpus = default_corpus();
        let g = cs2013();
        let vcu = find_course(&corpus, "VCU");
        let matches = match_materials(&corpus.store, g, vcu);
        let pos = matches
            .iter()
            .position(|m| m.material().name.contains("Thread-safe stack"))
            .expect("lab matched");
        assert!(
            pos < matches.len() / 2,
            "OOP DS course should rank the thread-safety lab highly (pos {pos}/{})",
            matches.len()
        );
        // And VCU teaches Java, which the lab supports.
        assert!(matches[pos].language_fit);
    }

    #[test]
    fn wavefront_fits_combinatorial_courses() {
        let corpus = default_corpus();
        let g = cs2013();
        let algo = find_course(&corpus, "2215");
        let matches = match_materials(&corpus.store, g, algo);
        let wavefront = matches
            .iter()
            .find(|m| m.material().name.contains("wavefront"))
            .expect("wavefront matched");
        assert!(
            wavefront.anchor_score > 0.5,
            "score {}",
            wavefront.anchor_score
        );
    }

    #[test]
    fn unplugged_fits_language_free_everywhere() {
        let corpus = default_corpus();
        let g = cs2013();
        let kerney = find_course(&corpus, "CSCI 40");
        let matches = match_materials(&corpus.store, g, kerney);
        for m in &matches {
            if m.material().languages.is_empty() {
                assert!(m.language_fit, "unplugged always fits");
            }
        }
    }

    #[test]
    fn language_mismatch_halves_score() {
        let corpus = default_corpus();
        let g = cs2013();
        // Bourke teaches C; the bank-accounts-with-promises material is
        // Java/JavaScript only.
        let bourke = find_course(&corpus, "Bourke");
        let matches = match_materials(&corpus.store, g, bourke);
        if let Some(m) = matches
            .iter()
            .find(|m| m.material().name.contains("Bank accounts"))
        {
            assert!(!m.language_fit);
            assert!((m.score - m.anchor_score * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn shortlist_prefers_flavor_matching_materials() {
        let corpus = default_corpus();
        let cs = cs2013();
        let pdc = pdc12();
        let vcu = find_course(&corpus, "VCU");
        let short = shortlist_materials(&corpus.store, cs, pdc, vcu, 5);
        assert_eq!(short.len(), 5);
        // The top of an OOP DS course's shortlist teaches a topic from its
        // flavor rules (thread safety / synchronization / task graphs).
        let top_names: Vec<&str> = short.iter().map(|m| m.material().name).collect();
        assert!(
            top_names.iter().any(|n| n.contains("Thread-safe")
                || n.contains("queue")
                || n.contains("scheduling")),
            "flavor-matching material expected on top, got {top_names:?}"
        );
    }

    #[test]
    fn network_course_gets_few_or_low_matches() {
        let corpus = default_corpus();
        let g = cs2013();
        let net = find_course(&corpus, "Bopana");
        let ds = find_course(&corpus, "2214 KRS");
        let net_best = match_materials(&corpus.store, g, net)
            .first()
            .map(|m| m.score)
            .unwrap_or(0.0);
        let ds_best = match_materials(&corpus.store, g, ds)
            .first()
            .map(|m| m.score)
            .unwrap_or(0.0);
        assert!(
            ds_best >= net_best,
            "a DS course is a better anchor target than a networking course"
        );
    }

    #[test]
    fn flavor_enum_is_covered() {
        assert_eq!(flavor_count(), 9);
    }
}
