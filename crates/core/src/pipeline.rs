//! End-to-end pipeline: everything the paper's analysis section computes,
//! in one deterministic call.

use crate::agreement::AgreementAnalysis;
use crate::flavors::{discover_flavors, FlavorModel};
use crate::recommend::{recommend_for_course, Recommendation};
use anchors_corpus::{generate, GeneratedCorpus};
use anchors_curricula::{cs2013, pdc12, Ontology};
use anchors_materials::CourseId;

/// The complete analysis of the corpus, mirroring §4 and §5 of the paper.
pub struct AnalysisReport {
    /// The generated corpus (courses + materials).
    pub corpus: GeneratedCorpus,
    /// Figure 2: NNMF of all courses at k = 4.
    pub all_courses_model: FlavorModel,
    /// Figures 3a/4: CS1 agreement.
    pub cs1_agreement: AgreementAnalysis,
    /// Figure 5: NNMF of CS1 courses at k = 3.
    pub cs1_flavors: FlavorModel,
    /// Figures 3b/6: DS agreement.
    pub ds_agreement: AgreementAnalysis,
    /// Figure 7: NNMF of DS + Algorithms courses at k = 3.
    pub ds_flavors: FlavorModel,
    /// Figure 8: PDC agreement.
    pub pdc_agreement: AgreementAnalysis,
    /// §5.2: recommendations per course (aligned with `corpus.courses`).
    pub recommendations: Vec<(CourseId, Vec<Recommendation>)>,
}

impl AnalysisReport {
    /// The CS2013 ontology the report is computed against.
    pub fn guideline(&self) -> &'static Ontology {
        cs2013()
    }

    /// The PDC12 ontology the recommendations reference.
    pub fn pdc_guideline(&self) -> &'static Ontology {
        pdc12()
    }
}

/// Run the full §4–§5 analysis on a corpus generated with `seed`.
pub fn run_full_analysis(seed: u64) -> AnalysisReport {
    let corpus = generate(seed);
    let cs = cs2013();
    let pdc = pdc12();

    let all_courses_model = discover_flavors(&corpus.store, cs, corpus.all(), 4);
    let cs1 = corpus.cs1_group();
    let ds = corpus.ds_group();
    let ds_algo = corpus.ds_and_algo_group();
    let pdc_group = corpus.pdc_group();

    let cs1_agreement = AgreementAnalysis::run(&corpus.store, cs, "CS1", &cs1);
    let cs1_flavors = discover_flavors(&corpus.store, cs, &cs1, 3);
    let ds_agreement = AgreementAnalysis::run(&corpus.store, cs, "Data Structures", &ds);
    let ds_flavors = discover_flavors(&corpus.store, cs, &ds_algo, 3);
    let pdc_agreement = AgreementAnalysis::run(&corpus.store, cs, "PDC", &pdc_group);

    let recommendations = corpus
        .all()
        .iter()
        .map(|&c| (c, recommend_for_course(&corpus.store, cs, pdc, c)))
        .collect();

    AnalysisReport {
        corpus,
        all_courses_model,
        cs1_agreement,
        cs1_flavors,
        ds_agreement,
        ds_flavors,
        pdc_agreement,
        recommendations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_corpus::DEFAULT_SEED;

    #[test]
    fn full_pipeline_runs_and_is_consistent() {
        let r = run_full_analysis(DEFAULT_SEED);
        assert_eq!(r.corpus.courses.len(), 20);
        assert_eq!(r.all_courses_model.k(), 4);
        assert_eq!(r.cs1_flavors.k(), 3);
        assert_eq!(r.ds_flavors.k(), 3);
        assert_eq!(r.cs1_agreement.matrix.n_courses(), 6);
        assert_eq!(r.ds_agreement.matrix.n_courses(), 5);
        assert_eq!(r.pdc_agreement.matrix.n_courses(), 3);
        assert_eq!(r.recommendations.len(), 20);
        // Every CS1 and DS course gets at least one recommendation.
        for (cid, recs) in &r.recommendations {
            let c = r.corpus.store.course(*cid);
            let relevant = c.has_label(anchors_materials::CourseLabel::Cs1)
                || c.has_label(anchors_materials::CourseLabel::DataStructures);
            if relevant {
                assert!(!recs.is_empty(), "{} got no recommendations", c.name);
            }
        }
    }

    #[test]
    fn pipeline_deterministic() {
        let a = run_full_analysis(99);
        let b = run_full_analysis(99);
        assert_eq!(a.cs1_flavors.assignments, b.cs1_flavors.assignments);
        assert_eq!(a.all_courses_model.model.loss, b.all_courses_model.model.loss);
    }
}
