//! End-to-end pipeline: everything the paper's analysis section computes,
//! in one deterministic call — plus a staged, fault-tolerant variant
//! ([`run_full_analysis_resilient`]) that degrades per stage instead of
//! crashing the whole analysis when one course group is damaged.

use crate::agreement::AgreementAnalysis;
use crate::error::AnchorsError;
use crate::flavors::{discover_flavors, try_discover_flavors_with, FlavorModel};
use crate::recommend::{recommend_for_course, Recommendation};
use anchors_corpus::{generate, GeneratedCorpus};
use anchors_curricula::{cs2013, pdc12, Ontology};
use anchors_factor::{NnmfConfig, NnmfError};
use anchors_linalg::parallel;
use anchors_materials::{CourseId, CourseMatrix};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The complete analysis of the corpus, mirroring §4 and §5 of the paper.
pub struct AnalysisReport {
    /// The generated corpus (courses + materials).
    pub corpus: GeneratedCorpus,
    /// Figure 2: NNMF of all courses at k = 4.
    pub all_courses_model: FlavorModel,
    /// Figures 3a/4: CS1 agreement.
    pub cs1_agreement: AgreementAnalysis,
    /// Figure 5: NNMF of CS1 courses at k = 3.
    pub cs1_flavors: FlavorModel,
    /// Figures 3b/6: DS agreement.
    pub ds_agreement: AgreementAnalysis,
    /// Figure 7: NNMF of DS + Algorithms courses at k = 3.
    pub ds_flavors: FlavorModel,
    /// Figure 8: PDC agreement.
    pub pdc_agreement: AgreementAnalysis,
    /// §5.2: recommendations per course (aligned with `corpus.courses`).
    pub recommendations: Vec<(CourseId, Vec<Recommendation>)>,
}

impl AnalysisReport {
    /// The CS2013 ontology the report is computed against.
    pub fn guideline(&self) -> &'static Ontology {
        cs2013()
    }

    /// The PDC12 ontology the recommendations reference.
    pub fn pdc_guideline(&self) -> &'static Ontology {
        pdc12()
    }
}

/// Run the full §4–§5 analysis on a corpus generated with `seed`.
pub fn run_full_analysis(seed: u64) -> AnalysisReport {
    let corpus = generate(seed);
    let cs = cs2013();
    let pdc = pdc12();

    let all_courses_model = discover_flavors(&corpus.store, cs, corpus.all(), 4);
    let cs1 = corpus.cs1_group();
    let ds = corpus.ds_group();
    let ds_algo = corpus.ds_and_algo_group();
    let pdc_group = corpus.pdc_group();

    let cs1_agreement = AgreementAnalysis::run(&corpus.store, cs, "CS1", &cs1);
    let cs1_flavors = discover_flavors(&corpus.store, cs, &cs1, 3);
    let ds_agreement = AgreementAnalysis::run(&corpus.store, cs, "Data Structures", &ds);
    let ds_flavors = discover_flavors(&corpus.store, cs, &ds_algo, 3);
    let pdc_agreement = AgreementAnalysis::run(&corpus.store, cs, "PDC", &pdc_group);

    // Per-course recommendations are independent; fan them out across the
    // outer pool (results come back in course order regardless of mode).
    let all: Vec<CourseId> = corpus.all().to_vec();
    let recommendations = parallel::outer_map(all.len(), |i| {
        let c = all[i];
        (c, recommend_for_course(&corpus.store, cs, pdc, c))
    });

    AnalysisReport {
        corpus,
        all_courses_model,
        cs1_agreement,
        cs1_flavors,
        ds_agreement,
        ds_flavors,
        pdc_agreement,
        recommendations,
    }
}

/// Outcome of one pipeline stage in the resilient runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Produced its result on the first attempt with no adjustments.
    Ok,
    /// Produced a result, but only after retries, clamping, or NNMF
    /// recovery — read the stage diagnostics.
    Degraded,
    /// Produced no result; the corresponding report field is `None`.
    Failed,
}

/// Per-stage record in a [`PartialReport`].
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// Stage name (e.g. `"pdc_agreement"`).
    pub name: &'static str,
    /// How the stage ended.
    pub status: StageStatus,
    /// Attempts made (1 for a clean first-try success).
    pub attempts: usize,
    /// Errors, panic messages, and recovery notes accumulated on the way.
    pub diagnostics: Vec<String>,
}

/// Retry policy of the resilient runner.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts per stage (≥ 1). Only stochastic failures
    /// (NNMF divergence, contained panics) are retried; deterministic
    /// input defects fail fast.
    pub max_attempts: usize,
    /// Salt mixed into the NNMF seed on retry `n` (`seed ^ salt·n`), so
    /// retries explore different initializations.
    pub reseed_salt: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            reseed_salt: 0xA5A5_5A5A_C0FF_EE00,
        }
    }
}

impl RetryPolicy {
    /// NNMF seed for a given attempt (attempt 0 keeps the base seed).
    pub fn seed_for(&self, base: u64, attempt: usize) -> u64 {
        if attempt == 0 {
            base
        } else {
            base ^ self.reseed_salt.wrapping_mul(attempt as u64)
        }
    }
}

/// Result of the resilient pipeline: every stage's output is optional, and
/// [`stages`](PartialReport::stages) records what happened to each. A
/// damaged PDC group still yields the CS1/DS results.
#[derive(Debug)]
pub struct PartialReport {
    /// The corpus the analysis ran on.
    pub corpus: GeneratedCorpus,
    /// Figure 2 model, if its stage succeeded.
    pub all_courses_model: Option<FlavorModel>,
    /// CS1 agreement, if its stage succeeded.
    pub cs1_agreement: Option<AgreementAnalysis>,
    /// CS1 flavors, if its stage succeeded.
    pub cs1_flavors: Option<FlavorModel>,
    /// DS agreement, if its stage succeeded.
    pub ds_agreement: Option<AgreementAnalysis>,
    /// DS + Algorithms flavors, if its stage succeeded.
    pub ds_flavors: Option<FlavorModel>,
    /// PDC agreement, if its stage succeeded.
    pub pdc_agreement: Option<AgreementAnalysis>,
    /// Per-course recommendations, if that stage succeeded.
    pub recommendations: Option<Vec<(CourseId, Vec<Recommendation>)>>,
    /// One record per stage, in execution order.
    pub stages: Vec<StageOutcome>,
}

impl PartialReport {
    /// The stage record with the given name.
    pub fn stage(&self, name: &str) -> Option<&StageOutcome> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Status of the named stage ([`StageStatus::Failed`] if unknown).
    pub fn status_of(&self, name: &str) -> StageStatus {
        self.stage(name)
            .map(|s| s.status)
            .unwrap_or(StageStatus::Failed)
    }

    /// Number of stages with the given status.
    pub fn count(&self, status: StageStatus) -> usize {
        self.stages.iter().filter(|s| s.status == status).count()
    }

    /// True iff every stage finished [`StageStatus::Ok`].
    pub fn is_complete(&self) -> bool {
        self.count(StageStatus::Ok) == self.stages.len()
    }

    /// One line per stage, for logs and operator triage.
    pub fn summary(&self) -> String {
        self.stages
            .iter()
            .map(|s| {
                let note = s.diagnostics.last().map(String::as_str).unwrap_or("");
                format!(
                    "{:<22} {:?} (attempts: {}) {}",
                    s.name, s.status, s.attempts, note
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Render a panic payload as text (best effort).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Whether a failure can plausibly change on retry. Deterministic input
/// defects (empty groups, degenerate matrices, malformed values) cannot.
fn is_retryable(e: &AnchorsError) -> bool {
    matches!(
        e,
        AnchorsError::Nnmf(NnmfError::Diverged { .. }) | AnchorsError::Panic { .. }
    )
}

/// Run one stage under the retry policy with a panic backstop. Pushes the
/// stage record onto `stages` and returns the value on success.
fn run_stage<T>(
    name: &'static str,
    policy: &RetryPolicy,
    stages: &mut Vec<StageOutcome>,
    mut attempt_fn: impl FnMut(usize) -> Result<T, AnchorsError>,
) -> Option<T> {
    let max = policy.max_attempts.max(1);
    let mut diagnostics = Vec::new();
    for attempt in 0..max {
        match catch_unwind(AssertUnwindSafe(|| attempt_fn(attempt))) {
            Ok(Ok(value)) => {
                let status = if attempt == 0 && diagnostics.is_empty() {
                    StageStatus::Ok
                } else {
                    StageStatus::Degraded
                };
                stages.push(StageOutcome {
                    name,
                    status,
                    attempts: attempt + 1,
                    diagnostics,
                });
                return Some(value);
            }
            Ok(Err(e)) => {
                let retryable = is_retryable(&e);
                diagnostics.push(format!("attempt {}: {e}", attempt + 1));
                if !retryable {
                    stages.push(StageOutcome {
                        name,
                        status: StageStatus::Failed,
                        attempts: attempt + 1,
                        diagnostics,
                    });
                    return None;
                }
            }
            Err(payload) => {
                diagnostics.push(format!(
                    "attempt {}: panicked: {}",
                    attempt + 1,
                    panic_message(payload.as_ref())
                ));
            }
        }
    }
    stages.push(StageOutcome {
        name,
        status: StageStatus::Failed,
        attempts: max,
        diagnostics,
    });
    None
}

/// Downgrade the most recent record for `name` to `Degraded`, appending
/// `notes` — used when a stage succeeded but its artifact carries recovery
/// diagnostics (clamped k, NNMF recovery).
fn degrade_stage(stages: &mut [StageOutcome], name: &str, notes: &[String]) {
    if let Some(s) = stages.iter_mut().rev().find(|s| s.name == name) {
        if s.status == StageStatus::Ok {
            s.status = StageStatus::Degraded;
        }
        s.diagnostics.extend(notes.iter().cloned());
    }
}

/// Append informational notes (backend choice, density) to the most recent
/// record for `name` without changing its status — a healthy fit on either
/// backend stays `Ok`.
fn annotate_stage(stages: &mut [StageOutcome], name: &str, info: &[String]) {
    if let Some(s) = stages.iter_mut().rev().find(|s| s.name == name) {
        s.diagnostics.extend(info.iter().cloned());
    }
}

/// A flavors stage: fallible discovery with reseeded retries; the stage is
/// degraded (not failed) when the artifact needed clamping or recovery.
fn flavors_stage(
    name: &'static str,
    corpus: &GeneratedCorpus,
    ontology: &'static Ontology,
    courses: &[CourseId],
    k: usize,
    policy: &RetryPolicy,
    stages: &mut Vec<StageOutcome>,
) -> Option<FlavorModel> {
    let base = NnmfConfig::paper_default(k);
    let result = run_stage(name, policy, stages, |attempt| {
        let cfg = NnmfConfig {
            seed: policy.seed_for(base.seed, attempt),
            ..base.clone()
        };
        try_discover_flavors_with(&corpus.store, ontology, courses, &cfg)
    });
    if let Some(fm) = &result {
        annotate_stage(stages, name, &fm.diagnostics.info);
        if fm.diagnostics.clamped || !fm.diagnostics.notes.is_empty() {
            degrade_stage(stages, name, &fm.diagnostics.notes);
        }
    }
    result
}

/// An agreement stage: deterministic, so a single validated attempt.
fn agreement_stage(
    name: &'static str,
    display: &str,
    corpus: &GeneratedCorpus,
    ontology: &'static Ontology,
    courses: &[CourseId],
    policy: &RetryPolicy,
    stages: &mut Vec<StageOutcome>,
) -> Option<AgreementAnalysis> {
    run_stage(name, policy, stages, |_| {
        if courses.is_empty() {
            return Err(AnchorsError::EmptyGroup { stage: name });
        }
        let matrix = CourseMatrix::build(&corpus.store, courses);
        if matrix.n_tags() == 0 {
            return Err(AnchorsError::DegenerateMatrix {
                stage: name,
                detail: format!("{} courses carry no curriculum tags", courses.len()),
            });
        }
        Ok(AgreementAnalysis::run(
            &corpus.store,
            ontology,
            display,
            courses,
        ))
    })
}

/// Run the full analysis with per-stage fault isolation on an existing
/// corpus (possibly damaged — e.g. by the `anchors-corpus` fault
/// injectors). Never panics; every stage that can complete does.
pub fn run_resilient_on(corpus: GeneratedCorpus, policy: &RetryPolicy) -> PartialReport {
    let cs = cs2013();
    let pdc = pdc12();
    let mut stages = Vec::new();

    let all: Vec<CourseId> = corpus.all().to_vec();
    let cs1 = corpus.cs1_group();
    let ds = corpus.ds_group();
    let ds_algo = corpus.ds_and_algo_group();
    let pdc_group = corpus.pdc_group();

    let all_courses_model = flavors_stage(
        "all_courses_flavors",
        &corpus,
        cs,
        &all,
        4,
        policy,
        &mut stages,
    );
    let cs1_agreement = agreement_stage(
        "cs1_agreement",
        "CS1",
        &corpus,
        cs,
        &cs1,
        policy,
        &mut stages,
    );
    let cs1_flavors = flavors_stage("cs1_flavors", &corpus, cs, &cs1, 3, policy, &mut stages);
    let ds_agreement = agreement_stage(
        "ds_agreement",
        "Data Structures",
        &corpus,
        cs,
        &ds,
        policy,
        &mut stages,
    );
    let ds_flavors = flavors_stage("ds_flavors", &corpus, cs, &ds_algo, 3, policy, &mut stages);
    let pdc_agreement = agreement_stage(
        "pdc_agreement",
        "PDC",
        &corpus,
        cs,
        &pdc_group,
        policy,
        &mut stages,
    );

    // Recommendations: isolate per course so one bad course degrades (not
    // fails) the stage. Courses fan out across the outer pool with the
    // panic backstop inside each worker; outcomes are folded back in
    // course order, so diagnostics and results match the serial run.
    let outcomes = parallel::outer_map(all.len(), |i| {
        let c = all[i];
        catch_unwind(AssertUnwindSafe(|| {
            recommend_for_course(&corpus.store, cs, pdc, c)
        }))
    });
    let mut recs: Vec<(CourseId, Vec<Recommendation>)> = Vec::new();
    let mut rec_notes = Vec::new();
    for (&c, outcome) in all.iter().zip(outcomes) {
        match outcome {
            Ok(r) => recs.push((c, r)),
            Err(payload) => rec_notes.push(format!(
                "course {c:?}: panicked: {}",
                panic_message(payload.as_ref())
            )),
        }
    }
    let rec_status = if rec_notes.is_empty() {
        StageStatus::Ok
    } else if recs.is_empty() {
        StageStatus::Failed
    } else {
        StageStatus::Degraded
    };
    stages.push(StageOutcome {
        name: "recommendations",
        status: rec_status,
        attempts: 1,
        diagnostics: rec_notes,
    });
    let recommendations = if rec_status == StageStatus::Failed {
        None
    } else {
        Some(recs)
    };

    PartialReport {
        corpus,
        all_courses_model,
        cs1_agreement,
        cs1_flavors,
        ds_agreement,
        ds_flavors,
        pdc_agreement,
        recommendations,
        stages,
    }
}

/// Resilient variant of [`run_full_analysis`]: generate the corpus with
/// `seed` and run every stage with fault isolation and the default
/// [`RetryPolicy`].
pub fn run_full_analysis_resilient(seed: u64) -> PartialReport {
    run_resilient_on(generate(seed), &RetryPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_corpus::DEFAULT_SEED;

    #[test]
    fn full_pipeline_runs_and_is_consistent() {
        let r = run_full_analysis(DEFAULT_SEED);
        assert_eq!(r.corpus.courses.len(), 20);
        assert_eq!(r.all_courses_model.k(), 4);
        assert_eq!(r.cs1_flavors.k(), 3);
        assert_eq!(r.ds_flavors.k(), 3);
        assert_eq!(r.cs1_agreement.matrix.n_courses(), 6);
        assert_eq!(r.ds_agreement.matrix.n_courses(), 5);
        assert_eq!(r.pdc_agreement.matrix.n_courses(), 3);
        assert_eq!(r.recommendations.len(), 20);
        // Every CS1 and DS course gets at least one recommendation.
        for (cid, recs) in &r.recommendations {
            let c = r.corpus.store.course(*cid);
            let relevant = c.has_label(anchors_materials::CourseLabel::Cs1)
                || c.has_label(anchors_materials::CourseLabel::DataStructures);
            if relevant {
                assert!(!recs.is_empty(), "{} got no recommendations", c.name);
            }
        }
    }

    #[test]
    fn resilient_pipeline_is_all_ok_on_clean_corpus() {
        let r = run_full_analysis_resilient(DEFAULT_SEED);
        assert!(
            r.is_complete(),
            "clean corpus must be all-Ok:\n{}",
            r.summary()
        );
        assert_eq!(r.stages.len(), 7);
        assert!(r.all_courses_model.is_some());
        assert!(r.cs1_agreement.is_some());
        assert!(r.cs1_flavors.is_some());
        assert!(r.ds_agreement.is_some());
        assert!(r.ds_flavors.is_some());
        assert!(r.pdc_agreement.is_some());
        assert_eq!(r.recommendations.as_ref().unwrap().len(), 20);
        // And it matches the panicking pipeline's results.
        let full = run_full_analysis(DEFAULT_SEED);
        assert_eq!(
            r.cs1_flavors.unwrap().assignments,
            full.cs1_flavors.assignments
        );
        assert_eq!(
            r.pdc_agreement.unwrap().tags_at(2),
            full.pdc_agreement.tags_at(2)
        );
    }

    #[test]
    fn retry_policy_reseeds_deterministically() {
        let p = RetryPolicy::default();
        assert_eq!(p.seed_for(42, 0), 42);
        assert_ne!(p.seed_for(42, 1), 42);
        assert_eq!(p.seed_for(42, 1), p.seed_for(42, 1));
        assert_ne!(p.seed_for(42, 1), p.seed_for(42, 2));
    }

    #[test]
    fn pipeline_deterministic() {
        let a = run_full_analysis(99);
        let b = run_full_analysis(99);
        assert_eq!(a.cs1_flavors.assignments, b.cs1_flavors.assignments);
        assert_eq!(
            a.all_courses_model.model.loss,
            b.all_courses_model.model.loss
        );
    }
}
