//! # anchors-core
//!
//! The analysis pipeline of *Data-Driven Discovery of Anchor Points for PDC
//! Content* (McQuaigue, Saule, Subramanian, Payton — SC-W 2023):
//!
//! * [`agreement`] — tag-agreement analysis of course groups (§4.3/4.5/4.7,
//!   Figures 3, 4, 6, 8);
//! * [`flavors`] — NNMF-based course-type discovery and interpretation
//!   (§4.2/4.4/4.6, Figures 2, 5, 7), including the mechanized k-selection
//!   of §4.4;
//! * [`recommend`] — the §5.2 anchor-point recommender mapping discovered
//!   flavors to PDC12 topics anchored at CS2013 knowledge units;
//! * [`pipeline`] — [`pipeline::run_full_analysis`], the whole paper in one
//!   deterministic call.
//!
//! ```
//! let report = anchors_core::run_full_analysis(anchors_corpus::DEFAULT_SEED);
//! assert_eq!(report.cs1_flavors.k(), 3);
//! println!("{}", report.cs1_agreement.summary());
//! ```

pub mod agreement;
pub mod error;
pub mod flavors;
pub mod material_match;
pub mod matrixview;
pub mod pipeline;
pub mod recommend;
pub mod report;

pub use agreement::AgreementAnalysis;
pub use error::AnchorsError;
pub use flavors::{
    discover_flavors, discover_flavors_auto, select_backend, try_discover_flavors,
    try_discover_flavors_auto, try_discover_flavors_sketched, try_discover_flavors_warm,
    try_discover_flavors_with, FlavorDiagnostics, FlavorModel, TypeSummary, WarmStartDiagnostics,
    SPARSE_DENSITY_THRESHOLD,
};
pub use material_match::{match_materials, shortlist_materials, MaterialMatch};
pub use matrixview::{matrix_view, MatrixView};
pub use pipeline::{
    run_full_analysis, run_full_analysis_resilient, run_resilient_on, AnalysisReport,
    PartialReport, RetryPolicy, StageOutcome, StageStatus,
};
pub use recommend::{
    anchor_sites, classify_course, classify_tags, recommend_for_course, recommend_for_tags,
    rules_for, FlavorKind, Recommendation,
};
pub use report::to_markdown;
