//! The CS Materials matrix view (§3.1.1): materials as columns, curriculum
//! tags as rows, **bi-clustered** "to highlight related material/tag
//! patterns in the curriculum".

use anchors_curricula::Ontology;
use anchors_factor::{block_purity, spectral_cocluster, Bicluster};
use anchors_materials::{CourseId, MaterialMatrix, MaterialStore};
use anchors_viz::{text_heatmap, HeatmapOptions};

/// A bi-clustered matrix view ready for rendering.
pub struct MatrixView {
    /// The underlying tags × materials matrix.
    pub matrix: MaterialMatrix,
    /// The co-clustering.
    pub bicluster: Bicluster,
    /// Block purity achieved (1 = perfectly block-diagonal after
    /// reordering).
    pub purity: f64,
}

/// Build the bi-clustered matrix view over a set of courses.
pub fn matrix_view(
    store: &MaterialStore,
    courses: &[CourseId],
    clusters: usize,
    seed: u64,
) -> MatrixView {
    let matrix = MaterialMatrix::build(store, courses);
    let bicluster = spectral_cocluster(&matrix.m, clusters, seed);
    let purity = block_purity(&matrix.m, &bicluster);
    MatrixView {
        matrix,
        bicluster,
        purity,
    }
}

impl MatrixView {
    /// Render the reordered matrix as a text heat map (rows = tags grouped
    /// by cluster, columns = materials grouped by cluster).
    pub fn render_text(&self, store: &MaterialStore, ontology: &Ontology) -> String {
        let reordered = self
            .matrix
            .m
            .permute_rows(&self.bicluster.row_order)
            .permute_cols(&self.bicluster.col_order);
        let row_labels: Vec<String> = self
            .bicluster
            .row_order
            .iter()
            .map(|&i| {
                format!(
                    "[{}] {}",
                    self.bicluster.row_labels[i],
                    ontology.node(self.matrix.tag_space.tag(i)).code
                )
            })
            .collect();
        let col_labels: Vec<String> = self
            .bicluster
            .col_order
            .iter()
            .map(|&j| store.material(self.matrix.materials[j]).name.clone())
            .collect();
        text_heatmap(
            &reordered,
            &HeatmapOptions {
                row_labels,
                col_labels,
                title: format!(
                    "Matrix view: {} tags x {} materials, block purity {:.2}",
                    reordered.rows(),
                    reordered.cols(),
                    self.purity
                ),
                ..Default::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_corpus::default_corpus;
    use anchors_curricula::cs2013;

    #[test]
    fn view_over_two_disjoint_courses_is_pure() {
        let corpus = default_corpus();
        // OOP course vs networking course: nearly disjoint tag sets.
        let courses: Vec<CourseId> = corpus
            .all()
            .iter()
            .copied()
            .filter(|&c| {
                let n = &corpus.store.course(c).name;
                n.contains("3112") || n.contains("Bopana")
            })
            .collect();
        assert_eq!(courses.len(), 2);
        let view = matrix_view(&corpus.store, &courses, 2, 7);
        assert!(
            view.purity > 0.8,
            "disjoint courses should co-cluster cleanly, purity {}",
            view.purity
        );
    }

    #[test]
    fn render_has_all_rows() {
        let corpus = default_corpus();
        let courses = vec![corpus.all()[3]]; // the OOP course
        let view = matrix_view(&corpus.store, &courses, 2, 1);
        let txt = view.render_text(&corpus.store, cs2013());
        // title + one line per tag row.
        assert_eq!(txt.lines().count(), 2 + view.matrix.m.rows());
        assert!(txt.contains("block purity"));
    }

    #[test]
    fn reordering_groups_cluster_labels() {
        let corpus = default_corpus();
        let courses = corpus.ds_group();
        let view = matrix_view(&corpus.store, &courses, 4, 3);
        let labels: Vec<usize> = view
            .bicluster
            .row_order
            .iter()
            .map(|&i| view.bicluster.row_labels[i])
            .collect();
        assert!(labels.windows(2).all(|w| w[0] <= w[1]), "rows grouped");
    }
}
