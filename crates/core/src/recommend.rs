//! The PDC anchor-point recommender (§5.2 of the paper).
//!
//! Encodes the paper's discussion as executable rules: each discovered
//! course flavor maps to PDC-12 topics that fit it, anchored at the CS2013
//! knowledge units the course already covers. Rules are written with label
//! substrings and resolved against the live ontologies, so every
//! recommendation carries verified, existing curriculum codes.

use anchors_curricula::{Level, NodeId, Ontology};
use anchors_materials::{CourseId, CourseLabel, MaterialStore};
use serde::{Deserialize, Serialize};

/// The course flavors the recommender distinguishes (the types of §4.4 and
/// §4.6, plus the "any data structures course" catch-all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlavorKind {
    /// CS1 type 2: imperative programming with data representation.
    Cs1Imperative,
    /// CS1 type 1: algorithmic thinking and implementation.
    Cs1Algorithmic,
    /// CS1 type 3: object-oriented programming.
    Cs1Oop,
    /// DS type 1: applied / datasets / APIs / visualization.
    DsApplied,
    /// DS type 2: object-oriented data structures.
    DsOop,
    /// DS type 3: combinatorial algorithms.
    DsCombinatorial,
    /// Any data structures course covering the §4.5 core.
    DsCore,
    /// Any course covering graphs (task-graph candidate).
    GraphsCovered,
    /// Any CS1 covering fundamental programming concepts (the universal
    /// anchor of Figure 4c).
    Cs1Core,
}

impl FlavorKind {
    /// Stable wire name of the flavor, used by JSON-facing layers (the
    /// HTTP server's response bodies). These are part of the public API:
    /// renaming a variant must not change its wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            FlavorKind::Cs1Imperative => "cs1-imperative",
            FlavorKind::Cs1Algorithmic => "cs1-algorithmic",
            FlavorKind::Cs1Oop => "cs1-oop",
            FlavorKind::DsApplied => "ds-applied",
            FlavorKind::DsOop => "ds-oop",
            FlavorKind::DsCombinatorial => "ds-combinatorial",
            FlavorKind::DsCore => "ds-core",
            FlavorKind::GraphsCovered => "graphs-covered",
            FlavorKind::Cs1Core => "cs1-core",
        }
    }
}

impl std::fmt::Display for FlavorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One actionable recommendation: PDC content plus the anchor points where
/// it splices into the course.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The flavor that triggered the rule.
    pub flavor: FlavorKind,
    /// Short name of the content.
    pub title: String,
    /// Why this content fits this flavor (paraphrasing §5.2).
    pub rationale: String,
    /// Suggested classroom activity.
    pub activity: String,
    /// PDC12 topic codes the content teaches.
    pub pdc_topics: Vec<String>,
    /// CS2013 codes (knowledge units) where the content anchors.
    pub anchors: Vec<String>,
}

struct RuleSpec {
    flavor: FlavorKind,
    title: &'static str,
    rationale: &'static str,
    activity: &'static str,
    /// Case-insensitive substrings resolved against PDC12 topic labels.
    pdc_labels: &'static [&'static str],
    /// CS2013 knowledge-unit codes the content anchors at.
    anchor_kus: &'static [&'static str],
}

const RULES: &[RuleSpec] = &[
    RuleSpec {
        flavor: FlavorKind::Cs1Core,
        title: "Unplugged parallelism in the programming-fundamentals unit",
        rationale: "Fundamental Programming Concepts is the only unit all CS1 variants agree on \
                    (Figure 4), so unplugged activities (PDC Unplugged-style) that need no extra \
                    machinery are the one insertion that fits every CS1.",
        activity: "Run a card-sorting race: one student sorts alone, then four students merge \
                   sorted piles; relate the observed speedup to the loop constructs being \
                   taught.",
        pdc_labels: &["why and what is parallel", "concurrency as a pervasive"],
        anchor_kus: &["SDF.FPC"],
    },
    RuleSpec {
        flavor: FlavorKind::Cs1Imperative,
        title: "Order of operations in parallel reductions",
        rationale: "Type 2 CS1 courses cover in-memory representation of variables, so a \
                    discussion of why floating-point summation order changes results (while \
                    integer summation does not) lands on material the students already have.",
        activity: "Sum the same array of floats sequentially and in parallel chunks; compare \
                   results for f32/f64 vs integers; explain using the course's number-encoding \
                   unit.",
        pdc_labels: &["floating-point reduction order", "reduction (map-reduce"],
        anchor_kus: &["AR.MLRD", "SDF.FPC"],
    },
    RuleSpec {
        flavor: FlavorKind::Cs1Algorithmic,
        title: "Parallel-for over independent iterations",
        rationale: "Type 1 CS1 courses implement algorithms with visible runtimes, so students \
                    can observe speedup; parallel-for syntax can be introduced and leveraged \
                    directly on existing loop-based assignments.",
        activity: "Take an existing O(n^2) assignment (e.g. nearest pairs) and convert its outer \
                   loop to a parallel-for; measure and plot the speedup.",
        pdc_labels: &[
            "data-parallel constructs",
            "speedup measurement",
            "embarrassingly parallel",
        ],
        anchor_kus: &["SDF.AD", "AL.BA"],
    },
    RuleSpec {
        flavor: FlavorKind::Cs1Oop,
        title: "Promise-style concurrency between objects",
        rationale: "Type 3 CS1 courses are object-oriented with little algorithmic development; \
                    loop parallelism fits poorly, but the insight that operations on two objects \
                    need not be strictly ordered introduces concurrency naturally — via promises \
                    or CORBA-style distributed objects.",
        activity: "Refactor a two-object interaction (e.g. bank accounts) so each method returns \
                   a future; discuss when results must be awaited for correctness.",
        pdc_labels: &[
            "futures and promises",
            "client-server and distributed-object",
        ],
        anchor_kus: &["PL.OOP", "PL.EDRP"],
    },
    RuleSpec {
        flavor: FlavorKind::DsCore,
        title: "Concurrent access to data structures",
        rationale: "All reviewed DS courses cover the core structures, so every one of them can \
                    support a discussion of what goes wrong when two threads touch the same \
                    structure.",
        activity: "Two threads push to one stack: demonstrate a lost update; fix it with a lock \
                   and discuss the cost.",
        pdc_labels: &["synchronization: critical sections", "concurrency defects"],
        anchor_kus: &["SDF.FDS", "AL.FDSA"],
    },
    RuleSpec {
        flavor: FlavorKind::DsOop,
        title: "Thread-safe types",
        rationale: "Type 2 DS courses focus on object-oriented design and can cover thread-safe \
                    containers — even highlighting that thread safety is the primary difference \
                    between Java's ArrayList and Vector.",
        activity: "Benchmark ArrayList vs Vector under single- and multi-threaded use; explain \
                   the synchronized methods in the Vector source.",
        pdc_labels: &[
            "thread safety of library types",
            "mutual exclusion primitives",
        ],
        anchor_kus: &["PL.OOP", "SDF.FDS"],
    },
    RuleSpec {
        flavor: FlavorKind::DsCombinatorial,
        title: "Cilk-style parallelism for brute force and dynamic programming",
        rationale: "Type 3 DS courses feature combinatorial algorithms with high runtimes; \
                    brute-force search is perfect for fork-join (cilk-like) parallelism, \
                    bottom-up DP parallelizes with parallel-for over wavefronts, and top-down \
                    memoized DP motivates a tasking model because memoization induces complex \
                    dependencies.",
        activity: "Parallelize a subset-sum brute force with fork-join, then a bottom-up edit \
                   distance with a wavefront parallel-for; compare against top-down memoization.",
        pdc_labels: &[
            "divide and conquer as a source of task parallelism",
            "dynamic programming: bottom-up wavefront",
            "brute-force and exhaustive search",
            "task/thread spawning",
        ],
        anchor_kus: &["AL.AS", "DS.BC"],
    },
    RuleSpec {
        flavor: FlavorKind::GraphsCovered,
        title: "Parallel task graphs, topological sort, and list scheduling",
        rationale: "Courses covering graphs can adopt the Parallel Task Graph model: topological \
                    sort derives a feasible task order, critical path measures how parallel the \
                    graph is, and a list-scheduling simulator exercises priority queues and \
                    graphs together — fitting type 1 DS courses especially well.",
        activity: "Implement topological sort and critical path on a task DAG, then a \
                   list-scheduling simulator with a priority queue; report makespan vs processor \
                   count.",
        pdc_labels: &[
            "directed acyclic graphs as a model",
            "critical path length",
            "topological sort and scheduling",
            "list scheduling",
        ],
        anchor_kus: &["DS.GT", "AL.FDSA"],
    },
    RuleSpec {
        flavor: FlavorKind::DsApplied,
        title: "Speedup on real datasets",
        rationale: "Applied (type 1) DS courses already process real datasets whose runtimes \
                    students feel; parallelizing dataset aggregation makes the benefit of \
                    parallelism concrete, and the list-scheduling simulator doubles as a \
                    dataset-driven assignment.",
        activity: "Parallelize the course's dataset-aggregation assignment with a map-reduce \
                   split; chart runtime vs thread count on the real data.",
        pdc_labels: &[
            "reduction (map-reduce",
            "speedup, efficiency",
            "load balancing",
        ],
        anchor_kus: &["CN.DIK", "IM.IMC"],
    },
];

/// Resolve a rule's label substrings against the PDC12 ontology.
fn resolve_pdc_labels(pdc: &Ontology, labels: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for needle in labels {
        let needle_lower = needle.to_lowercase();
        let hit = pdc
            .nodes()
            .iter()
            .find(|n| n.level == Level::Topic && n.label.to_lowercase().contains(&needle_lower));
        if let Some(n) = hit {
            out.push(n.code.clone());
        }
    }
    out
}

/// All recommendations for one flavor, with codes resolved against the live
/// ontologies.
///
/// # Panics
/// Panics if a rule references an unknown CS2013 KU or an unresolvable PDC
/// label (programmer error caught by tests).
pub fn rules_for(flavor: FlavorKind, cs: &Ontology, pdc: &Ontology) -> Vec<Recommendation> {
    RULES
        .iter()
        .filter(|r| r.flavor == flavor)
        .map(|r| {
            let pdc_topics = resolve_pdc_labels(pdc, r.pdc_labels);
            assert_eq!(
                pdc_topics.len(),
                r.pdc_labels.len(),
                "rule {:?} has unresolvable PDC labels",
                r.title
            );
            for ku in r.anchor_kus {
                assert!(
                    cs.by_code(ku).is_some(),
                    "rule {:?}: unknown KU {ku}",
                    r.title
                );
            }
            Recommendation {
                flavor,
                title: r.title.to_string(),
                rationale: r.rationale.to_string(),
                activity: r.activity.to_string(),
                pdc_topics,
                anchors: r.anchor_kus.iter().map(|s| s.to_string()).collect(),
            }
        })
        .collect()
}

/// How many of a knowledge unit's leaves a tag set covers.
fn ku_hits(ontology: &Ontology, tags: &[NodeId], ku_code: &str) -> usize {
    let Some(ku) = ontology.by_code(ku_code) else {
        return 0;
    };
    tags.iter()
        .filter(|&&t| ontology.is_ancestor(ku, t))
        .count()
}

/// Detect the flavors of a course from its classification (signal-based;
/// complements the NNMF assignment, which needs the whole group).
pub fn classify_course(
    store: &MaterialStore,
    ontology: &Ontology,
    course: CourseId,
) -> Vec<FlavorKind> {
    let tags = store.course_tags(course);
    classify_tags(ontology, &store.course(course).labels, &tags)
}

/// Detect flavors directly from a label set and a tag set, without the
/// course having to live in a [`MaterialStore`]. This is the serving-path
/// entry point: a folded-in query course exists only as its tag vector, so
/// the store-keyed [`classify_course`] delegates here.
pub fn classify_tags(
    ontology: &Ontology,
    labels: &[CourseLabel],
    tags: &[NodeId],
) -> Vec<FlavorKind> {
    let is_cs1 = labels.contains(&CourseLabel::Cs1);
    let is_ds =
        labels.contains(&CourseLabel::DataStructures) || labels.contains(&CourseLabel::Algorithms);
    let mut flavors = Vec::new();

    let algo_signal = ku_hits(ontology, tags, "AL.BA")
        + ku_hits(ontology, tags, "AL.FDSA")
        + ku_hits(ontology, tags, "SDF.FDS");
    let oop_signal = ku_hits(ontology, tags, "PL.OOP");
    let repr_signal = ku_hits(ontology, tags, "AR.MLRD");
    let comb_signal = ku_hits(ontology, tags, "AL.AS") + ku_hits(ontology, tags, "DS.BC");
    let applied_signal = ku_hits(ontology, tags, "CN.DIK")
        + ku_hits(ontology, tags, "CN.IV")
        + ku_hits(ontology, tags, "IM.IMC");
    let graph_signal = ku_hits(ontology, tags, "DS.GT");
    let ds_core_signal = algo_signal;

    if is_cs1 {
        if ku_hits(ontology, tags, "SDF.FPC") >= 8 {
            flavors.push(FlavorKind::Cs1Core);
        }
        if repr_signal >= 3 {
            flavors.push(FlavorKind::Cs1Imperative);
        }
        if algo_signal >= 12 {
            flavors.push(FlavorKind::Cs1Algorithmic);
        }
        if oop_signal >= 5 {
            flavors.push(FlavorKind::Cs1Oop);
        }
    }
    if is_ds {
        if ds_core_signal >= 15 {
            flavors.push(FlavorKind::DsCore);
        }
        if oop_signal >= 5 {
            flavors.push(FlavorKind::DsOop);
        }
        if comb_signal >= 8 {
            flavors.push(FlavorKind::DsCombinatorial);
        }
        if applied_signal >= 5 {
            flavors.push(FlavorKind::DsApplied);
        }
    }
    if graph_signal >= 4 {
        flavors.push(FlavorKind::GraphsCovered);
    }
    flavors
}

/// The concrete anchor sites of a recommendation inside one course: the
/// existing materials whose classification intersects the recommendation's
/// anchor units — i.e. *where in the course's own schedule* the PDC content
/// can splice in. Assessments are excluded (content splices into lectures,
/// labs, and assignments, not exams). Sorted by number of intersecting
/// tags, descending.
pub fn anchor_sites(
    store: &MaterialStore,
    ontology: &Ontology,
    course: CourseId,
    rec: &Recommendation,
) -> Vec<(anchors_materials::MaterialId, usize)> {
    let anchor_kus: Vec<NodeId> = rec
        .anchors
        .iter()
        .filter_map(|code| ontology.by_code(code))
        .collect();
    let mut sites: Vec<(anchors_materials::MaterialId, usize)> = store
        .course(course)
        .materials
        .iter()
        .filter_map(|&mid| {
            let m = store.material(mid);
            if m.kind == anchors_materials::MaterialKind::Assessment {
                return None;
            }
            let hits = m
                .tags
                .iter()
                .filter(|&&t| anchor_kus.iter().any(|&ku| ontology.is_ancestor(ku, t)))
                .count();
            (hits > 0).then_some((mid, hits))
        })
        .collect();
    sites.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    sites
}

/// Full recommendation set for one course: classify, then apply the rules
/// of each detected flavor.
pub fn recommend_for_course(
    store: &MaterialStore,
    cs: &Ontology,
    pdc: &Ontology,
    course: CourseId,
) -> Vec<Recommendation> {
    classify_course(store, cs, course)
        .into_iter()
        .flat_map(|f| rules_for(f, cs, pdc))
        .collect()
}

/// Full recommendation set for a course known only by labels and tags (the
/// serving path for folded-in queries; see [`classify_tags`]).
pub fn recommend_for_tags(
    cs: &Ontology,
    pdc: &Ontology,
    labels: &[CourseLabel],
    tags: &[NodeId],
) -> Vec<Recommendation> {
    classify_tags(cs, labels, tags)
        .into_iter()
        .flat_map(|f| rules_for(f, cs, pdc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_corpus::default_corpus;
    use anchors_curricula::{cs2013, pdc12};

    #[test]
    fn every_rule_resolves() {
        let cs = cs2013();
        let pdc = pdc12();
        for flavor in [
            FlavorKind::Cs1Imperative,
            FlavorKind::Cs1Algorithmic,
            FlavorKind::Cs1Oop,
            FlavorKind::DsApplied,
            FlavorKind::DsOop,
            FlavorKind::DsCombinatorial,
            FlavorKind::DsCore,
            FlavorKind::GraphsCovered,
            FlavorKind::Cs1Core,
        ] {
            let recs = rules_for(flavor, cs, pdc);
            assert!(!recs.is_empty(), "{flavor:?} has no rules");
            for r in recs {
                assert!(!r.pdc_topics.is_empty());
                assert!(!r.anchors.is_empty());
                for code in &r.pdc_topics {
                    assert!(pdc.by_code(code).is_some(), "bad PDC code {code}");
                }
                for code in &r.anchors {
                    assert!(cs.by_code(code).is_some(), "bad CS2013 code {code}");
                }
            }
        }
    }

    #[test]
    fn singh_gets_promise_style_concurrency() {
        let c = default_corpus();
        let singh = *c
            .cs1_group()
            .iter()
            .find(|&&id| c.store.course(id).name.contains("Singh"))
            .unwrap();
        let recs = recommend_for_course(&c.store, cs2013(), pdc12(), singh);
        assert!(
            recs.iter().any(|r| r.flavor == FlavorKind::Cs1Oop),
            "OOP CS1 gets the promise-style rule, got {:?}",
            recs.iter().map(|r| r.flavor).collect::<Vec<_>>()
        );
        assert!(
            !recs.iter().any(|r| r.flavor == FlavorKind::Cs1Imperative),
            "Singh's course does not cover data representation"
        );
    }

    #[test]
    fn bourke_gets_reduction_order() {
        let c = default_corpus();
        let bourke = *c
            .cs1_group()
            .iter()
            .find(|&&id| c.store.course(id).name.contains("Bourke"))
            .unwrap();
        let recs = recommend_for_course(&c.store, cs2013(), pdc12(), bourke);
        assert!(recs.iter().any(|r| r.flavor == FlavorKind::Cs1Imperative));
        let red = recs
            .iter()
            .find(|r| r.flavor == FlavorKind::Cs1Imperative)
            .unwrap();
        assert!(red.anchors.contains(&"AR.MLRD".to_string()));
    }

    #[test]
    fn ds_courses_all_get_concurrent_structures() {
        let c = default_corpus();
        for id in c.ds_group() {
            let recs = recommend_for_course(&c.store, cs2013(), pdc12(), id);
            assert!(
                recs.iter().any(|r| r.flavor == FlavorKind::DsCore),
                "{} should support concurrent-structure discussions",
                c.store.course(id).name
            );
        }
    }

    #[test]
    fn vcu_gets_thread_safe_types() {
        let c = default_corpus();
        let vcu = *c
            .ds_group()
            .iter()
            .find(|&&id| c.store.course(id).name.contains("VCU"))
            .unwrap();
        let recs = recommend_for_course(&c.store, cs2013(), pdc12(), vcu);
        assert!(recs.iter().any(|r| r.flavor == FlavorKind::DsOop));
    }

    #[test]
    fn algorithms_courses_get_cilk_style() {
        let c = default_corpus();
        let wahl = *c
            .ds_and_algo_group()
            .iter()
            .find(|&&id| c.store.course(id).name.contains("Wahl"))
            .unwrap();
        let recs = recommend_for_course(&c.store, cs2013(), pdc12(), wahl);
        assert!(recs.iter().any(|r| r.flavor == FlavorKind::DsCombinatorial));
    }

    #[test]
    fn graph_covering_ds_courses_get_task_graphs() {
        let c = default_corpus();
        let mut task_graph_hits = 0;
        for id in c.ds_group() {
            let recs = recommend_for_course(&c.store, cs2013(), pdc12(), id);
            if recs.iter().any(|r| r.flavor == FlavorKind::GraphsCovered) {
                task_graph_hits += 1;
            }
        }
        assert!(
            task_graph_hits >= 4,
            "§5.2: all three DS types cover graphs; got {task_graph_hits}/5"
        );
    }

    #[test]
    fn classify_tags_agrees_with_store_keyed_classification() {
        let c = default_corpus();
        let cs = cs2013();
        let pdc = pdc12();
        for &id in c.all().iter() {
            let tags = c.store.course_tags(id);
            let labels = &c.store.course(id).labels;
            assert_eq!(
                classify_course(&c.store, cs, id),
                classify_tags(cs, labels, &tags),
                "{}",
                c.store.course(id).name
            );
            assert_eq!(
                recommend_for_course(&c.store, cs, pdc, id).len(),
                recommend_for_tags(cs, pdc, labels, &tags).len()
            );
        }
    }

    #[test]
    fn anchor_sites_point_at_relevant_materials() {
        let c = default_corpus();
        let cs = cs2013();
        let pdc = pdc12();
        let vcu = *c
            .ds_group()
            .iter()
            .find(|&&id| c.store.course(id).name.contains("VCU"))
            .unwrap();
        let recs = recommend_for_course(&c.store, cs, pdc, vcu);
        let rec = recs
            .iter()
            .find(|r| r.flavor == FlavorKind::DsOop)
            .expect("VCU gets the thread-safe-types rule");
        let sites = anchor_sites(&c.store, cs, vcu, rec);
        assert!(!sites.is_empty(), "anchors must land on real materials");
        // Sorted by hits, and every site actually intersects the anchors.
        for w in sites.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let (best, hits) = sites[0];
        assert!(hits >= 1);
        let m = c.store.material(best);
        let oop = cs.by_code("PL.OOP").unwrap();
        let fds = cs.by_code("SDF.FDS").unwrap();
        assert!(
            m.tags
                .iter()
                .any(|&t| cs.is_ancestor(oop, t) || cs.is_ancestor(fds, t)),
            "best site covers an anchor unit"
        );
    }

    #[test]
    fn network_course_gets_nothing_cs1_or_ds() {
        let c = default_corpus();
        let net = c
            .all()
            .iter()
            .copied()
            .find(|&id| c.store.course(id).name.contains("Bopana"))
            .unwrap();
        let recs = recommend_for_course(&c.store, cs2013(), pdc12(), net);
        assert!(
            recs.iter()
                .all(|r| r.flavor == FlavorKind::GraphsCovered || recs.is_empty()),
            "a networking course matches no CS1/DS flavor rules"
        );
    }
}
