//! Markdown report generation: renders an [`AnalysisReport`] as a single
//! self-contained document (the narrative §4–§5 of the paper, regenerated
//! from data).

use crate::pipeline::AnalysisReport;
use crate::recommend::Recommendation;
use anchors_materials::CourseLabel;
use std::fmt::Write as _;

/// Render the full analysis as markdown.
pub fn to_markdown(r: &AnalysisReport) -> String {
    let g = r.guideline();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Data-driven discovery of anchor points — analysis report\n"
    );
    let _ = writeln!(
        out,
        "Corpus: {} courses, {} materials, generated deterministically.\n",
        r.corpus.store.course_count(),
        r.corpus.store.material_count()
    );

    // --- Course families (Figure 2).
    let _ = writeln!(out, "## Course types over the whole corpus (NNMF, k = 4)\n");
    let fm = &r.all_courses_model;
    let _ = writeln!(out, "| course | dominant dimension | labels |");
    let _ = writeln!(out, "|---|---|---|");
    for (i, &cid) in fm.matrix.courses.iter().enumerate() {
        let c = r.corpus.store.course(cid);
        let labels: Vec<&str> = c.labels.iter().map(CourseLabel::short).collect();
        let _ = writeln!(
            out,
            "| {} | dim {} | {} |",
            c.name,
            fm.assignments[i] + 1,
            labels.join(", ")
        );
    }
    let _ = writeln!(out, "\nPer-dimension dominant knowledge areas:\n");
    for t in &fm.types {
        let kas: Vec<String> = t
            .ka_weights
            .iter()
            .take(3)
            .map(|(k, w)| format!("{k} ({w:.2})"))
            .collect();
        let _ = writeln!(out, "- dim {}: {}", t.index + 1, kas.join(", "));
    }

    // --- Agreement.
    let _ = writeln!(out, "\n## Agreement\n");
    for a in [&r.cs1_agreement, &r.ds_agreement, &r.pdc_agreement] {
        let _ = writeln!(out, "- {}", a.summary());
    }
    let _ = writeln!(
        out,
        "\nCS1 agreement at four courses collapses into: {}.",
        r.cs1_agreement.spanned_kas(g, 4).join(", ")
    );
    let _ = writeln!(
        out,
        "DS agreement at four courses spans: {}.",
        r.ds_agreement.spanned_kas(g, 4).join(", ")
    );

    // --- Flavors.
    let _ = writeln!(out, "\n## CS1 flavors (k = 3)\n");
    flavor_section(&mut out, r, &r.cs1_flavors);
    let _ = writeln!(out, "\n## Data Structures + Algorithms flavors (k = 3)\n");
    flavor_section(&mut out, r, &r.ds_flavors);

    // --- Recommendations.
    let _ = writeln!(out, "\n## PDC anchor-point recommendations\n");
    for (cid, recs) in &r.recommendations {
        if recs.is_empty() {
            continue;
        }
        let c = r.corpus.store.course(*cid);
        let _ = writeln!(out, "### {}\n", c.name);
        for rec in recs {
            recommendation_block(&mut out, rec);
        }
    }
    out
}

fn flavor_section(out: &mut String, r: &AnalysisReport, fm: &crate::flavors::FlavorModel) {
    let _ = writeln!(out, "| course | type | mixture |");
    let _ = writeln!(out, "|---|---|---|");
    for (i, &cid) in fm.matrix.courses.iter().enumerate() {
        let mix: Vec<String> = fm.mixture_of(i).iter().map(|v| format!("{v:.2}")).collect();
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            r.corpus.store.course(cid).name,
            fm.assignments[i] + 1,
            mix.join(" / ")
        );
    }
    let _ = writeln!(out);
    for t in &fm.types {
        let _ = writeln!(
            out,
            "- type {}: {}",
            t.index + 1,
            t.ku_weights
                .iter()
                .take(4)
                .map(|(k, w)| format!("{k} ({w:.2})"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}

fn recommendation_block(out: &mut String, rec: &Recommendation) {
    let _ = writeln!(out, "**{}** _({:?})_\n", rec.title, rec.flavor);
    let _ = writeln!(out, "- why: {}", rec.rationale);
    let _ = writeln!(out, "- activity: {}", rec.activity);
    let _ = writeln!(out, "- PDC12 topics: {}", rec.pdc_topics.join(", "));
    let _ = writeln!(out, "- anchors: {}\n", rec.anchors.join(", "));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_full_analysis;
    use anchors_corpus::DEFAULT_SEED;

    #[test]
    fn report_renders_all_sections() {
        let r = run_full_analysis(DEFAULT_SEED);
        let md = to_markdown(&r);
        for needle in [
            "# Data-driven discovery",
            "## Course types over the whole corpus",
            "## Agreement",
            "## CS1 flavors",
            "## Data Structures + Algorithms flavors",
            "## PDC anchor-point recommendations",
            "WashU CSE131 Singh",
            "anchors:",
        ] {
            assert!(md.contains(needle), "missing {needle:?}");
        }
        // Every non-empty recommendation course appears as a section.
        let sections = md.matches("### ").count();
        let expected = r
            .recommendations
            .iter()
            .filter(|(_, recs)| !recs.is_empty())
            .count();
        assert_eq!(sections, expected);
    }

    #[test]
    fn report_is_deterministic() {
        let a = to_markdown(&run_full_analysis(5));
        let b = to_markdown(&run_full_analysis(5));
        assert_eq!(a, b);
    }
}
