//! Top-level error taxonomy for the analysis pipeline.
//!
//! [`AnchorsError`] unifies the per-crate typed errors so serving-path
//! callers ([`crate::pipeline::run_full_analysis_resilient`],
//! [`crate::flavors::try_discover_flavors`]) can report one error type and
//! degrade per stage instead of crashing the whole analysis.

use anchors_factor::NnmfError;
use anchors_linalg::LinalgError;
use anchors_materials::{ImportError, StoreError};
use anchors_text::TextError;
use std::fmt;

/// Any failure the analysis pipeline can surface.
#[derive(Debug, Clone)]
pub enum AnchorsError {
    /// NNMF rejected its input or diverged beyond recovery.
    Nnmf(NnmfError),
    /// A checked linear-algebra kernel failed.
    Linalg(LinalgError),
    /// Portable-store import failed.
    Import(ImportError),
    /// The material store violates its invariants.
    Store(StoreError),
    /// Text classification rejected its input or model.
    Text(TextError),
    /// A stage was asked to analyze an empty course group.
    EmptyGroup {
        /// Stage name (e.g. `"pdc_agreement"`).
        stage: &'static str,
    },
    /// A stage's course matrix carries no signal (e.g. every material of
    /// the group lost its tags).
    DegenerateMatrix {
        /// Stage name.
        stage: &'static str,
        /// Human-readable description of the degeneracy.
        detail: String,
    },
    /// A stage panicked and the panic was contained at the stage boundary.
    Panic {
        /// Stage name.
        stage: &'static str,
        /// Panic payload rendered as text (best effort).
        message: String,
    },
}

impl fmt::Display for AnchorsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnchorsError::Nnmf(e) => write!(f, "factorization failed: {e}"),
            AnchorsError::Linalg(e) => write!(f, "linear algebra failed: {e}"),
            AnchorsError::Import(e) => write!(f, "import failed: {e}"),
            AnchorsError::Store(e) => write!(f, "invalid material store: {e}"),
            AnchorsError::Text(e) => write!(f, "text classification failed: {e}"),
            AnchorsError::EmptyGroup { stage } => {
                write!(f, "{stage}: course group is empty")
            }
            AnchorsError::DegenerateMatrix { stage, detail } => {
                write!(f, "{stage}: degenerate course matrix ({detail})")
            }
            AnchorsError::Panic { stage, message } => {
                write!(f, "{stage}: panicked: {message}")
            }
        }
    }
}

impl std::error::Error for AnchorsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnchorsError::Nnmf(e) => Some(e),
            AnchorsError::Linalg(e) => Some(e),
            AnchorsError::Import(e) => Some(e),
            AnchorsError::Store(e) => Some(e),
            AnchorsError::Text(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnmfError> for AnchorsError {
    fn from(e: NnmfError) -> Self {
        AnchorsError::Nnmf(e)
    }
}

impl From<LinalgError> for AnchorsError {
    fn from(e: LinalgError) -> Self {
        AnchorsError::Linalg(e)
    }
}

impl From<ImportError> for AnchorsError {
    fn from(e: ImportError) -> Self {
        AnchorsError::Import(e)
    }
}

impl From<StoreError> for AnchorsError {
    fn from(e: StoreError) -> Self {
        AnchorsError::Store(e)
    }
}

impl From<TextError> for AnchorsError {
    fn from(e: TextError) -> Self {
        AnchorsError::Text(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_crate_errors() {
        let e: AnchorsError = NnmfError::ZeroRank.into();
        assert!(e.to_string().contains("factorization failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e: AnchorsError = LinalgError::Singular { op: "lstsq" }.into();
        assert!(e.to_string().contains("linear algebra failed"));
        let e: AnchorsError = StoreError::OrphanMaterial { material: 7 }.into();
        assert!(e.to_string().contains("invalid material store"));
        assert!(std::error::Error::source(&e).is_some());
        let e: AnchorsError = TextError::EmptyText.into();
        assert!(e.to_string().contains("text classification failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e = AnchorsError::EmptyGroup {
            stage: "cs1_agreement",
        };
        assert!(e.to_string().contains("cs1_agreement"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
