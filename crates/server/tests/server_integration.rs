//! End-to-end tests over real sockets: keep-alive, typed protocol
//! errors, backpressure shedding, hot reload under load, and graceful
//! drain. Every test binds port 0 and runs a private registry, so the
//! suite is parallel-safe.

use anchors_corpus::{generate_text_corpus, TextCorpusConfig};
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{NnmfModel, NnmfRecovery};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_serve::{FittedModel, Registry};
use anchors_server::{
    AppState, Client, Precision, RetryConfig, RetryingClient, Server, ServerConfig, ServerHandle,
    TextDoor,
};
use anchors_text::{train, TextModel, TrainConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(5);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anchors-http-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn toy_model(name: &str, seed: u64) -> FittedModel {
    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(12));
    let model = NnmfModel {
        w: Matrix::from_fn(6, 3, |i, j| ((i + 2 * j + seed as usize) % 4) as f64 * 0.5),
        h: Matrix::from_fn(3, 12, |i, j| ((i * 12 + j) % 5) as f64 * 0.2 + 0.05),
        loss: 0.2,
        iterations: 7,
        converged: true,
        winning_seed: seed,
        recovery: NnmfRecovery::default(),
    };
    FittedModel::new(name, cs, &space, &model, Backend::Dense).expect("valid artifact")
}

/// A registry with one saved model, and a server over it.
fn start_server(tag: &str, config: ServerConfig) -> (ServerHandle, Arc<AppState>) {
    let registry = Registry::open(tmp_dir(tag)).expect("registry");
    registry.save(&toy_model("toy-v1", 3)).expect("save v1");
    let state = Arc::new(AppState::from_registry(registry, cs2013(), pdc12()).expect("state"));
    let handle = Server::start(Arc::clone(&state), "127.0.0.1:0", config).expect("server start");
    (handle, state)
}

fn recommend_body(state: &AppState) -> Vec<u8> {
    let snapshot = state.cache.snapshot();
    let codes = &snapshot.engine.model().tag_codes;
    format!(
        r#"{{"name":"CS 201","labels":["DS"],"tags":["{}","{}"]}}"#,
        codes[0], codes[5]
    )
    .into_bytes()
}

/// Train the text classifier once for the whole suite: 8 tags (a
/// subset of the factor model's 12, so predicted tags always fold in)
/// over the seeded synthetic corpus.
fn trained_text_model() -> TextModel {
    static MODEL: OnceLock<TextModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let corpus = generate_text_corpus(&TextCorpusConfig {
                tags: 8,
                ..TextCorpusConfig::default()
            });
            train(
                "it-text",
                cs2013(),
                &corpus.tag_codes,
                &corpus.examples,
                &TrainConfig::default(),
            )
            .expect("training on the synthetic corpus succeeds")
        })
        .clone()
}

/// A server with both artifacts in one registry directory: the factor
/// model under `model-v*`, the text model under `text-v*`.
fn start_text_server(tag: &str, config: ServerConfig) -> (ServerHandle, Arc<AppState>) {
    let dir = tmp_dir(tag);
    let registry = Registry::open(&dir).expect("model registry");
    registry.save(&toy_model("toy-v1", 3)).expect("save model");
    let text_registry: Registry<TextModel> = Registry::open(&dir).expect("text registry");
    text_registry
        .save(&trained_text_model())
        .expect("save text model");
    let door = TextDoor::open(text_registry, cs2013());
    assert!(!door.is_degraded(), "fixture door must open ready");
    let state = Arc::new(
        AppState::from_registry(registry, cs2013(), pdc12())
            .expect("state")
            .with_text(door),
    );
    let handle = Server::start(Arc::clone(&state), "127.0.0.1:0", config).expect("server start");
    (handle, state)
}

#[test]
fn keep_alive_connection_serves_every_endpoint() {
    let (handle, state) = start_server("keepalive", ServerConfig::default());
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let body = recommend_body(&state);

    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"version\":1"), "{}", health.text());
    assert!(health.text().contains("toy-v1"));
    assert!(
        health.text().contains("\"precision\":\"f64\""),
        "default precision must be reported: {}",
        health.text()
    );

    let rec = client
        .request("POST", "/v1/recommend", &body)
        .expect("recommend");
    assert_eq!(rec.status, 200, "{}", rec.text());
    for field in [
        "loadings",
        "mixture",
        "flavors",
        "recommendations",
        "nearest",
    ] {
        assert!(
            rec.text().contains(field),
            "missing {field}: {}",
            rec.text()
        );
    }

    let cls = client
        .request("POST", "/v1/classify", &body)
        .expect("classify");
    assert_eq!(cls.status, 200);
    assert!(cls.text().contains("mixture"));
    assert!(
        !cls.text().contains("recommendations"),
        "classify is the light response"
    );

    let batch_body = format!(
        r#"{{"queries":[{},{}]}}"#,
        String::from_utf8_lossy(&body),
        String::from_utf8_lossy(&body)
    );
    let batch = client
        .request("POST", "/v1/batch", batch_body.as_bytes())
        .expect("batch");
    assert_eq!(batch.status, 200, "{}", batch.text());
    assert_eq!(batch.text().matches("\"loadings\"").count(), 2);

    // A batch answer equals the single-query answer for the same course.
    let single_loadings = rec.text();
    let single_loadings = single_loadings
        .split("\"loadings\"")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .expect("loadings in single response")
        .to_string();
    assert!(
        batch.text().contains(&single_loadings),
        "batch loadings differ from single-query loadings"
    );

    let metrics = client.request("GET", "/v1/metrics", b"").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("anchors_http_requests_total"));
    assert!(metrics
        .text()
        .contains("anchors_http_request_duration_us_bucket"));

    // Everything above rode one TCP connection.
    assert_eq!(state.metrics.connections.load(Relaxed), 1);
    assert!(state.metrics.requests.load(Relaxed) >= 5);
    drop(client); // close the keep-alive connection so shutdown is instant
    handle.shutdown();
}

#[test]
fn f32_precision_serves_reports_and_survives_reload() {
    let registry = Registry::open(tmp_dir("f32-precision")).expect("registry");
    registry.save(&toy_model("toy-v1", 3)).expect("save v1");
    let state = Arc::new(
        AppState::from_registry_with_precision(registry, cs2013(), pdc12(), Precision::F32)
            .expect("state"),
    );
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("start");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");

    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("\"precision\":\"f32\""),
        "{}",
        health.text()
    );

    // Queries answer through the narrowed path with the full response shape.
    let body = recommend_body(&state);
    let rec = client
        .request("POST", "/v1/recommend", &body)
        .expect("recommend");
    assert_eq!(rec.status, 200, "{}", rec.text());
    assert!(rec.text().contains("loadings"));

    // A hot reload rebuilds the engine at the same precision.
    state
        .registry
        .save(&toy_model("toy-v2", 9))
        .expect("save v2");
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.text());
    assert_eq!(state.cache.snapshot().engine.precision(), Precision::F32);
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert!(
        health.text().contains("\"precision\":\"f32\""),
        "reload must preserve precision: {}",
        health.text()
    );

    drop(client);
    handle.shutdown();
}

#[test]
fn protocol_and_routing_errors_get_typed_statuses() {
    let (handle, _state) = start_server("errors", ServerConfig::default());
    let addr = handle.addr();
    let fresh = || Client::connect(addr, TIMEOUT).expect("connect");

    // Each malformed exchange burns its own connection: the server
    // answers with the typed status and closes.
    let garbage = fresh().send_raw(b"NONSENSE\r\n\r\n").expect("garbage");
    assert_eq!(garbage.status, 400);
    assert!(garbage.text().contains("error"));

    let mut huge_header = b"GET /v1/healthz HTTP/1.1\r\nX-Flood: ".to_vec();
    huge_header.extend(std::iter::repeat_n(b'a', 9000));
    huge_header.extend_from_slice(b"\r\n\r\n");
    assert_eq!(fresh().send_raw(&huge_header).expect("431").status, 431);

    let huge_body = b"POST /v1/recommend HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
    assert_eq!(fresh().send_raw(huge_body).expect("413").status, 413);

    let chunked = b"POST /v1/recommend HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    assert_eq!(fresh().send_raw(chunked).expect("501").status, 501);

    assert_eq!(
        fresh()
            .send_raw(b"GET / HTTP/2.0\r\n\r\n")
            .expect("505")
            .status,
        505
    );

    // Routing-level failures keep the connection alive.
    let mut client = fresh();
    let missing = client.request("GET", "/v1/nope", b"").expect("404");
    assert_eq!(missing.status, 404);
    let wrong_method = client.request("GET", "/v1/recommend", b"").expect("405");
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));
    let bad_json = client
        .request("POST", "/v1/recommend", b"{not json")
        .expect("400");
    assert_eq!(bad_json.status, 400);
    let bad_tag = client
        .request("POST", "/v1/recommend", br#"{"tags":["NOT.A.TAG"]}"#)
        .expect("unknown tag");
    assert_eq!(bad_tag.status, 400, "{}", bad_tag.text());

    assert!(handle.metrics().parse_errors.load(Relaxed) >= 5);
    drop(client);
    handle.shutdown();
}

#[test]
fn classify_text_serves_the_full_pipeline_in_one_request() {
    let (handle, state) = start_text_server("text-e2e", ServerConfig::default());
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");

    // A document straight from the training corpus: same generator,
    // same seed, so its true tags are known.
    let corpus = generate_text_corpus(&TextCorpusConfig {
        tags: 8,
        ..TextCorpusConfig::default()
    });
    let example = &corpus.examples[0];

    let resp = client
        .classify_text("Threads 101", &["DS"], &example.text)
        .expect("classify_text");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body = resp.text();
    // One response carries the whole pipeline: the text model's verdict
    // AND the downstream fold-in recommendation.
    for field in [
        "\"tags\"",
        "\"text_model_version\":1",
        "\"predicted\":true",
        "\"loadings\"",
        "\"mixture\"",
        "\"flavors\"",
        "\"recommendations\"",
        "\"nearest\"",
    ] {
        assert!(body.contains(field), "missing {field}: {body}");
    }
    assert!(body.contains("Threads 101"), "{body}");

    // Client mistakes are 400s, each with a JSON error body.
    let empty = client
        .classify_text("X", &[], "   ")
        .expect("empty text request");
    assert_eq!(empty.status, 400, "{}", empty.text());
    assert!(
        empty.text().contains("no usable tokens"),
        "{}",
        empty.text()
    );
    let missing = client
        .request("POST", "/v1/classify_text", br#"{"name":"X"}"#)
        .expect("missing text field");
    assert_eq!(missing.status, 400);
    assert!(missing.text().contains("text"), "{}", missing.text());
    let bad_label = client
        .classify_text("X", &["Quantum"], "threads")
        .expect("bad label");
    assert_eq!(bad_label.status, 400);

    // healthz reports the text door next to the factor model.
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"text\""), "{}", health.text());
    assert!(health.text().contains("it-text"), "{}", health.text());

    // The per-route series saw every classify_text request above.
    let metrics = client.request("GET", "/v1/metrics", b"").expect("metrics");
    let line = metrics
        .text()
        .lines()
        .find(|l| l.starts_with("anchors_http_route_requests_total{route=\"classify_text\"}"))
        .map(str::to_string)
        .expect("classify_text route series present");
    let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 4, "route counter saw the requests: {line}");
    assert!(metrics
        .text()
        .contains("anchors_http_route_duration_us_bucket{route=\"classify_text\",le=\"+Inf\"}"));

    // The retrying client speaks the same endpoint, deadline and all.
    drop(client);
    let mut retrying = RetryingClient::new(handle.addr(), TIMEOUT, RetryConfig::default());
    let resp = retrying
        .classify_text("Retried", &[], &example.text)
        .expect("retrying classify_text");
    assert_eq!(resp.status, 200);
    assert_eq!(state.metrics.responses_5xx.load(Relaxed), 0);
    handle.shutdown();
}

#[test]
fn classify_text_without_a_door_is_404() {
    let (handle, _state) = start_server("no-door", ServerConfig::default());
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let resp = client
        .classify_text("X", &[], "threads and message passing")
        .expect("classify_text");
    assert_eq!(resp.status, 404, "{}", resp.text());
    // Without a door even the method check is moot: the path is 404.
    let get = client
        .request("GET", "/v1/classify_text", b"")
        .expect("GET classify_text");
    assert_eq!(get.status, 404);
    // And healthz carries no text member.
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert!(!health.text().contains("\"text\""), "{}", health.text());
    drop(client);
    handle.shutdown();
}

#[test]
fn overload_sheds_503_but_drops_no_accepted_request() {
    let (handle, state) = start_server(
        "overload",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            handler_delay: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let body = Arc::new(recommend_body(&state));

    const CLIENTS: usize = 8;
    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        let body = Arc::clone(&body);
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(addr, TIMEOUT).expect("connect");
            let resp = client
                .request("POST", "/v1/recommend", &body)
                .expect("every accepted connection gets a response");
            (resp.status, resp.header("retry-after").map(str::to_string))
        }));
    }
    let results: Vec<(u16, Option<String>)> = threads
        .into_iter()
        .map(|t| t.join().expect("client"))
        .collect();

    // Nobody was dropped: all eight connections got a real HTTP answer,
    // each either served or shed.
    assert_eq!(results.len(), CLIENTS);
    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    let shed = results.iter().filter(|(s, _)| *s == 503).count();
    assert_eq!(ok + shed, CLIENTS, "unexpected statuses: {results:?}");
    assert!(ok >= 1, "at least the first request is served: {results:?}");
    assert!(
        shed >= 1,
        "one worker + depth-1 queue must shed under 8-way load: {results:?}"
    );
    for (status, retry_after) in &results {
        if *status == 503 {
            assert_eq!(
                retry_after.as_deref(),
                Some("1"),
                "shed responses advertise Retry-After"
            );
        }
    }
    assert_eq!(state.metrics.shed.load(Relaxed), shed as u64);

    // Once the burst passes, the server accepts work again.
    let mut client = Client::connect(addr, TIMEOUT).expect("connect after burst");
    assert_eq!(
        client
            .request("GET", "/v1/healthz", b"")
            .expect("healthz")
            .status,
        200
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn reload_swaps_model_version_under_live_traffic() {
    let (handle, state) = start_server("reload", ServerConfig::default());
    let addr = handle.addr();
    let body = Arc::new(recommend_body(&state));

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut hammers = Vec::new();
    for _ in 0..3 {
        let body = Arc::clone(&body);
        let stop = Arc::clone(&stop);
        hammers.push(thread::spawn(move || {
            let mut client = Client::connect(addr, TIMEOUT).expect("connect");
            let mut served = 0usize;
            while !stop.load(Relaxed) {
                let resp = client
                    .request("POST", "/v1/recommend", &body)
                    .expect("request during reload");
                assert_eq!(resp.status, 200, "no failures across the swap");
                served += 1;
            }
            served
        }));
    }

    // Publish v2 and swap to it while the hammers run.
    state
        .registry
        .save(&toy_model("toy-v2", 9))
        .expect("save v2");
    let mut client = Client::connect(addr, TIMEOUT).expect("connect");
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.text());
    assert!(reload.text().contains("\"version\":2"), "{}", reload.text());

    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert!(health.text().contains("\"version\":2"));
    assert!(health.text().contains("toy-v2"));

    stop.store(true, Relaxed);
    let served: usize = hammers.into_iter().map(|h| h.join().expect("hammer")).sum();
    assert!(served > 0, "hammers actually exercised the swap");
    assert_eq!(state.metrics.reloads.load(Relaxed), 1);
    assert_eq!(state.cache.version(), 2);
    drop(client);
    handle.shutdown();
}

#[test]
fn shutdown_drains_already_accepted_connections() {
    let (handle, state) = start_server(
        "drain",
        ServerConfig {
            workers: 1,
            queue_depth: 8,
            handler_delay: Some(Duration::from_millis(40)),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let body = Arc::new(recommend_body(&state));

    const CLIENTS: usize = 4;
    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        let body = Arc::clone(&body);
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(addr, TIMEOUT).expect("connect");
            client
                .request("POST", "/v1/recommend", &body)
                .expect("drained, not dropped")
                .status
        }));
    }
    // Wait until every connection is accepted (queued or in service),
    // then shut down while most are still waiting for the lone worker.
    let deadline = Instant::now() + TIMEOUT;
    while state.metrics.connections.load(Relaxed) < CLIENTS as u64 {
        assert!(Instant::now() < deadline, "connections never accepted");
        thread::yield_now();
    }
    handle.shutdown();

    for t in threads {
        assert_eq!(t.join().expect("client"), 200, "drain answered everyone");
    }
    assert_eq!(state.metrics.responses_2xx.load(Relaxed), CLIENTS as u64);
    assert_eq!(state.metrics.shed.load(Relaxed), 0);
}
