//! End-to-end tests of the online-learning path: `POST /v1/fold_in`
//! persisting durable deltas, the refresh tick absorbing them into a new
//! full model, restart survival, and zero dropped requests while the
//! refresh swaps the snapshot under live load.

use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{NnmfModel, NnmfRecovery};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_online::{DeltaLog, RefreshOptions};
use anchors_serve::{FittedModel, Registry};
use anchors_server::{
    run_refresh_tick, AppState, Client, RefreshConfig, RefreshLoop, Server, ServerConfig,
    ServerHandle,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anchors-online-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn toy_model(name: &str, seed: u64) -> FittedModel {
    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(12));
    let model = NnmfModel {
        w: Matrix::from_fn(6, 3, |i, j| ((i + 2 * j + seed as usize) % 4) as f64 * 0.5),
        h: Matrix::from_fn(3, 12, |i, j| ((i * 12 + j) % 5) as f64 * 0.2 + 0.05),
        loss: 0.2,
        iterations: 7,
        converged: true,
        winning_seed: seed,
        recovery: NnmfRecovery::default(),
    };
    FittedModel::new(name, cs, &space, &model, Backend::Dense).expect("valid artifact")
}

/// An AppState over `dir` with the delta log attached — the same wiring
/// a second server process would do at startup, so calling it twice
/// against one directory *is* the restart scenario.
fn online_state(dir: &Path) -> Arc<AppState> {
    let log = Arc::new(DeltaLog::open(dir).expect("delta log"));
    let registry = Registry::open(dir)
        .expect("registry")
        .with_pins(Arc::clone(&log) as Arc<_>);
    Arc::new(
        AppState::from_registry(registry, cs2013(), pdc12())
            .expect("state")
            .with_online(log),
    )
}

fn start_online_server(tag: &str) -> (ServerHandle, Arc<AppState>, PathBuf) {
    let dir = tmp_dir(tag);
    Registry::open(&dir)
        .expect("registry")
        .save(&toy_model("online-v1", 3))
        .expect("save v1");
    let state = online_state(&dir);
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("start");
    (handle, state, dir)
}

fn fold_in_body(state: &AppState, name: &str) -> Vec<u8> {
    let snapshot = state.cache.snapshot();
    let codes = &snapshot.engine.model().tag_codes;
    format!(
        r#"{{"name":"{name}","labels":["DS"],"tags":["{}","{}","{}"]}}"#,
        codes[1], codes[4], codes[9]
    )
    .into_bytes()
}

#[test]
fn fold_in_persists_a_durable_delta_and_counts_it() {
    let (handle, state, dir) = start_online_server("persist");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");

    let resp = client
        .request("POST", "/v1/fold_in", &fold_in_body(&state, "CS 450"))
        .expect("fold_in");
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(resp.text().contains("\"folded\":true"), "{}", resp.text());
    assert!(
        resp.text().contains("\"delta_version\":1"),
        "{}",
        resp.text()
    );
    assert!(
        resp.text().contains("\"base_version\":1"),
        "{}",
        resp.text()
    );

    // The delta is on disk, chained to the serving version, replayable.
    let log = state.online.as_ref().expect("log attached");
    let live = log.live().expect("live");
    assert_eq!(live.len(), 1);
    assert_eq!(live[0].1.base_version, 1);
    assert_eq!(live[0].1.name, "CS 450");
    assert_eq!(live[0].1.tags.len(), 12);
    assert_eq!(live[0].1.loadings.len(), 3);

    // Counted on its own route and its own counter.
    assert_eq!(state.metrics.fold_ins.load(Relaxed), 1);
    let metrics = client.request("GET", "/v1/metrics", b"").expect("metrics");
    assert!(
        metrics.text().contains("anchors_http_fold_ins_total 1"),
        "{}",
        metrics.text()
    );
    assert!(
        metrics
            .text()
            .contains(r#"anchors_http_route_requests_total{route="fold_in"} 1"#),
        "{}",
        metrics.text()
    );
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fold_in_is_404_when_no_delta_log_is_attached() {
    let dir = tmp_dir("no-log");
    let registry = Registry::open(&dir).expect("registry");
    registry.save(&toy_model("plain-v1", 3)).expect("save v1");
    let state = Arc::new(AppState::from_registry(registry, cs2013(), pdc12()).expect("state"));
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("start");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let resp = client
        .request("POST", "/v1/fold_in", &fold_in_body(&state, "CS 450"))
        .expect("fold_in");
    assert_eq!(resp.status, 404, "{}", resp.text());
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// The ISSUE's acceptance scenario: a folded-in course survives a server
/// restart (the delta is replayed from disk on startup) and is absorbed
/// into the next background refresh's full model.
#[test]
fn folded_course_survives_restart_and_refresh_absorbs_it() {
    let (handle, state, dir) = start_online_server("restart");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let resp = client
        .request("POST", "/v1/fold_in", &fold_in_body(&state, "CS 451"))
        .expect("fold_in");
    assert_eq!(resp.status, 200, "{}", resp.text());
    drop(client);
    handle.shutdown();
    drop(state);

    // "Restart": a fresh process opens the same directory. The delta is
    // still there, chained to the model that served it.
    let state = online_state(&dir);
    assert_eq!(state.cache.version(), 1, "boots on the full model");
    let log = state.online.as_ref().expect("log attached");
    let recovered = log.live().expect("live");
    assert_eq!(recovered.len(), 1, "the fold-in survived the restart");
    assert_eq!(recovered[0].1.name, "CS 451");
    log.verify_bases(&state.registry.list().expect("list"))
        .expect("the delta's base model is still on disk");

    // One refresh tick absorbs it: a new full model publishes with the
    // folded-in course as a real W row, the snapshot swaps, the log
    // compacts to empty.
    let outcome = run_refresh_tick(&state, &RefreshOptions::default())
        .expect("tick")
        .expect("absorbed something");
    assert_eq!(outcome.absorbed, vec![1]);
    assert_eq!(state.cache.version(), outcome.version);
    assert!(outcome.version > 1, "a new full model was published");
    let refreshed = state.cache.snapshot();
    assert_eq!(
        refreshed.engine.model().w.rows(),
        7,
        "6 fixture courses + 1 folded-in"
    );
    assert!(
        log.live().expect("live").is_empty(),
        "absorbed deltas compacted"
    );
    assert_eq!(state.metrics.refreshes.load(Relaxed), 1);

    // A second tick is a no-op, not a second publish.
    assert_eq!(
        run_refresh_tick(&state, &RefreshOptions::default()).expect("tick"),
        None
    );
    assert_eq!(state.cache.version(), outcome.version);
    let _ = fs::remove_dir_all(&dir);
}

/// The refresh swap must drop zero requests: clients hammer
/// `/v1/recommend` on keep-alive connections while fold-ins and refresh
/// ticks publish and swap new models under them.
#[test]
fn refresh_swap_drops_zero_requests_under_load() {
    let (handle, state, dir) = start_online_server("swap-load");
    let addr = handle.addr();
    let body = fold_in_body(&state, "CS 452");

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let body = body.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr, TIMEOUT).expect("connect");
                let mut served = 0u64;
                for _ in 0..50 {
                    let resp = client
                        .request("POST", "/v1/recommend", &body)
                        .expect("recommend");
                    assert_eq!(resp.status, 200, "dropped under refresh: {}", resp.text());
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Meanwhile: fold in courses and run refresh ticks — every tick
    // publishes a new model and swaps the serving snapshot.
    let mut folder = Client::connect(addr, TIMEOUT).expect("connect");
    let mut swaps = 0;
    for round in 0..3 {
        let resp = folder
            .request(
                "POST",
                "/v1/fold_in",
                &fold_in_body(&state, &format!("CS 49{round}")),
            )
            .expect("fold_in");
        assert_eq!(resp.status, 200, "{}", resp.text());
        if run_refresh_tick(&state, &RefreshOptions::default())
            .expect("tick")
            .is_some()
        {
            swaps += 1;
        }
    }
    assert_eq!(swaps, 3, "every tick had a delta to absorb");
    let served: u64 = clients.into_iter().map(|t| t.join().expect("client")).sum();
    assert_eq!(served, 200, "all requests answered across {swaps} swaps");
    assert!(state.cache.version() > 3);
    assert_eq!(state.metrics.refresh_failures.load(Relaxed), 0);
    drop(folder);
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// The background loop end-to-end: its first tick runs immediately, so
/// deltas appended before startup are absorbed without waiting an
/// interval; shutdown joins the thread.
#[test]
fn refresh_loop_absorbs_startup_deltas_and_shuts_down() {
    let (handle, state, dir) = start_online_server("loop");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let resp = client
        .request("POST", "/v1/fold_in", &fold_in_body(&state, "CS 453"))
        .expect("fold_in");
    assert_eq!(resp.status, 200, "{}", resp.text());

    let refresher = RefreshLoop::start(
        Arc::clone(&state),
        RefreshConfig {
            interval: Duration::from_secs(3600), // only the immediate first tick
            ..RefreshConfig::default()
        },
    );
    let deadline = std::time::Instant::now() + TIMEOUT;
    while state.cache.version() == 1 && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert!(state.cache.version() > 1, "first tick swapped a new model");
    assert_eq!(state.metrics.refreshes.load(Relaxed), 1);
    refresher.shutdown(); // joins promptly despite the hour-long interval

    // The swapped model serves over HTTP, folded-in row included.
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200, "{}", health.text());
    assert_eq!(state.cache.snapshot().engine.model().w.rows(), 7);
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
