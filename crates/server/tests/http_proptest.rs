//! Property-based suite for the HTTP request parser.
//!
//! The contracts under test, against adversarial inputs:
//!
//! 1. **Totality** — arbitrary bytes never panic the parser; every
//!    outcome is `Ok(..)` or a typed [`HttpError`].
//! 2. **Split-invariance** — feeding a request in chunks, cut at any
//!    byte boundaries (including mid-`\r\n` and mid-body), yields
//!    exactly the same parse (or the same error) as feeding it whole.
//! 3. **Limits** — oversized header lines are rejected with
//!    `HeadersTooLarge` *even when the attacker never terminates the
//!    line*, and bad or oversized `Content-Length` values die with a
//!    typed 4xx, never an allocation.

use anchors_server::http::{HttpError, Limits, Request, RequestParser};
use proptest::prelude::*;

/// Exhaust the parser on `bytes`: collect every completed request until
/// input runs dry, or stop at the first typed error.
fn parse_all(bytes: &[u8], limits: &Limits) -> Result<Vec<Request>, HttpError> {
    let mut parser = RequestParser::new(limits.clone());
    parser.push_bytes(bytes);
    let mut out = Vec::new();
    while let Some(req) = parser.poll()? {
        out.push(req);
    }
    Ok(out)
}

/// Same input, but delivered in chunks split at `cuts`.
fn parse_chunked(bytes: &[u8], cuts: &[usize], limits: &Limits) -> Result<Vec<Request>, HttpError> {
    let mut parser = RequestParser::new(limits.clone());
    let mut out = Vec::new();
    let mut at = 0;
    let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
    cuts.sort_unstable();
    for cut in cuts.into_iter().chain([bytes.len()]) {
        if cut > at {
            parser.push_bytes(&bytes[at..cut]);
            at = cut;
        }
        while let Some(req) = parser.poll()? {
            out.push(req);
        }
    }
    Ok(out)
}

/// Strategy: a syntactically valid request with arbitrary token, path,
/// header, and body content.
fn valid_request() -> impl Strategy<Value = Vec<u8>> {
    (
        prop::sample::select(vec!["GET", "POST", "PUT", "DELETE"]),
        "/[a-zA-Z0-9/_.-]{0,40}",
        // Values are printable ASCII minus ':' (0x3A), spelled as two
        // ranges so no character-class set operations are needed.
        prop::collection::vec(("[A-Za-z][A-Za-z0-9-]{0,12}", "[ -9;-~]{0,24}"), 0..6),
        prop::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(method, path, headers, body)| {
            let mut req = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
            for (name, value) in &headers {
                // Skip names the parser gives semantics to; they are
                // exercised separately with well-formed values.
                if name.eq_ignore_ascii_case("content-length")
                    || name.eq_ignore_ascii_case("transfer-encoding")
                {
                    continue;
                }
                req.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
            }
            req.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
            req.extend_from_slice(&body);
            req
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage: never a panic, and never an `Ok` hallucinated
    /// out of bytes that don't start with a plausible request line.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_all(&bytes, &Limits::default());
    }

    /// Valid requests parse identically no matter how the byte stream is
    /// chopped up.
    #[test]
    fn split_reads_parse_identically(
        req in valid_request(),
        cuts in prop::collection::vec(any::<usize>(), 0..8),
    ) {
        let limits = Limits::default();
        let whole = parse_all(&req, &limits);
        let chunked = parse_chunked(&req, &cuts, &limits);
        prop_assert_eq!(whole, chunked);
    }

    /// Two pipelined requests come out in order regardless of chunking.
    #[test]
    fn pipelined_pairs_survive_any_split(
        first in valid_request(),
        second in valid_request(),
        cuts in prop::collection::vec(any::<usize>(), 0..8),
    ) {
        let limits = Limits::default();
        let mut stream = first;
        stream.extend_from_slice(&second);
        let whole = parse_all(&stream, &limits).expect("both valid");
        prop_assert_eq!(whole.len(), 2);
        let chunked = parse_chunked(&stream, &cuts, &limits).expect("both valid");
        prop_assert_eq!(whole, chunked);
    }

    /// An unterminated header line larger than the cap is rejected while
    /// buffering — the parser never waits for a terminator that may
    /// never come.
    #[test]
    fn oversized_header_lines_hit_the_limit(extra in 1usize..2048, byte in 0x21u8..0x7f) {
        let limits = Limits { max_header_line: 128, ..Limits::default() };
        let mut req = b"GET / HTTP/1.1\r\nX-Flood: ".to_vec();
        req.extend(std::iter::repeat_n(byte, limits.max_header_line + extra));
        // No terminating CRLF on purpose.
        let got = parse_all(&req, &limits);
        prop_assert!(
            matches!(got, Err(HttpError::HeadersTooLarge { .. })),
            "unterminated {}-byte line -> {:?}", limits.max_header_line + extra, got
        );
    }

    /// Bad Content-Length values are a 400 and oversized ones a 413,
    /// decided from the header alone — no body is ever buffered.
    #[test]
    fn bad_content_lengths_are_typed_errors(value in "[ -~]{1,20}") {
        let limits = Limits { max_body: 4096, ..Limits::default() };
        let req = format!("POST / HTTP/1.1\r\nContent-Length: {value}\r\n\r\n");
        // The parser trims surrounding spaces/tabs before validating.
        let trimmed = value.trim_matches([' ', '\t']);
        let digits = !trimmed.is_empty() && trimmed.bytes().all(|b| b.is_ascii_digit());
        match trimmed.parse::<u128>() {
            Ok(n) if digits && n <= limits.max_body as u128 => {
                // Well-formed and within limits: not this test's concern.
            }
            Ok(n) if digits && n <= usize::MAX as u128 => {
                let got = parse_all(req.as_bytes(), &limits);
                prop_assert!(
                    matches!(got, Err(HttpError::BodyTooLarge { .. })),
                    "{value:?} -> {got:?}"
                );
            }
            _ => {
                let got = parse_all(req.as_bytes(), &limits);
                prop_assert!(
                    matches!(got, Err(HttpError::BadRequest { .. })),
                    "{value:?} -> {got:?}"
                );
            }
        }
    }
}
