//! Chaos suite: the server under injected filesystem faults.
//!
//! Every scenario drives a real server over real sockets while a seeded
//! [`FaultyFs`] puts weather between the registry and the disk. The
//! invariants under test, across all scenarios:
//!
//! * **zero panics** — no fault ever unwinds a serving thread,
//! * **zero served-corrupt-model** — a damaged artifact is never the one
//!   answering queries,
//! * **last-good always answerable** — whatever the registry weather,
//!   `/v1/recommend` keeps returning 200 from the last-good snapshot.

use anchors_corpus::{generate_text_corpus, TextCorpusConfig};
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{NnmfModel, NnmfRecovery};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_online::{DeltaLog, RefreshOptions};
use anchors_serve::{FaultPlan, FaultyFs, FileOps, FittedModel, Registry};
use anchors_server::{
    run_refresh_tick, AppState, Client, RetryConfig, RetryingClient, Server, ServerConfig,
    ServerHandle, TextDoor,
};
use anchors_text::{train, TextModel, TrainConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(5);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anchors-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn toy_model(name: &str, seed: u64) -> FittedModel {
    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(12));
    let model = NnmfModel {
        w: Matrix::from_fn(6, 3, |i, j| ((i + 2 * j + seed as usize) % 4) as f64 * 0.5),
        h: Matrix::from_fn(3, 12, |i, j| ((i * 12 + j) % 5) as f64 * 0.2 + 0.05),
        loss: 0.2,
        iterations: 7,
        converged: true,
        winning_seed: seed,
        recovery: NnmfRecovery::default(),
    };
    FittedModel::new(name, cs, &space, &model, Backend::Dense).expect("valid artifact")
}

/// A server whose registry sits on a fault-injecting filesystem. The
/// fixture (v1 save + startup load) happens with injection off; each
/// scenario switches the weather on itself.
fn start_faulty_server(tag: &str, plan: FaultPlan) -> (ServerHandle, Arc<AppState>, Arc<FaultyFs>) {
    let ffs = Arc::new(FaultyFs::new(plan));
    ffs.set_enabled(false);
    let registry =
        Registry::open_with(tmp_dir(tag), Arc::clone(&ffs) as Arc<dyn FileOps>).expect("registry");
    registry.save(&toy_model("chaos-v1", 3)).expect("save v1");
    let state = Arc::new(AppState::from_registry(registry, cs2013(), pdc12()).expect("state"));
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("start");
    (handle, state, ffs)
}

fn recommend_body(state: &AppState) -> Vec<u8> {
    let snapshot = state.cache.snapshot();
    let codes = &snapshot.engine.model().tag_codes;
    format!(
        r#"{{"name":"CS 201","labels":["DS"],"tags":["{}","{}"]}}"#,
        codes[0], codes[5]
    )
    .into_bytes()
}

/// Scenario 1 — a torn write during publish. The save fails, the torn
/// temp never becomes a version, queries never miss a beat, and once the
/// weather clears the next publish + reload swaps cleanly.
#[test]
fn torn_publish_never_downs_serving() {
    let (handle, state, ffs) =
        start_faulty_server("torn", FaultPlan::none(21).with_torn_write(1.0));
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let body = recommend_body(&state);

    ffs.set_enabled(true);
    let err = state
        .registry
        .save(&toy_model("chaos-v2", 9))
        .expect_err("torn write must fail the save");
    assert!(
        err.is_corruption() || !err.is_transient(),
        "not retry-as-is: {err}"
    );
    assert!(ffs.counters().torn_writes.load(Relaxed) >= 1);

    // Serving is untouched: still v1, still healthy, still answering.
    let rec = client
        .request("POST", "/v1/recommend", &body)
        .expect("query");
    assert_eq!(rec.status, 200, "{}", rec.text());
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("chaos-v1"), "{}", health.text());

    // Weather clears: publish and swap work immediately.
    ffs.set_enabled(false);
    state
        .registry
        .save(&toy_model("chaos-v2", 9))
        .expect("save v2");
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.text());
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert!(health.text().contains("chaos-v2"), "{}", health.text());
    assert_eq!(state.metrics.reload_failures.load(Relaxed), 0);
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(state.registry.dir());
}

/// Scenario 2 — the newest artifact is corrupt at startup. The server
/// boots on the newest *good* version, `recover()` quarantines the bad
/// bytes without deleting them, the dead version number is never reused,
/// and the corrupt model is never the one served.
#[test]
fn corrupt_latest_falls_back_and_recovery_quarantines() {
    let dir = tmp_dir("corrupt-latest");
    let registry = Registry::open(&dir).expect("registry");
    registry.save(&toy_model("good-v1", 3)).expect("save v1");
    let v2 = registry.save(&toy_model("bad-v2", 9)).expect("save v2");
    let ext = registry.format().extension();
    let v2_path = dir.join(format!("model-v{v2}.{ext}"));
    let bytes = fs::read(&v2_path).expect("read v2");
    fs::write(&v2_path, &bytes[..bytes.len() / 2]).expect("tear v2");

    // Startup falls back: the corrupt v2 is skipped, good v1 serves.
    let state = Arc::new(AppState::from_registry(registry, cs2013(), pdc12()).expect("state"));
    assert_eq!(state.cache.version(), 1);
    assert_eq!(state.cache.snapshot().engine.model().name, "good-v1");
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("start");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let body = recommend_body(&state);
    assert_eq!(
        client
            .request("POST", "/v1/recommend", &body)
            .expect("query")
            .status,
        200
    );

    // The startup sweep: corrupt bytes are moved aside, not deleted.
    let report = state.registry.recover().expect("recover");
    assert_eq!(report.good, vec![1]);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].0, v2);
    assert!(dir.join(format!("model-v{v2}.{ext}.quarantined")).exists());
    assert!(!v2_path.exists());

    // The quarantined number is burned: the next publish is v3, and a
    // reload serves it — the bad model never answered a single query.
    let v3 = state
        .registry
        .save(&toy_model("good-v3", 11))
        .expect("save v3");
    assert_eq!(v3, 3, "quarantined v2 is never reused");
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.text());
    assert_eq!(state.cache.snapshot().engine.model().name, "good-v3");
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Scenario 3 — persistent transient faults: reload fails even after its
/// internal retries, the server flips to degraded (healthz 503 + detail +
/// Retry-After) while queries keep flowing from the last-good snapshot,
/// and a later successful reload self-heals without a restart.
#[test]
fn persistent_transient_faults_degrade_then_self_heal() {
    let (handle, state, ffs) =
        start_faulty_server("degrade", FaultPlan::none(31).with_transient_error(1.0));
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let body = recommend_body(&state);

    ffs.set_enabled(true);
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    assert_eq!(
        reload.status,
        503,
        "transient registry trouble is retryable: {}",
        reload.text()
    );
    assert_eq!(reload.header("retry-after"), Some("1"));
    assert!(
        ffs.counters().transient_errors.load(Relaxed) >= state.reload_retry.attempts as u64,
        "every internal retry hit an injected fault"
    );
    assert_eq!(state.metrics.reload_failures.load(Relaxed), 1);
    assert_eq!(state.metrics.serving_degraded.load(Relaxed), 1);

    // Degraded is visible and explained...
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 503);
    assert_eq!(health.header("retry-after"), Some("1"));
    assert!(health.text().contains("degraded"), "{}", health.text());
    assert!(health.text().contains("detail"), "{}", health.text());
    // ...but the last-good snapshot keeps answering, fault-free: the
    // query path never touches the registry.
    for _ in 0..5 {
        let rec = client
            .request("POST", "/v1/recommend", &body)
            .expect("query");
        assert_eq!(rec.status, 200, "degraded still serves: {}", rec.text());
    }
    let metrics = client.request("GET", "/v1/metrics", b"").expect("metrics");
    assert!(metrics.text().contains("anchors_http_serving_degraded 1"));

    // Weather clears → the next reload heals the state machine.
    ffs.set_enabled(false);
    assert_eq!(
        client
            .request("POST", "/v1/reload", b"")
            .expect("reload")
            .status,
        200
    );
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200, "self-healed: {}", health.text());
    assert_eq!(state.metrics.serving_degraded.load(Relaxed), 0);
    assert!(!state.health.is_degraded());
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(state.registry.dir());
}

/// Scenario 4 — a transient blip shorter than the retry budget: the
/// reload handler rides it out internally and the client sees one clean
/// 200, no degraded window at all.
#[test]
fn transient_blip_is_absorbed_by_reload_retries() {
    let (handle, state, ffs) = start_faulty_server(
        "blip",
        FaultPlan::none(41)
            .with_transient_error(1.0)
            .with_max_faults(2),
    );
    state
        .registry
        .save(&toy_model("chaos-v2", 9))
        .expect("save v2");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");

    ffs.set_enabled(true);
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    assert_eq!(reload.status, 200, "blip absorbed: {}", reload.text());
    assert!(reload.text().contains("\"version\":2"), "{}", reload.text());
    assert_eq!(
        ffs.counters().transient_errors.load(Relaxed),
        2,
        "both budgeted faults fired"
    );
    assert_eq!(state.metrics.reload_failures.load(Relaxed), 0);
    assert_eq!(state.metrics.serving_degraded.load(Relaxed), 0);
    assert_eq!(
        client
            .request("GET", "/v1/healthz", b"")
            .expect("healthz")
            .status,
        200
    );
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(state.registry.dir());
}

/// Scenario 5 — slow registry I/O: a reload crawling through injected
/// delays never blocks the query path, because all loading happens
/// outside the snapshot lock and on its own worker thread.
#[test]
fn slow_io_reload_does_not_block_queries() {
    let (handle, state, ffs) = start_faulty_server(
        "slow",
        FaultPlan::none(51).with_slow_io(1.0, Duration::from_millis(40)),
    );
    state
        .registry
        .save(&toy_model("chaos-v2", 9))
        .expect("save v2");
    let addr = handle.addr();
    let body = recommend_body(&state);

    ffs.set_enabled(true);
    let reloader = thread::spawn(move || {
        let mut client = Client::connect(addr, TIMEOUT).expect("connect");
        let started = Instant::now();
        let status = client
            .request("POST", "/v1/reload", b"")
            .expect("reload")
            .status;
        (status, started.elapsed())
    });
    // While the reload crawls, queries answer from the snapshot.
    let mut client = Client::connect(addr, TIMEOUT).expect("connect");
    let query_burst_started = Instant::now();
    for _ in 0..10 {
        let rec = client
            .request("POST", "/v1/recommend", &body)
            .expect("query");
        assert_eq!(rec.status, 200);
    }
    let burst = query_burst_started.elapsed();
    let (reload_status, reload_took) = reloader.join().expect("reloader");
    assert_eq!(reload_status, 200);
    assert!(
        ffs.counters().slow_ios.load(Relaxed) >= 1,
        "delays actually injected"
    );
    assert!(
        reload_took >= Duration::from_millis(40),
        "the reload really was slow: {reload_took:?}"
    );
    assert!(
        burst < reload_took,
        "ten queries ({burst:?}) outran one slow reload ({reload_took:?})"
    );
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(state.registry.dir());
}

/// Scenario 7 — a corrupt *text* artifact: only `/v1/classify_text`
/// degrades (typed 503 + `Retry-After`), the factor routes never miss a
/// beat, the bad bytes are quarantined as evidence, and publishing a
/// good text model + one reload heals the door without a restart.
#[test]
fn corrupt_text_model_degrades_only_its_route_and_heals() {
    let dir = tmp_dir("text-chaos");
    let registry = Registry::open(&dir).expect("model registry");
    registry
        .save(&toy_model("chaos-v1", 3))
        .expect("save model");
    let text_registry: Registry<TextModel> = Registry::open(&dir).expect("text registry");

    let corpus = generate_text_corpus(&TextCorpusConfig {
        tags: 8,
        ..TextCorpusConfig::default()
    });
    let text_model = train(
        "chaos-text",
        cs2013(),
        &corpus.tag_codes,
        &corpus.examples,
        &TrainConfig::default(),
    )
    .expect("trains");
    let v1 = text_registry.save(&text_model).expect("save text v1");

    // Tear the only text artifact, then boot: the door must open
    // degraded (quarantining the evidence) while everything else works.
    let text_path = text_registry.path_of(v1);
    let bytes = fs::read(&text_path).expect("read text v1");
    fs::write(&text_path, &bytes[..bytes.len() / 2]).expect("tear text v1");
    let door = TextDoor::open(Registry::open(&dir).expect("reopen"), cs2013());
    assert!(door.is_degraded(), "torn text artifact opens degraded");
    let state = Arc::new(
        AppState::from_registry(registry, cs2013(), pdc12())
            .expect("state")
            .with_text(door),
    );
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("start");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");

    // The text route is a typed 503 with Retry-After...
    let text_resp = client
        .classify_text("CS 301", &[], &corpus.examples[0].text)
        .expect("classify_text");
    assert_eq!(text_resp.status, 503, "{}", text_resp.text());
    assert_eq!(text_resp.header("retry-after"), Some("1"));
    assert!(
        text_resp.text().contains("text model unavailable"),
        "{}",
        text_resp.text()
    );
    // ...while the factor routes and liveness never notice.
    let body = recommend_body(&state);
    for _ in 0..3 {
        assert_eq!(
            client
                .request("POST", "/v1/recommend", &body)
                .expect("recommend")
                .status,
            200,
            "factor serving unaffected by text trouble"
        );
    }
    let health = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200, "text-only degradation is not liveness");
    assert!(health.text().contains("degraded"), "{}", health.text());

    // The torn bytes were moved aside, not deleted, and never served.
    let quarantined: Vec<String> = fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("text-") && n.ends_with(".quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "text evidence kept: {quarantined:?}");
    assert!(!text_path.exists());

    // Publish good bytes; one reload heals the door and the route.
    let v2 = text_registry.save(&text_model).expect("save text v2");
    assert!(v2 > v1, "quarantined version number is burned");
    let reload = client.request("POST", "/v1/reload", b"").expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.text());
    assert!(
        reload.text().contains(&format!("\"text_version\":{v2}")),
        "{}",
        reload.text()
    );
    let healed = client
        .classify_text("CS 301", &[], &corpus.examples[0].text)
        .expect("classify_text after heal");
    assert_eq!(healed.status, 200, "{}", healed.text());
    assert!(
        healed
            .text()
            .contains(&format!("\"text_model_version\":{v2}")),
        "{}",
        healed.text()
    );
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Scenario 6 — the retrying client rides out a degraded window: it
/// honors the server's `Retry-After` on 503 and comes back to a healed
/// server, turning an operator-visible outage into one slow request.
#[test]
fn retrying_client_rides_out_degraded_window() {
    let (handle, state, ffs) =
        start_faulty_server("ride-out", FaultPlan::none(61).with_transient_error(1.0));
    let addr = handle.addr();

    // Push the server into degraded mode.
    ffs.set_enabled(true);
    let mut plain = Client::connect(addr, TIMEOUT).expect("connect");
    assert_eq!(
        plain
            .request("POST", "/v1/reload", b"")
            .expect("reload")
            .status,
        503
    );
    assert_eq!(
        plain
            .request("GET", "/v1/healthz", b"")
            .expect("healthz")
            .status,
        503
    );
    drop(plain);

    // A healer clears the fault and reloads while the client backs off.
    let healer_state = Arc::clone(&state);
    let healer_ffs = Arc::clone(&ffs);
    let healer = thread::spawn(move || {
        thread::sleep(Duration::from_millis(200));
        healer_ffs.set_enabled(false);
        let mut client = Client::connect(addr, TIMEOUT).expect("connect");
        assert_eq!(
            client
                .request("POST", "/v1/reload", b"")
                .expect("heal")
                .status,
            200
        );
        assert!(!healer_state.health.is_degraded());
    });

    let mut retrying = RetryingClient::new(
        addr,
        TIMEOUT,
        RetryConfig {
            max_attempts: 5,
            deadline: Duration::from_secs(20),
            jitter_seed: 61,
            ..RetryConfig::default()
        },
    );
    let resp = retrying
        .request("GET", "/v1/healthz", b"")
        .expect("retrying client");
    assert_eq!(resp.status, 200, "rode out the degraded window");
    healer.join().expect("healer");
    handle.shutdown();
    let _ = fs::remove_dir_all(state.registry.dir());
}

/// Scenario 8 — a crash mid-delta-append. A torn write fails the
/// `/v1/fold_in` durably-persist step: the client gets a typed error,
/// nothing half-written ever replays, serving never misses a beat. The
/// startup sweep clears the wreckage; once the weather clears, the next
/// fold-in lands and a refresh tick absorbs it into a full model —
/// the log healed itself without an operator.
#[test]
fn torn_delta_append_never_replays_and_heals() {
    let dir = tmp_dir("torn-delta");
    let ffs = Arc::new(FaultyFs::new(FaultPlan::none(71).with_torn_write(1.0)));
    ffs.set_enabled(false);
    let log = Arc::new(
        DeltaLog::open_with(&dir, Arc::clone(&ffs) as Arc<dyn FileOps>).expect("delta log"),
    );
    let registry = Registry::open_with(&dir, Arc::clone(&ffs) as Arc<dyn FileOps>)
        .expect("registry")
        .with_pins(Arc::clone(&log) as Arc<_>);
    registry.save(&toy_model("chaos-v1", 3)).expect("save v1");
    let state = Arc::new(
        AppState::from_registry(registry, cs2013(), pdc12())
            .expect("state")
            .with_online(Arc::clone(&log)),
    );
    let handle =
        Server::start(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).expect("start");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let codes: Vec<String> = state.cache.snapshot().engine.model().tag_codes.clone();
    let fold_body = format!(
        r#"{{"name":"CS 480","labels":["DS"],"tags":["{}","{}"]}}"#,
        codes[2], codes[7]
    )
    .into_bytes();

    // The append tears mid-write: the route reports the failure...
    ffs.set_enabled(true);
    let torn = client
        .request("POST", "/v1/fold_in", &fold_body)
        .expect("fold_in");
    assert_ne!(torn.status, 200, "a torn append must not report success");
    assert!(ffs.counters().torn_writes.load(Relaxed) >= 1);
    ffs.set_enabled(false);
    // ...and the torn bytes never replay: the log reads back empty.
    assert!(
        log.live().expect("live").is_empty(),
        "no half-written delta"
    );
    assert_eq!(state.metrics.fold_ins.load(Relaxed), 0);

    // Serving never noticed: queries and liveness keep answering.
    let body = recommend_body(&state);
    assert_eq!(
        client
            .request("POST", "/v1/recommend", &body)
            .expect("query")
            .status,
        200
    );
    assert_eq!(
        client
            .request("GET", "/v1/healthz", b"")
            .expect("healthz")
            .status,
        200
    );

    // The startup sweep clears the wreckage (a stale temp at worst —
    // the torn append never claimed a version)...
    let report = log.recover().expect("recover");
    assert!(
        report.quarantined.is_empty(),
        "nothing claimed, nothing condemned"
    );
    // ...and the next fold-in heals the log: it lands durably and the
    // refresh absorbs it into a published full model.
    let healed = client
        .request("POST", "/v1/fold_in", &fold_body)
        .expect("fold_in");
    assert_eq!(healed.status, 200, "{}", healed.text());
    assert_eq!(log.live().expect("live").len(), 1);
    let outcome = run_refresh_tick(&state, &RefreshOptions::default())
        .expect("tick")
        .expect("absorbed the healed fold-in");
    assert!(outcome.version > 1);
    assert_eq!(state.cache.snapshot().engine.model().w.rows(), 7);
    assert!(
        log.live().expect("live").is_empty(),
        "absorbed and compacted"
    );
    assert!(!state.health.is_degraded());
    drop(client);
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
