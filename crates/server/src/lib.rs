//! `anchors-server` — a pure-`std` HTTP/1.1 front end for the serving
//! subsystem.
//!
//! The whole network stack is built on [`std::net::TcpListener`]: a
//! hand-rolled incremental parser with enforced input limits
//! ([`http`]), a fixed worker pool fed by a bounded connection queue
//! that sheds overload with `503 Retry-After` ([`queue`], [`server`]),
//! a router over the model-serving endpoints ([`router`]), lock-free
//! metrics with fixed-bucket latency histograms ([`metrics`]), and a
//! graceful shutdown that drains every accepted connection. No
//! external dependencies, no async runtime — concurrency is threads
//! and a condvar, which is deterministic to reason about and plenty
//! for the sub-millisecond fold-in solves it fronts.
//!
//! ```no_run
//! use anchors_curricula::{cs2013, pdc12};
//! use anchors_server::{AppState, Server, ServerConfig};
//! use anchors_serve::Registry;
//! use std::sync::Arc;
//!
//! let registry = Registry::open("models").unwrap();
//! let state = Arc::new(AppState::from_registry(registry, cs2013(), pdc12()).unwrap());
//! let handle = Server::start(state, "127.0.0.1:8080", ServerConfig::default()).unwrap();
//! // ... serve until done ...
//! handle.shutdown(); // drains in-flight requests, then exits
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod refresh;
pub mod router;
pub mod server;
pub mod textdoor;
pub mod wire;

pub use client::{
    Backoff, Client, ClientResponse, Clock, RetryConfig, RetryingClient, SystemClock, TestClock,
};
pub use http::{HttpError, Limits, Request, RequestParser, Response, Version};
pub use metrics::{LatencyHistogram, Metrics, Route, RouteMetrics, LATENCY_BOUNDS_US};
pub use queue::{BoundedQueue, PushError};
pub use refresh::{run_refresh_tick, RefreshConfig, RefreshHandle, RefreshLoop, RefreshOutcome};
pub use server::{
    precision_from_env, AppState, Health, RetryPolicy, Server, ServerConfig, ServerHandle,
    PRECISION_ENV,
};
pub use textdoor::{TextDoor, TextSnapshot};
pub use wire::WireError;

pub use anchors_serve::Precision;
