//! The backpressure primitive: a bounded MPMC queue of accepted
//! connections.
//!
//! The accept loop pushes with [`BoundedQueue::try_push`], which *fails
//! immediately* when the queue is full — no blocking, no unbounded
//! buffering — handing the connection back so the caller can shed it
//! with `503 Retry-After`. Workers block in [`BoundedQueue::pop`].
//! [`BoundedQueue::close`] starts the drain: pushes are refused, but
//! pops keep returning queued items until the queue is empty, so a
//! graceful shutdown answers everything it already accepted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused, returning the item to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the item.
    Full(T),
    /// The queue is closed (shutting down).
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking; `Err(Full)` at capacity, `Err(Closed)`
    /// after [`close`](BoundedQueue::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is open and empty. `None` means
    /// closed *and* drained — the consumer should exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Refuse new pushes and wake every blocked consumer; queued items
    /// remain poppable until drained.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_and_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "slot freed by pop");
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(PushError::Closed(item)) => assert_eq!(item, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Queued items survive the close...
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        // ...then consumers get the shutdown signal.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for v in 0..10 {
            // Producers spin on Full — the consumers are draining.
            let mut item = v;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>(), "nothing lost or doubled");
    }
}
