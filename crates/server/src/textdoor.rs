//! The text-classification front door: loading, serving, and healing
//! the [`TextModel`] artifact next to the factor model.
//!
//! `/v1/classify_text` needs a second artifact with the same lifecycle
//! the factor model already has — versioned on disk, quarantined when
//! corrupt, hot-reloaded, served from an `Arc` snapshot. [`TextDoor`]
//! packages that: a [`Registry`]`<TextModel>` (same directory as the
//! model registry is fine — the `text-v<N>` stem keeps them apart) plus
//! a swap-on-reload snapshot.
//!
//! The door *degrades instead of failing*: if the registry holds no
//! loadable text model at startup — empty, all corrupt, wrong ontology
//! revision — the server still comes up and every other route serves.
//! Only `/v1/classify_text` answers `503 Retry-After` with the
//! degradation detail until a reload finds a good artifact, at which
//! point the door heals itself. A *failed* reload of an open door keeps
//! the last-good snapshot serving, mirroring the factor-model cache.

use anchors_curricula::Ontology;
use anchors_serve::{Registry, ServeError};
use anchors_text::TextModel;
use std::sync::{Arc, RwLock};

/// An immutable, atomically swappable view of the served text model.
#[derive(Debug)]
pub struct TextSnapshot {
    /// Registry version the model was loaded from.
    pub version: u64,
    /// The classifier itself.
    pub model: TextModel,
}

#[derive(Debug)]
enum DoorState {
    /// A text model is loaded and serving.
    Ready(Arc<TextSnapshot>),
    /// No servable text model; the string is the human-readable cause.
    Degraded(String),
}

/// The serving door for text classification. See the module docs.
#[derive(Debug)]
pub struct TextDoor {
    registry: Registry<TextModel>,
    cs: &'static Ontology,
    state: RwLock<DoorState>,
}

impl TextDoor {
    /// Open the door over `registry`: quarantine corrupt artifacts, load
    /// the newest good version, and gate it against `cs`. Never fails —
    /// trouble leaves the door degraded, not the server down.
    pub fn open(registry: Registry<TextModel>, cs: &'static Ontology) -> TextDoor {
        let state = RwLock::new(match Self::load(&registry, cs) {
            Ok(snapshot) => DoorState::Ready(Arc::new(snapshot)),
            Err(e) => DoorState::Degraded(e.to_string()),
        });
        TextDoor {
            registry,
            cs,
            state,
        }
    }

    fn load(
        registry: &Registry<TextModel>,
        cs: &'static Ontology,
    ) -> Result<TextSnapshot, ServeError> {
        registry.recover()?;
        let (version, model) = registry.load_latest()?;
        model.check_ontology(cs).map_err(|e| match e {
            anchors_text::TextError::FingerprintMismatch {
                guideline,
                expected,
                found,
            } => ServeError::FingerprintMismatch {
                guideline,
                expected,
                found,
            },
            other => ServeError::Corrupt {
                source: format!("text-v{version}"),
                detail: other.to_string(),
            },
        })?;
        Ok(TextSnapshot { version, model })
    }

    /// The served snapshot, or the degradation detail.
    pub fn snapshot(&self) -> Result<Arc<TextSnapshot>, String> {
        match &*self.state.read().unwrap_or_else(|e| e.into_inner()) {
            DoorState::Ready(snapshot) => Ok(Arc::clone(snapshot)),
            DoorState::Degraded(detail) => Err(detail.clone()),
        }
    }

    /// Whether the door is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.snapshot().is_err()
    }

    /// The version being served, if any.
    pub fn version(&self) -> Option<u64> {
        self.snapshot().ok().map(|s| s.version)
    }

    /// Re-scan the registry and swap to the newest good version.
    ///
    /// Self-healing rules: a success always swaps (and clears degraded
    /// state); a failure of a *degraded* door keeps it degraded with the
    /// fresh detail; a failure of a *ready* door keeps the last-good
    /// snapshot serving — reload trouble never takes away a model that
    /// is already answering.
    pub fn reload(&self) -> Result<u64, ServeError> {
        match Self::load(&self.registry, self.cs) {
            Ok(snapshot) => {
                let version = snapshot.version;
                *self.state.write().unwrap_or_else(|e| e.into_inner()) =
                    DoorState::Ready(Arc::new(snapshot));
                Ok(version)
            }
            Err(e) => {
                let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
                if let DoorState::Degraded(detail) = &mut *state {
                    *detail = e.to_string();
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;
    use anchors_linalg::Matrix;
    use anchors_text::FeaturizerConfig;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "anchors-server-textdoor-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn toy_text_model() -> TextModel {
        let cs = cs2013();
        let codes: Vec<String> = cs
            .leaf_items()
            .into_iter()
            .take(2)
            .map(|id| cs.node(id).code.clone())
            .collect();
        let config = FeaturizerConfig {
            n_buckets: 16,
            ..FeaturizerConfig::default()
        };
        TextModel {
            name: "door-toy".into(),
            guideline: cs.name.clone(),
            fingerprint: cs.fingerprint(),
            tag_codes: codes,
            config,
            idf: vec![1.0; 16],
            weights: Matrix::from_fn(2, 16, |i, j| (i + j) as f64 * 0.125),
            bias: vec![0.0, 0.0],
            thresholds: vec![0.5, 0.5],
            train_docs: 2,
            train_seed: 3,
            train_f1: 1.0,
        }
    }

    #[test]
    fn empty_registry_degrades_instead_of_failing() {
        let dir = tmp_dir("empty");
        let registry: Registry<TextModel> = Registry::open(&dir).unwrap();
        let door = TextDoor::open(registry, cs2013());
        assert!(door.is_degraded());
        assert!(door.version().is_none());
        let detail = door.snapshot().unwrap_err();
        assert!(detail.contains("no model versions"), "detail: {detail}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_quarantines_and_reload_heals() {
        let dir = tmp_dir("heal");
        let registry: Registry<TextModel> = Registry::open(&dir).unwrap();
        let v1 = registry.save(&toy_text_model()).unwrap();
        // Corrupt the only version: the door opens degraded and the file
        // is quarantined as evidence.
        let path = registry.path_of(v1);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let door = TextDoor::open(Registry::open(&dir).unwrap(), cs2013());
        assert!(door.is_degraded());
        let quarantined: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".quarantined"))
            .collect();
        assert!(!quarantined.is_empty(), "corrupt artifact kept as evidence");
        // Publish a good version; reload heals the door.
        let v2 = registry.save(&toy_text_model()).unwrap();
        assert_eq!(door.reload().unwrap(), v2);
        assert!(!door.is_degraded());
        assert_eq!(door.version(), Some(v2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_reload_keeps_last_good_snapshot() {
        let dir = tmp_dir("lastgood");
        let registry: Registry<TextModel> = Registry::open(&dir).unwrap();
        let v1 = registry.save(&toy_text_model()).unwrap();
        let door = TextDoor::open(Registry::open(&dir).unwrap(), cs2013());
        assert_eq!(door.version(), Some(v1));
        // Publish a corrupt v2: reload fails but v1 keeps serving.
        let v2 = registry.save(&toy_text_model()).unwrap();
        let path = registry.path_of(v2);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        // recover() quarantines v2, load_latest falls back to v1: the
        // door actually *swaps* to the best good version.
        assert_eq!(door.reload().unwrap(), v1);
        assert_eq!(door.version(), Some(v1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_ontology_revision_degrades() {
        let dir = tmp_dir("drift");
        let registry: Registry<TextModel> = Registry::open(&dir).unwrap();
        let mut model = toy_text_model();
        model.fingerprint ^= 1;
        registry.save(&model).unwrap();
        let door = TextDoor::open(Registry::open(&dir).unwrap(), cs2013());
        assert!(door.is_degraded());
        let detail = door.snapshot().unwrap_err();
        assert!(detail.contains("revision"), "detail: {detail}");
        let _ = fs::remove_dir_all(&dir);
    }
}
