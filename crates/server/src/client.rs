//! A minimal pure-std HTTP/1.1 client, just enough to drive the server
//! from integration tests, the `http_smoke` bench, and the example.
//!
//! It speaks exactly the dialect the server emits: `Content-Length`
//! framed responses with a `Connection` header. Not a general client —
//! no chunked decoding, no redirects, no TLS.
//!
//! For resilience tests and polite load sources there is also
//! [`RetryingClient`]: per-request deadlines plus jittered exponential
//! backoff that honors `Retry-After` on 503, driven through an
//! injectable [`Clock`] so the whole schedule is unit-testable without
//! sleeping or touching a socket.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One connection, usable for many keep-alive requests.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with a read/write deadline.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream })
    }

    /// Send one request and read its response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        let mut out = Vec::with_capacity(128 + body.len());
        write!(out, "{method} {path} HTTP/1.1\r\nHost: anchors\r\n")?;
        if !body.is_empty() {
            write!(out, "Content-Type: application/json\r\n")?;
        }
        write!(out, "Content-Length: {}\r\n\r\n", body.len())?;
        out.extend_from_slice(body);
        self.stream.write_all(&out)?;
        self.read_response()
    }

    /// POST `/v1/classify_text`: raw course text (plus optional name and
    /// label strings) in, the composed tags-plus-recommendation response
    /// out. The body is built with the same JSON writer the server
    /// parses with, so escaping is never the caller's problem.
    pub fn classify_text(
        &mut self,
        name: &str,
        labels: &[&str],
        text: &str,
    ) -> io::Result<ClientResponse> {
        let body = classify_text_body(name, labels, text);
        self.request("POST", "/v1/classify_text", body.as_bytes())
    }

    /// Send raw bytes (for malformed-input tests) and read one response.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<ClientResponse> {
        self.stream.write_all(bytes)?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(at) = find_subslice(&buf, b"\r\n\r\n") {
                break at;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed before response head",
                    ))
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-body",
                    ))
                }
                Ok(n) => body.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
        body.truncate(content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// The `/v1/classify_text` request body for `name`/`labels`/`text`.
fn classify_text_body(name: &str, labels: &[&str], text: &str) -> String {
    use anchors_serve::json::Json;
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        (
            "labels".into(),
            Json::Arr(labels.iter().map(|&l| Json::Str(l.into())).collect()),
        ),
        ("text".into(), Json::Str(text.into())),
    ])
    .write()
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Time source for retry scheduling — injectable so backoff behavior is
/// testable with a virtual clock instead of real sleeps.
pub trait Clock {
    /// Monotonic time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
    /// Block for `d` (or just advance virtual time).
    fn sleep(&mut self, d: Duration);
}

/// The real wall clock: `Instant` plus `thread::sleep`.
#[derive(Debug)]
pub struct SystemClock(Instant);

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        SystemClock(Instant::now())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.0.elapsed()
    }

    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Deterministic virtual clock: `sleep` advances time instantly and
/// records what was requested, so tests assert on the exact schedule.
#[derive(Debug, Default)]
pub struct TestClock {
    now: Duration,
    /// Every sleep requested, in order.
    pub sleeps: Vec<Duration>,
}

impl Clock for TestClock {
    fn now(&self) -> Duration {
        self.now
    }

    fn sleep(&mut self, d: Duration) {
        self.sleeps.push(d);
        self.now += d;
    }
}

/// Retry schedule knobs for [`RetryingClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total attempts, first try included.
    pub max_attempts: u32,
    /// Nominal delay before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on the nominal (pre-jitter) delay.
    pub max_backoff: Duration,
    /// Overall per-request deadline: no retry is attempted if it cannot
    /// start before this budget (measured from the first attempt) runs
    /// out.
    pub deadline: Duration,
    /// Seed of the jitter stream — same seed, same schedule.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            deadline: Duration::from_secs(5),
            jitter_seed: 0x5EED,
        }
    }
}

/// The jittered exponential schedule itself, split out so tests can walk
/// it without any I/O.
#[derive(Debug)]
pub struct Backoff {
    cfg: RetryConfig,
    rng: u64,
    retries: u32,
}

impl Backoff {
    /// Start a schedule for one logical request.
    pub fn new(cfg: &RetryConfig) -> Self {
        Backoff {
            cfg: cfg.clone(),
            rng: (cfg.jitter_seed ^ 0x9E37_79B9_7F4A_7C15).max(1),
            retries: 0,
        }
    }

    /// The delay before the next retry, or `None` when attempts are
    /// exhausted. Full jitter over the top half of the exponential step
    /// (so delays stay ≥ half the nominal value), floored at the
    /// server's `Retry-After` if it sent one — the server knows its own
    /// overload better than our schedule does.
    pub fn next_delay(&mut self, retry_after: Option<Duration>) -> Option<Duration> {
        self.retries += 1;
        if self.retries >= self.cfg.max_attempts {
            return None;
        }
        let nominal = self
            .cfg
            .base_backoff
            .saturating_mul(1u32.checked_shl(self.retries - 1).unwrap_or(u32::MAX))
            .min(self.cfg.max_backoff);
        // xorshift64 jitter into [nominal/2, nominal].
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let half = nominal.as_nanos() as u64 / 2;
        let jittered = Duration::from_nanos(half + if half > 0 { x % (half + 1) } else { 0 });
        Some(match retry_after {
            Some(server_says) => jittered.max(server_says),
            None => jittered,
        })
    }
}

/// Drive `attempt` under a retry schedule: I/O errors and 503 responses
/// retry (the latter honoring `Retry-After`), anything else returns
/// immediately. Gives up when attempts are exhausted or when the next
/// retry could not start within the configured deadline, returning the
/// last outcome either way.
pub fn retry_with<C: Clock>(
    cfg: &RetryConfig,
    clock: &mut C,
    mut attempt: impl FnMut() -> io::Result<ClientResponse>,
) -> io::Result<ClientResponse> {
    let started = clock.now();
    let mut backoff = Backoff::new(cfg);
    loop {
        let result = attempt();
        let retry_after = match &result {
            Ok(resp) if resp.status == 503 => resp
                .header("retry-after")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_secs),
            Ok(_) => return result,
            Err(_) => None,
        };
        let Some(delay) = backoff.next_delay(retry_after) else {
            return result;
        };
        if clock.now().saturating_sub(started) + delay > cfg.deadline {
            return result;
        }
        clock.sleep(delay);
    }
}

/// A client that reconnects and retries through overload: each attempt
/// is a fresh connection with the configured socket deadline, and 503 /
/// connection failures back off with seeded jitter, honoring the
/// server's `Retry-After`. Generic over [`Clock`] so resilience tests
/// can pin the schedule.
#[derive(Debug)]
pub struct RetryingClient<C: Clock = SystemClock> {
    addr: SocketAddr,
    socket_timeout: Duration,
    cfg: RetryConfig,
    clock: C,
}

impl RetryingClient<SystemClock> {
    /// A real-time retrying client for `addr`.
    pub fn new(addr: SocketAddr, socket_timeout: Duration, cfg: RetryConfig) -> Self {
        Self::with_clock(addr, socket_timeout, cfg, SystemClock::new())
    }
}

impl<C: Clock> RetryingClient<C> {
    /// A retrying client over an explicit clock.
    pub fn with_clock(
        addr: SocketAddr,
        socket_timeout: Duration,
        cfg: RetryConfig,
        clock: C,
    ) -> Self {
        RetryingClient {
            addr,
            socket_timeout,
            cfg,
            clock,
        }
    }

    /// Send one logical request, retrying per the schedule. Every
    /// attempt dials a fresh connection (shed connections are closed by
    /// the server) with `socket_timeout` as its per-attempt read/write
    /// deadline.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        let (addr, timeout) = (self.addr, self.socket_timeout);
        let cfg = self.cfg.clone();
        retry_with(&cfg, &mut self.clock, move || {
            Client::connect(addr, timeout)?.request(method, path, body)
        })
    }

    /// [`Client::classify_text`] under the retry schedule: 503s (a
    /// degraded text door sends one, with `Retry-After`) and connection
    /// failures back off and retry inside the same deadline budget as
    /// every other endpoint.
    pub fn classify_text(
        &mut self,
        name: &str,
        labels: &[&str],
        text: &str,
    ) -> io::Result<ClientResponse> {
        let body = classify_text_body(name, labels, text);
        self.request("POST", "/v1/classify_text", body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(status: u16, retry_after: Option<&str>) -> ClientResponse {
        ClientResponse {
            status,
            headers: retry_after
                .map(|v| vec![("retry-after".to_string(), v.to_string())])
                .unwrap_or_default(),
            body: Vec::new(),
        }
    }

    fn cfg() -> RetryConfig {
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            deadline: Duration::from_secs(60),
            jitter_seed: 7,
        }
    }

    #[test]
    fn backoff_honors_retry_after_as_a_floor() {
        let mut clock = TestClock::default();
        let mut calls = 0u32;
        let out = retry_with(&cfg(), &mut clock, || {
            calls += 1;
            Ok(if calls < 3 {
                resp(503, Some("2"))
            } else {
                resp(200, None)
            })
        })
        .unwrap();
        assert_eq!(out.status, 200);
        assert_eq!(calls, 3);
        assert_eq!(clock.sleeps.len(), 2);
        for sleep in &clock.sleeps {
            assert!(
                *sleep >= Duration::from_secs(2),
                "Retry-After floors the jittered delay: {sleep:?}"
            );
        }
    }

    #[test]
    fn attempts_are_capped_and_the_last_outcome_returned() {
        let mut clock = TestClock::default();
        let mut calls = 0u32;
        let out = retry_with(&cfg(), &mut clock, || {
            calls += 1;
            Ok(resp(503, None))
        })
        .unwrap();
        assert_eq!(out.status, 503, "exhausted retries hand back the 503");
        assert_eq!(calls, 4, "max_attempts counts the first try");
        assert_eq!(clock.sleeps.len(), 3);
        // Nominal doubling, capped: 100, 200, 400 (each jittered down to
        // at least half).
        for (i, nominal_ms) in [100u64, 200, 400].into_iter().enumerate() {
            let nominal = Duration::from_millis(nominal_ms);
            assert!(clock.sleeps[i] >= nominal / 2, "{:?}", clock.sleeps);
            assert!(clock.sleeps[i] <= nominal, "{:?}", clock.sleeps);
        }
    }

    #[test]
    fn deadline_stops_retries_that_cannot_start_in_time() {
        let tight = RetryConfig {
            deadline: Duration::from_millis(50),
            ..cfg()
        };
        let mut clock = TestClock::default();
        let mut calls = 0u32;
        let out = retry_with(&tight, &mut clock, || {
            calls += 1;
            Ok(resp(503, Some("60")))
        })
        .unwrap();
        assert_eq!(out.status, 503);
        assert_eq!(calls, 1, "a 60s Retry-After cannot fit a 50ms deadline");
        assert!(
            clock.sleeps.is_empty(),
            "no pointless sleep before giving up"
        );
    }

    #[test]
    fn io_errors_retry_and_can_recover() {
        let mut clock = TestClock::default();
        let mut calls = 0u32;
        let out = retry_with(&cfg(), &mut clock, || {
            calls += 1;
            if calls == 1 {
                Err(io::Error::new(ErrorKind::ConnectionRefused, "booting"))
            } else {
                Ok(resp(200, None))
            }
        })
        .unwrap();
        assert_eq!(out.status, 200);
        assert_eq!(calls, 2);
    }

    #[test]
    fn non_503_statuses_never_retry() {
        let mut clock = TestClock::default();
        let mut calls = 0u32;
        let out = retry_with(&cfg(), &mut clock, || {
            calls += 1;
            Ok(resp(500, None))
        })
        .unwrap();
        assert_eq!(out.status, 500, "hard 5xx is the caller's problem");
        assert_eq!(calls, 1);
        assert!(clock.sleeps.is_empty());
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let walk = |seed: u64| {
            let mut b = Backoff::new(&RetryConfig {
                jitter_seed: seed,
                max_attempts: 8,
                ..cfg()
            });
            std::iter::from_fn(move || b.next_delay(None)).collect::<Vec<Duration>>()
        };
        assert_eq!(walk(42), walk(42), "same seed, same schedule");
        assert_ne!(walk(42), walk(43), "different seed, different jitter");
        for (i, d) in walk(42).iter().enumerate() {
            let nominal = Duration::from_millis(100)
                .saturating_mul(1u32 << (i as u32).min(6))
                .min(Duration::from_millis(400));
            assert!(*d >= nominal / 2 && *d <= nominal, "delay {i}: {d:?}");
        }
    }
}
