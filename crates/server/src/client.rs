//! A minimal pure-std HTTP/1.1 client, just enough to drive the server
//! from integration tests, the `http_smoke` bench, and the example.
//!
//! It speaks exactly the dialect the server emits: `Content-Length`
//! framed responses with a `Connection` header. Not a general client —
//! no chunked decoding, no redirects, no TLS.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One connection, usable for many keep-alive requests.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with a read/write deadline.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream })
    }

    /// Send one request and read its response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        let mut out = Vec::with_capacity(128 + body.len());
        write!(out, "{method} {path} HTTP/1.1\r\nHost: anchors\r\n")?;
        if !body.is_empty() {
            write!(out, "Content-Type: application/json\r\n")?;
        }
        write!(out, "Content-Length: {}\r\n\r\n", body.len())?;
        out.extend_from_slice(body);
        self.stream.write_all(&out)?;
        self.read_response()
    }

    /// Send raw bytes (for malformed-input tests) and read one response.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<ClientResponse> {
        self.stream.write_all(bytes)?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(at) = find_subslice(&buf, b"\r\n\r\n") {
                break at;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed before response head",
                    ))
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-body",
                    ))
                }
                Ok(n) => body.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
        body.truncate(content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}
