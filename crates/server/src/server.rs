//! The server runtime: accept loop, worker pool, backpressure, and
//! graceful drain.
//!
//! One acceptor thread owns the listener and does *no* request work — it
//! accepts, stamps timeouts, and tries a non-blocking push onto a
//! [`BoundedQueue`] of connections. A fixed pool of workers blocks on
//! that queue and runs the whole connection lifecycle: incremental
//! parse, [`router::handle`], response write, keep-alive loop. When the
//! queue is full the acceptor itself writes `503 Retry-After` and closes
//! — overload sheds load in constant time instead of queueing without
//! bound.
//!
//! [`ServerHandle::shutdown`] closes the front door (no new accepts),
//! then closes the queue, which lets the workers drain everything
//! already accepted before they exit — in-flight requests are never
//! dropped.

use crate::http::{self, HttpError, Limits, RequestParser, Response};
use crate::metrics::{Metrics, Route};
use crate::queue::{BoundedQueue, PushError};
use crate::router;
use crate::textdoor::TextDoor;
use anchors_curricula::Ontology;
use anchors_online::DeltaLog;
use anchors_serve::{Precision, Registry, ServeError, SnapshotCache};
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Environment variable selecting the fold-in precision a deployment
/// serves at: `f32` (reduced-precision NNLS, see
/// [`anchors_serve::F32_FOLD_IN_MAX_REL_ERR`] for the accuracy contract)
/// or `f64` (the default).
pub const PRECISION_ENV: &str = "ANCHORS_SERVE_PRECISION";

/// The serving precision named by [`PRECISION_ENV`]. Unset or
/// unrecognized values fall back to `f64` — a typo must never silently
/// change numerics, so anything but an exact `f32`/`f64` spelling keeps
/// full precision.
pub fn precision_from_env() -> Precision {
    std::env::var(PRECISION_ENV)
        .ok()
        .and_then(|v| Precision::parse(&v))
        .unwrap_or_default()
}

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded connection-queue depth; beyond it, connections are shed.
    pub queue_depth: usize,
    /// Parser input limits.
    pub limits: Limits,
    /// Socket read deadline (per `read` call).
    pub read_timeout: Duration,
    /// Socket write deadline.
    pub write_timeout: Duration,
    /// `Retry-After` seconds advertised on shed connections.
    pub retry_after_secs: u32,
    /// Artificial per-request delay, for overload tests and benches
    /// that need a deterministic service time. `None` in production.
    pub handler_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after_secs: 1,
            handler_delay: None,
        }
    }
}

/// The server's health state machine: `Healthy ⇄ Degraded`.
///
/// Degraded means the last `/v1/reload` failed even after retries — the
/// server keeps answering queries from the last-good snapshot, but
/// `/v1/healthz` reports 503 with the failure detail so orchestrators
/// can see the registry trouble. A later successful reload flips the
/// state back to healthy on its own: the server self-heals, it never
/// needs a restart to clear the flag.
#[derive(Debug, Default)]
pub struct Health {
    degraded: AtomicBool,
    detail: Mutex<String>,
}

impl Health {
    /// Whether the server is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Relaxed)
    }

    /// The failure detail while degraded, `None` when healthy.
    pub fn detail(&self) -> Option<String> {
        if !self.is_degraded() {
            return None;
        }
        Some(
            self.detail
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        )
    }

    /// Enter degraded mode with a human-readable cause.
    pub fn set_degraded(&self, detail: String) {
        *self.detail.lock().unwrap_or_else(|e| e.into_inner()) = detail;
        self.degraded.store(true, Relaxed);
    }

    /// Return to healthy (a reload succeeded).
    pub fn set_healthy(&self) {
        self.degraded.store(false, Relaxed);
        self.detail
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// Capped exponential backoff for retrying *transient* registry errors
/// during `/v1/reload`. The retry runs on the worker thread handling the
/// reload request — off the hot path; queries on other workers keep
/// flowing from the snapshot the whole time.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_backoff: Duration,
    /// Cap on any single delay.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based), doubling from
    /// `base_backoff` and capped at `max_backoff`.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        doubled.min(self.max_backoff)
    }
}

/// Everything a request handler can reach: the hot-swappable model
/// snapshot, the on-disk registry it reloads from, the health state, and
/// the metrics.
pub struct AppState {
    /// The served model, swapped atomically by `/v1/reload`.
    pub cache: SnapshotCache,
    /// Registry the cache reloads from.
    pub registry: Registry,
    /// CS tag ontology the engine validates against.
    pub cs: &'static Ontology,
    /// PDC topic ontology.
    pub pdc: &'static Ontology,
    /// Serving counters and latency histogram.
    pub metrics: Metrics,
    /// Healthy/Degraded state exposed via `/v1/healthz`.
    pub health: Health,
    /// Backoff schedule for transient registry errors during reload.
    pub reload_retry: RetryPolicy,
    /// The text-classification door, when the deployment serves
    /// `/v1/classify_text`. `None` routes that path to 404.
    pub text: Option<TextDoor>,
    /// The durable fold-in delta log, when the deployment serves
    /// `POST /v1/fold_in` and runs the background refresh loop. `None`
    /// routes that path to 404 (fold-in still works per-request through
    /// the engine; it just is not persisted).
    pub online: Option<Arc<DeltaLog>>,
}

impl AppState {
    /// State serving the newest model in `registry` at `f64` fold-in
    /// precision.
    pub fn from_registry(
        registry: Registry,
        cs: &'static Ontology,
        pdc: &'static Ontology,
    ) -> Result<Self, ServeError> {
        Self::from_registry_with_precision(registry, cs, pdc, Precision::F64)
    }

    /// State serving the newest model in `registry` at an explicit fold-in
    /// precision. [`Precision::F32`] narrows the basis once per (re)load
    /// and answers queries with the single-precision NNLS path; `/v1/reload`
    /// preserves the choice. Deployments opt in via
    /// `ANCHORS_SERVE_PRECISION=f32` on the binary.
    pub fn from_registry_with_precision(
        registry: Registry,
        cs: &'static Ontology,
        pdc: &'static Ontology,
        precision: Precision,
    ) -> Result<Self, ServeError> {
        let cache = SnapshotCache::from_registry_with_precision(&registry, cs, pdc, precision)?;
        Ok(AppState {
            cache,
            registry,
            cs,
            pdc,
            metrics: Metrics::new(),
            health: Health::default(),
            reload_retry: RetryPolicy::default(),
            text: None,
            online: None,
        })
    }

    /// Attach a text-classification door, enabling `/v1/classify_text`.
    pub fn with_text(mut self, door: TextDoor) -> Self {
        self.text = Some(door);
        self
    }

    /// Attach a delta log, enabling `POST /v1/fold_in` and the
    /// background refresh loop. Wire the same log into the model
    /// registry's retention via `Registry::with_pins` so GC never frees
    /// a base version that live deltas chain from.
    pub fn with_online(mut self, log: Arc<DeltaLog>) -> Self {
        self.online = Some(log);
        self
    }
}

/// A running HTTP server; dropped or [`shutdown`](ServerHandle::shutdown)
/// handles stop it gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    queue: Arc<BoundedQueue<TcpStream>>,
}

impl ServerHandle {
    /// The bound address (use port 0 in `start` to pick a free one).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// The server's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Stop accepting, then drain: every connection already queued is
    /// served to completion before the workers exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stopping.swap(true, SeqCst) {
            return;
        }
        // The acceptor blocks in accept(); a throwaway connection wakes
        // it so it can observe the stop flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // No more pushes are possible; close the queue so workers drain
        // what's left and then exit.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The HTTP front end.
pub struct Server;

impl Server {
    /// Bind `addr` and start the acceptor and worker pool. Returns once
    /// the listener is live; requests are served on background threads.
    pub fn start(
        state: Arc<AppState>,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let stopping = Arc::new(AtomicBool::new(false));
        let config = Arc::new(config);

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                let config = Arc::clone(&config);
                let stopping = Arc::clone(&stopping);
                thread::Builder::new()
                    .name(format!("anchors-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            serve_connection(&state, &config, &stopping, stream);
                        }
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let acceptor = {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let config = Arc::clone(&config);
            let stopping = Arc::clone(&stopping);
            thread::Builder::new()
                .name("anchors-http-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &queue, &state, &config, &stopping);
                })?
        };

        Ok(ServerHandle {
            addr: local,
            state,
            stopping,
            acceptor: Some(acceptor),
            workers,
            queue,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &BoundedQueue<TcpStream>,
    state: &AppState,
    config: &ServerConfig,
    stopping: &AtomicBool,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stopping.load(SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stopping.load(SeqCst) {
            return;
        }
        state.metrics.connections.fetch_add(1, Relaxed);
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        match queue.try_push(stream) {
            Ok(()) => {}
            Err(PushError::Full(stream)) | Err(PushError::Closed(stream)) => {
                shed(state, config, stream);
            }
        }
    }
}

/// Refuse one connection with `503 Retry-After` — the constant-time
/// overload path, run on the acceptor thread itself.
fn shed(state: &AppState, config: &ServerConfig, mut stream: TcpStream) {
    state.metrics.shed.fetch_add(1, Relaxed);
    let resp = Response::json(
        503,
        crate::wire::error_body("server is at capacity; retry shortly"),
    )
    .with_header("Retry-After", &config.retry_after_secs.to_string());
    let _ = resp.write_to(&mut stream, false);
}

/// Run one connection to completion: keep-alive loop of parse →
/// route → respond, with typed-error responses and deadline handling.
fn serve_connection(
    state: &AppState,
    config: &ServerConfig,
    stopping: &AtomicBool,
    mut stream: TcpStream,
) {
    let mut parser = RequestParser::new(config.limits.clone());
    let mut chunk = [0u8; 8 * 1024];
    loop {
        // Drain buffered (pipelined) requests before touching the socket.
        let request = loop {
            match parser.poll() {
                Ok(Some(req)) => break Some(req),
                Ok(None) => {}
                Err(e) => {
                    protocol_error(state, &mut stream, &e);
                    return;
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => break None,
                Ok(n) => parser.push_bytes(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Deadline hit. Mid-request is a client fault worth a
                    // 408; an idle keep-alive connection just closes.
                    if parser.buffered() > 0 {
                        state.metrics.timeouts.fetch_add(1, Relaxed);
                        let resp =
                            Response::json(408, crate::wire::error_body("timed out mid-request"));
                        let _ = resp.write_to(&mut stream, false);
                    }
                    break None;
                }
                Err(_) => break None,
            }
        };
        let Some(request) = request else { return };

        state.metrics.requests.fetch_add(1, Relaxed);
        if let Some(delay) = config.handler_delay {
            thread::sleep(delay);
        }
        let started = Instant::now();
        let route = Route::of(&request.path);
        let response = router::handle(state, &request);
        // A stopping server finishes the request it has but closes the
        // connection, so the drain terminates.
        let keep_alive = request.wants_keep_alive() && !stopping.load(SeqCst);
        let wrote = response.write_to(&mut stream, keep_alive);
        let elapsed = started.elapsed();
        state.metrics.observe_response(response.status, elapsed);
        state.metrics.observe_route(route, elapsed);
        if wrote.is_err() || !keep_alive {
            return;
        }
    }
}

/// Answer a protocol-level parse failure with its typed status and close.
fn protocol_error(state: &AppState, stream: &mut TcpStream, e: &HttpError) {
    state.metrics.parse_errors.fetch_add(1, Relaxed);
    let started = Instant::now();
    let resp = http::error_response(e);
    let _ = resp.write_to(stream, false);
    state
        .metrics
        .observe_response(resp.status, started.elapsed());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
