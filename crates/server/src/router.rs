//! Routing: one parsed [`Request`] in, one [`Response`] out.
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /v1/recommend` | fold in one course, full §5.2 response |
//! | `POST /v1/classify`  | fold in one course, flavor signal only |
//! | `POST /v1/classify_text` | raw text → tags → fold-in → full response |
//! | `POST /v1/batch`     | N queries → one [`BatchQueue`] flush → one NNLS solve |
//! | `GET  /v1/healthz`   | liveness + served model version |
//! | `GET  /v1/metrics`   | Prometheus text exposition |
//! | `POST /v1/reload`    | atomic snapshot swap to the newest registry version |
//! | `POST /v1/fold_in`   | fold in one course AND persist it as a durable delta |
//!
//! `/v1/classify_text` is the front door for deployments that attach a
//! [`crate::textdoor::TextDoor`]: the body carries raw syllabus text,
//! the text model reads tags out of it, and those tags run through the
//! same fold-in the structured routes use — one request from prose to
//! anchor recommendations. Without a door the route is 404; with a
//! degraded door it is 503 + `Retry-After` while every other route
//! keeps serving.
//!
//! Every handler runs against the engine `Arc` it snapshots at entry, so
//! a concurrent reload never changes a response mid-request. Handler
//! failures map onto statuses by error kind ([`serve_error_status`]):
//! client mistakes (unknown tag, wrong shape) are 4xx, solver or
//! registry trouble is 5xx, and a non-finite value in a response body is
//! caught by `Json::try_write` and surfaces as a 500 — never as invalid
//! JSON on the wire.

use crate::http::{Request, Response};
use crate::server::AppState;
use crate::wire;
use anchors_serve::json::Json;
use anchors_serve::{BatchQueue, ServeError};
use std::sync::atomic::Ordering::Relaxed;

/// Dispatch one request.
pub fn handle(state: &AppState, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("POST", "/v1/recommend") => recommend(state, req, wire::response_json),
        ("POST", "/v1/classify") => recommend(state, req, wire::classify_json),
        ("POST", "/v1/classify_text") => classify_text(state, req),
        ("POST", "/v1/batch") => batch(state, req),
        ("GET", "/v1/healthz") => healthz(state),
        ("GET", "/v1/metrics") => Response::text(200, state.metrics.render_prometheus()),
        ("POST", "/v1/reload") => reload(state),
        ("POST", "/v1/fold_in") => fold_in(state, req),
        (_, "/v1/classify_text") if state.text.is_none() => {
            Response::json(404, wire::error_body("no route for /v1/classify_text"))
        }
        (_, "/v1/fold_in") if state.online.is_none() => {
            Response::json(404, wire::error_body("no route for /v1/fold_in"))
        }
        (
            _,
            "/v1/recommend" | "/v1/classify" | "/v1/batch" | "/v1/reload" | "/v1/classify_text"
            | "/v1/fold_in",
        ) => method_not_allowed("POST"),
        (_, "/v1/healthz" | "/v1/metrics") => method_not_allowed("GET"),
        _ => Response::json(404, wire::error_body(&format!("no route for {path}"))),
    }
}

fn method_not_allowed(allow: &str) -> Response {
    Response::json(
        405,
        wire::error_body(&format!("method not allowed; use {allow}")),
    )
    .with_header("Allow", allow)
}

/// The status a serving-layer failure maps to: client-caused errors are
/// 4xx, model/registry/solver trouble is 5xx.
pub fn serve_error_status(e: &ServeError) -> u16 {
    match e {
        ServeError::UnknownTag { .. } | ServeError::QueryShape { .. } => 400,
        // Transient I/O is worth a retry from the client's side too.
        ServeError::Io {
            transient: true, ..
        } => 503,
        ServeError::Corrupt { .. }
        | ServeError::ChecksumMismatch { .. }
        | ServeError::SchemaVersion { .. }
        | ServeError::FingerprintMismatch { .. }
        | ServeError::VersionNotFound { .. }
        | ServeError::DeltaBaseMissing { .. }
        | ServeError::EmptyRegistry
        | ServeError::Io { .. }
        | ServeError::Linalg(_) => 500,
    }
}

fn json_response(status: u16, doc: Json) -> Response {
    match doc.try_write() {
        Ok(body) => Response::json(status, body),
        // A non-finite number slipped into a response: typed 500, not
        // invalid JSON.
        Err(e) => Response::json(500, wire::error_body(&e.to_string())),
    }
}

fn serve_error(e: &ServeError) -> Response {
    Response::json(serve_error_status(e), wire::error_body(&e.to_string()))
}

fn wire_error(e: &wire::WireError) -> Response {
    Response::json(400, wire::error_body(&e.to_string()))
}

fn recommend(
    state: &AppState,
    req: &Request,
    encode: fn(&anchors_serve::QueryResponse) -> Json,
) -> Response {
    let doc = match wire::parse_body(&req.body) {
        Ok(doc) => doc,
        Err(e) => return wire_error(&e),
    };
    let query = match wire::course_query(&doc) {
        Ok(q) => q,
        Err(e) => return wire_error(&e),
    };
    let snapshot = state.cache.snapshot();
    match snapshot.engine.query(&query) {
        Ok(resp) => json_response(200, encode(&resp)),
        Err(e) => serve_error(&e),
    }
}

/// Raw text in, anchor recommendations out: classify the text into tag
/// codes with the served [`anchors_text::TextModel`], then fold those
/// predicted tags into the factor model exactly as `/v1/recommend`
/// would. The two snapshots (text door, factor cache) are each taken
/// once at entry, so concurrent reloads never change either mid-request.
fn classify_text(state: &AppState, req: &Request) -> Response {
    let Some(door) = &state.text else {
        return Response::json(
            404,
            wire::error_body("this deployment serves no text model"),
        );
    };
    let doc = match wire::parse_body(&req.body) {
        Ok(doc) => doc,
        Err(e) => return wire_error(&e),
    };
    let (name, labels, text) = match wire::text_query(&doc) {
        Ok(parts) => parts,
        Err(e) => return wire_error(&e),
    };
    let text_snapshot = match door.snapshot() {
        Ok(snapshot) => snapshot,
        Err(detail) => {
            return Response::json(
                503,
                wire::error_body(&format!("text model unavailable: {detail}")),
            )
            .with_header("Retry-After", "1")
        }
    };
    let classification = match text_snapshot.model.classify(&text) {
        Ok(c) => c,
        // An empty document is the client's mistake; anything else the
        // classifier refuses is a served-model defect.
        Err(e @ anchors_text::TextError::EmptyText) => {
            return Response::json(400, wire::error_body(&e.to_string()))
        }
        Err(e) => return Response::json(500, wire::error_body(&e.to_string())),
    };
    let query =
        anchors_serve::engine::CourseQuery::new(name, labels, classification.predicted.clone());
    let snapshot = state.cache.snapshot();
    match snapshot.engine.query(&query) {
        Ok(resp) => json_response(
            200,
            wire::classify_text_json(&classification, text_snapshot.version, &resp),
        ),
        Err(e) => serve_error(&e),
    }
}

/// Fold one course in *durably*: the same body as `/v1/recommend`, but
/// besides solving the NNLS projection the handler persists the (tag
/// row, loadings) pair as a `delta-v<N>` artifact chained to the served
/// model version. The delta survives restarts (the log's startup
/// recovery replays it) and the background refresh loop absorbs it into
/// the next full model.
fn fold_in(state: &AppState, req: &Request) -> Response {
    let Some(log) = &state.online else {
        return Response::json(404, wire::error_body("this deployment persists no deltas"));
    };
    let doc = match wire::parse_body(&req.body) {
        Ok(doc) => doc,
        Err(e) => return wire_error(&e),
    };
    let query = match wire::course_query(&doc) {
        Ok(q) => q,
        Err(e) => return wire_error(&e),
    };
    let snapshot = state.cache.snapshot();
    let delta =
        match anchors_online::FoldInDelta::from_query(&snapshot.engine, &query, snapshot.version) {
            Ok(delta) => delta,
            Err(e) => return serve_error(&e),
        };
    match log.append(&delta) {
        Ok(delta_version) => {
            state.metrics.fold_ins.fetch_add(1, Relaxed);
            json_response(
                200,
                Json::Obj(vec![
                    ("folded".into(), Json::Bool(true)),
                    ("delta_version".into(), Json::Num(delta_version as f64)),
                    ("base_version".into(), Json::Num(snapshot.version as f64)),
                    ("name".into(), Json::Str(delta.name.clone())),
                    (
                        "loadings".into(),
                        Json::Arr(delta.loadings.iter().map(|&v| Json::Num(v)).collect()),
                    ),
                ]),
            )
        }
        Err(e) => serve_error(&e),
    }
}

fn batch(state: &AppState, req: &Request) -> Response {
    let doc = match wire::parse_body(&req.body) {
        Ok(doc) => doc,
        Err(e) => return wire_error(&e),
    };
    let queries = match wire::course_queries(&doc) {
        Ok(qs) => qs,
        Err(e) => return wire_error(&e),
    };
    // N network queries become one matrix-level NNLS solve: the whole
    // body drains through a BatchQueue flush against one snapshot.
    let mut queue = BatchQueue::new();
    for q in queries {
        queue.push(q);
    }
    let snapshot = state.cache.snapshot();
    match queue.flush(&snapshot.engine) {
        Ok(responses) => json_response(
            200,
            Json::Obj(vec![(
                "responses".into(),
                Json::Arr(responses.iter().map(wire::response_json).collect()),
            )]),
        ),
        Err(e) => serve_error(&e),
    }
}

/// Liveness plus the health-state machine: 200 while healthy, 503 with
/// the degradation detail while the last reload failure is unresolved.
/// Either way the served snapshot is described — a degraded server is
/// still answering queries from its last-good model.
fn healthz(state: &AppState) -> Response {
    let snapshot = state.cache.snapshot();
    let degraded = state.health.detail();
    let mut members = vec![
        (
            "status".into(),
            Json::Str(if degraded.is_some() { "degraded" } else { "ok" }.into()),
        ),
        ("version".into(), Json::Num(snapshot.version as f64)),
        (
            "model".into(),
            Json::Str(snapshot.engine.model().name.clone()),
        ),
        ("k".into(), Json::Num(snapshot.engine.k() as f64)),
        ("tags".into(), Json::Num(snapshot.engine.n_tags() as f64)),
        (
            "precision".into(),
            Json::Str(snapshot.engine.precision().as_str().into()),
        ),
    ];
    // The text door reports inside healthz but does not fail liveness:
    // a text-only degradation 503s `/v1/classify_text` while the factor
    // routes — and this endpoint — stay 200.
    if let Some(door) = &state.text {
        let text = match door.snapshot() {
            Ok(snapshot) => Json::Obj(vec![
                ("status".into(), Json::Str("ok".into())),
                ("version".into(), Json::Num(snapshot.version as f64)),
                ("model".into(), Json::Str(snapshot.model.name.clone())),
            ]),
            Err(detail) => Json::Obj(vec![
                ("status".into(), Json::Str("degraded".into())),
                ("detail".into(), Json::Str(detail)),
            ]),
        };
        members.push(("text".into(), text));
    }
    match degraded {
        Some(detail) => {
            members.push(("detail".into(), Json::Str(detail)));
            json_response(503, Json::Obj(members)).with_header("Retry-After", "1")
        }
        None => json_response(200, Json::Obj(members)),
    }
}

/// Atomic snapshot swap with self-healing semantics: transient registry
/// errors are retried with capped backoff (on this worker thread only —
/// queries keep flowing elsewhere), a success clears any degraded state,
/// and a final failure flips the server to degraded *without touching
/// the snapshot* — the last-good model keeps answering.
fn reload(state: &AppState) -> Response {
    let policy = &state.reload_retry;
    let mut retry = 0u32;
    let failure = loop {
        match state.cache.reload(&state.registry, state.cs, state.pdc) {
            Ok(version) => {
                state.metrics.reloads.fetch_add(1, Relaxed);
                state.health.set_healthy();
                state.metrics.serving_degraded.store(0, Relaxed);
                let mut members = vec![
                    ("reloaded".into(), Json::Bool(true)),
                    ("version".into(), Json::Num(version as f64)),
                ];
                // The text door rides the same reload, non-fatally: its
                // failure leaves `/v1/classify_text` degraded (or on its
                // last-good snapshot) without failing the factor reload.
                if let Some(door) = &state.text {
                    members.push(match door.reload() {
                        Ok(text_version) => ("text_version".into(), Json::Num(text_version as f64)),
                        Err(e) => ("text_error".into(), Json::Str(e.to_string())),
                    });
                }
                return json_response(200, Json::Obj(members));
            }
            Err(e) if e.is_transient() && retry + 1 < policy.attempts => {
                std::thread::sleep(policy.backoff_for(retry));
                retry += 1;
            }
            Err(e) => break e,
        }
    };
    state.metrics.reload_failures.fetch_add(1, Relaxed);
    state.metrics.serving_degraded.store(1, Relaxed);
    state.health.set_degraded(failure.to_string());
    let resp = serve_error(&failure);
    if resp.status == 503 {
        resp.with_header("Retry-After", "1")
    } else {
        resp
    }
}
