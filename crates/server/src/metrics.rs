//! Lock-free serving observability.
//!
//! Every counter is a relaxed [`AtomicU64`] — the hot path (a worker
//! finishing a request) does a handful of `fetch_add`s and never takes a
//! lock. Latency lands in a fixed-bucket histogram (bounds in
//! microseconds, chosen to straddle the sub-millisecond fold-in solve
//! and multi-millisecond overload tails). `/v1/metrics` renders the
//! whole thing in Prometheus text exposition format, so a scrape is one
//! relaxed load per line.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Upper bounds (µs) of the latency histogram buckets; one overflow
/// bucket (`+Inf`) follows the last bound.
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000,
];

/// A fixed-bucket latency histogram with relaxed atomic counters.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn observe(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_us.fetch_add(us, Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observations, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Relaxed)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` ∈ [0, 1];
    /// `f64::INFINITY` when it lands in the overflow bucket, `0` when
    /// nothing was observed.
    pub fn quantile_upper_us(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Relaxed);
            if seen >= target {
                return LATENCY_BOUNDS_US
                    .get(i)
                    .map_or(f64::INFINITY, |&b| b as f64);
            }
        }
        f64::INFINITY
    }

    /// Render as cumulative Prometheus `_bucket`/`_sum`/`_count` lines.
    /// `labels` is either empty or a rendered label pair such as
    /// `route="classify_text"`, which lands before the `le` label.
    fn render(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write as _;
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Relaxed);
            let le = LATENCY_BOUNDS_US
                .get(i)
                .map_or("+Inf".to_string(), |b| b.to_string());
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
            );
        }
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", self.sum_us());
            let _ = writeln!(out, "{name}_count {}", self.count());
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", self.sum_us());
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count());
        }
    }
}

/// The route label a request resolves to for per-route metrics. One
/// fixed variant per served endpoint plus [`Route::Other`], so the label
/// set is bounded no matter what paths clients probe — cardinality never
/// grows with traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/recommend`
    Recommend,
    /// `POST /v1/classify`
    Classify,
    /// `POST /v1/classify_text`
    ClassifyText,
    /// `POST /v1/batch`
    Batch,
    /// `GET /v1/healthz`
    Healthz,
    /// `GET /v1/metrics`
    MetricsRoute,
    /// `POST /v1/reload`
    Reload,
    /// `POST /v1/fold_in`
    FoldIn,
    /// Anything else (404s, probes).
    Other,
}

impl Route {
    /// Every route, in rendering order.
    pub const ALL: [Route; 9] = [
        Route::Recommend,
        Route::Classify,
        Route::ClassifyText,
        Route::Batch,
        Route::Healthz,
        Route::MetricsRoute,
        Route::Reload,
        Route::FoldIn,
        Route::Other,
    ];

    /// Classify a request path (query string ignored).
    pub fn of(path: &str) -> Route {
        match path.split('?').next().unwrap_or("") {
            "/v1/recommend" => Route::Recommend,
            "/v1/classify" => Route::Classify,
            "/v1/classify_text" => Route::ClassifyText,
            "/v1/batch" => Route::Batch,
            "/v1/healthz" => Route::Healthz,
            "/v1/metrics" => Route::MetricsRoute,
            "/v1/reload" => Route::Reload,
            "/v1/fold_in" => Route::FoldIn,
            _ => Route::Other,
        }
    }

    /// The Prometheus label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Route::Recommend => "recommend",
            Route::Classify => "classify",
            Route::ClassifyText => "classify_text",
            Route::Batch => "batch",
            Route::Healthz => "healthz",
            Route::MetricsRoute => "metrics",
            Route::Reload => "reload",
            Route::FoldIn => "fold_in",
            Route::Other => "other",
        }
    }

    fn index(self) -> usize {
        Route::ALL.iter().position(|&r| r == self).unwrap_or(8)
    }
}

/// Per-route counters: requests finished and their latency, all relaxed
/// atomics like the global set.
#[derive(Debug, Default)]
pub struct RouteMetrics {
    /// Responses written on this route.
    pub requests: AtomicU64,
    /// Latency on this route, parse-complete → response written.
    pub latency: LatencyHistogram,
}

/// All counters the server maintains.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (including ones later shed).
    pub connections: AtomicU64,
    /// Requests fully parsed.
    pub requests: AtomicU64,
    /// Responses by class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (client errors, including parse failures).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (handler failures; excludes shed 503s).
    pub responses_5xx: AtomicU64,
    /// Connections shed with `503 Retry-After` because the queue was full.
    pub shed: AtomicU64,
    /// Connections dropped by a protocol parse error.
    pub parse_errors: AtomicU64,
    /// Connections that hit the read deadline mid-request.
    pub timeouts: AtomicU64,
    /// Successful `/v1/reload` swaps.
    pub reloads: AtomicU64,
    /// Deltas durably appended by `/v1/fold_in`.
    pub fold_ins: AtomicU64,
    /// Background refreshes that published and swapped a new model.
    pub refreshes: AtomicU64,
    /// Background refresh ticks that failed (the loop keeps running;
    /// each failure also flips the server to degraded).
    pub refresh_failures: AtomicU64,
    /// `/v1/reload` attempts that failed even after transient-error
    /// retries — each one flips the server into degraded mode.
    pub reload_failures: AtomicU64,
    /// Gauge: 1 while the server is serving in degraded mode (last
    /// reload failed; still answering from the last-good snapshot), 0
    /// when healthy.
    pub serving_degraded: AtomicU64,
    /// Request latency, parse-complete → response written.
    pub latency: LatencyHistogram,
    /// Per-route request counters and latency, indexed by
    /// [`Route::ALL`] order.
    pub routes: [RouteMetrics; 9],
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record a finished response.
    pub fn observe_response(&self, status: u16, latency: Duration) {
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Relaxed);
        self.latency.observe(latency);
    }

    /// Record a finished response against its route.
    pub fn observe_route(&self, route: Route, latency: Duration) {
        let slot = &self.routes[route.index()];
        slot.requests.fetch_add(1, Relaxed);
        slot.latency.observe(latency);
    }

    /// The per-route counters for `route`.
    pub fn route(&self, route: Route) -> &RouteMetrics {
        &self.routes[route.index()]
    }

    /// Render every counter in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let counter = |out: &mut String, name: &str, v: &AtomicU64| {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", v.load(Relaxed));
        };
        counter(
            &mut out,
            "anchors_http_connections_total",
            &self.connections,
        );
        counter(&mut out, "anchors_http_requests_total", &self.requests);
        let _ = writeln!(out, "# TYPE anchors_http_responses_total counter");
        for (class, v) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            let _ = writeln!(
                out,
                "anchors_http_responses_total{{class=\"{class}\"}} {}",
                v.load(Relaxed)
            );
        }
        counter(&mut out, "anchors_http_shed_total", &self.shed);
        counter(
            &mut out,
            "anchors_http_parse_errors_total",
            &self.parse_errors,
        );
        counter(&mut out, "anchors_http_timeouts_total", &self.timeouts);
        counter(&mut out, "anchors_http_reloads_total", &self.reloads);
        counter(
            &mut out,
            "anchors_http_reload_failures_total",
            &self.reload_failures,
        );
        counter(&mut out, "anchors_http_fold_ins_total", &self.fold_ins);
        counter(&mut out, "anchors_http_refreshes_total", &self.refreshes);
        counter(
            &mut out,
            "anchors_http_refresh_failures_total",
            &self.refresh_failures,
        );
        let _ = writeln!(out, "# TYPE anchors_http_serving_degraded gauge");
        let _ = writeln!(
            out,
            "anchors_http_serving_degraded {}",
            self.serving_degraded.load(Relaxed)
        );
        let _ = writeln!(out, "# TYPE anchors_http_request_duration_us histogram");
        self.latency
            .render("anchors_http_request_duration_us", "", &mut out);
        let _ = writeln!(out, "# TYPE anchors_http_route_requests_total counter");
        for route in Route::ALL {
            let _ = writeln!(
                out,
                "anchors_http_route_requests_total{{route=\"{}\"}} {}",
                route.as_str(),
                self.route(route).requests.load(Relaxed)
            );
        }
        let _ = writeln!(out, "# TYPE anchors_http_route_duration_us histogram");
        for route in Route::ALL {
            self.route(route).latency.render(
                "anchors_http_route_duration_us",
                &format!("route=\"{}\"", route.as_str()),
                &mut out,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_us(0.5), 0.0, "empty histogram");
        for us in [10u64, 60, 60, 300, 2_000, 600_000] {
            h.observe(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 602_430);
        // 10 → ≤50; 60,60 → ≤100; 300 → ≤500; 2000 → ≤2500; 600k → +Inf.
        assert_eq!(h.quantile_upper_us(0.0), 50.0);
        assert_eq!(h.quantile_upper_us(0.5), 100.0);
        assert_eq!(h.quantile_upper_us(0.99), f64::INFINITY);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_complete() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Relaxed);
        m.observe_response(200, Duration::from_micros(80));
        m.observe_response(200, Duration::from_micros(80));
        m.observe_response(404, Duration::from_micros(30));
        m.shed.fetch_add(1, Relaxed);
        m.reload_failures.fetch_add(2, Relaxed);
        m.serving_degraded.store(1, Relaxed);
        let text = m.render_prometheus();
        assert!(text.contains("anchors_http_requests_total 3"), "{text}");
        assert!(text.contains("anchors_http_reload_failures_total 2"));
        assert!(text.contains("anchors_http_serving_degraded 1"));
        assert!(text.contains("# TYPE anchors_http_serving_degraded gauge"));
        assert!(text.contains("anchors_http_responses_total{class=\"2xx\"} 2"));
        assert!(text.contains("anchors_http_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("anchors_http_shed_total 1"));
        assert!(text.contains("anchors_http_request_duration_us_bucket{le=\"50\"} 1"));
        assert!(text.contains("anchors_http_request_duration_us_bucket{le=\"100\"} 3"));
        assert!(text.contains("anchors_http_request_duration_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("anchors_http_request_duration_us_count 3"));
    }

    #[test]
    fn online_counters_render() {
        let m = Metrics::new();
        m.fold_ins.fetch_add(4, Relaxed);
        m.refreshes.fetch_add(2, Relaxed);
        m.refresh_failures.fetch_add(1, Relaxed);
        m.observe_route(Route::FoldIn, Duration::from_micros(90));
        let text = m.render_prometheus();
        assert!(text.contains("anchors_http_fold_ins_total 4"), "{text}");
        assert!(text.contains("anchors_http_refreshes_total 2"));
        assert!(text.contains("anchors_http_refresh_failures_total 1"));
        assert!(text.contains("anchors_http_route_requests_total{route=\"fold_in\"} 1"));
    }

    #[test]
    fn route_classification_is_total_and_bounded() {
        assert_eq!(Route::of("/v1/classify_text"), Route::ClassifyText);
        assert_eq!(Route::of("/v1/fold_in"), Route::FoldIn);
        assert_eq!(Route::of("/v1/classify_text?x=1"), Route::ClassifyText);
        assert_eq!(Route::of("/v1/classify"), Route::Classify);
        assert_eq!(Route::of("/v1/recommend"), Route::Recommend);
        assert_eq!(Route::of("/nope"), Route::Other);
        for route in Route::ALL {
            assert_eq!(Route::ALL[route.index()], route);
        }
    }

    #[test]
    fn per_route_series_render_with_labels() {
        let m = Metrics::new();
        m.observe_route(Route::ClassifyText, Duration::from_micros(80));
        m.observe_route(Route::ClassifyText, Duration::from_micros(700));
        m.observe_route(Route::Healthz, Duration::from_micros(10));
        let text = m.render_prometheus();
        assert!(
            text.contains("anchors_http_route_requests_total{route=\"classify_text\"} 2"),
            "{text}"
        );
        assert!(text.contains("anchors_http_route_requests_total{route=\"healthz\"} 1"));
        assert!(text.contains("anchors_http_route_requests_total{route=\"batch\"} 0"));
        assert!(text.contains(
            "anchors_http_route_duration_us_bucket{route=\"classify_text\",le=\"100\"} 1"
        ));
        assert!(text.contains(
            "anchors_http_route_duration_us_bucket{route=\"classify_text\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("anchors_http_route_duration_us_count{route=\"classify_text\"} 2"));
        assert!(text.contains("anchors_http_route_duration_us_sum{route=\"classify_text\"}"));
        // The unlabeled global histogram is untouched by route observes.
        assert!(text.contains("anchors_http_request_duration_us_count 0"));
    }
}
