//! The background refresh loop: absorb fold-in deltas off the hot path.
//!
//! `/v1/fold_in` appends deltas; this loop periodically turns them into
//! a *new full model*. One tick is [`run_refresh_tick`]:
//!
//! 1. read the live deltas from the [`DeltaLog`] (nothing to do → done);
//! 2. warm-start refit the served model on the delta-augmented matrix
//!    (`anchors_online::refresh_model` — previous factors seed HALS, so
//!    the refit costs a few sweeps, not a cold multi-restart fit);
//! 3. publish the refreshed model through the [`Registry`] (crash-safe
//!    claim/write/rename, retention GC honoring the log's pins);
//! 4. atomically swap the serving snapshot — the exact machinery
//!    `/v1/reload` uses, so concurrent queries never block and never see
//!    a half-installed model; the text door rides the swap and picks up
//!    any newly published text model the same way;
//! 5. compact exactly the absorbed deltas out of the log.
//!
//! The loop shares the server's `Healthy ⇄ Degraded` contract: a failed
//! tick bumps `refresh_failures`, flips the server degraded (still
//! serving the last-good snapshot), and the next successful tick —
//! or a successful `/v1/reload` — self-heals. [`RefreshHandle::shutdown`]
//! is a graceful drain: an in-flight tick finishes (publish and swap are
//! atomic; stopping mid-tick at worst leaves deltas uncompacted, which
//! the *next* process's first tick absorbs again idempotently), then the
//! thread exits.

use crate::server::AppState;
use anchors_online::{OnlineError, RefreshOptions};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning for the background refresh loop.
#[derive(Debug, Clone)]
pub struct RefreshConfig {
    /// Delay between ticks.
    pub interval: Duration,
    /// Solver budget per tick.
    pub options: RefreshOptions,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            interval: Duration::from_secs(60),
            options: RefreshOptions::default(),
        }
    }
}

/// What one successful refresh tick did.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshOutcome {
    /// The version the refreshed model published as (and the snapshot
    /// now serves).
    pub version: u64,
    /// Delta versions absorbed and compacted away.
    pub absorbed: Vec<u64>,
    /// HALS sweeps the warm refit needed.
    pub warm_iterations: usize,
    /// Whether the warm seed diverged and the cold ladder rescued the
    /// fit.
    pub fell_back_cold: bool,
}

/// Run one refresh tick synchronously. Returns `Ok(None)` when there was
/// nothing to absorb (no delta log attached, the log is empty, or every
/// delta was skipped as incompatible). Metrics and health are updated
/// exactly as the background loop would.
pub fn run_refresh_tick(
    state: &AppState,
    options: &RefreshOptions,
) -> Result<Option<RefreshOutcome>, OnlineError> {
    let Some(log) = &state.online else {
        return Ok(None);
    };
    let result = (|| {
        let deltas = log.live()?;
        if deltas.is_empty() {
            return Ok(None);
        }
        let snapshot = state.cache.snapshot();
        let (refreshed, report) =
            anchors_online::refresh_model(snapshot.engine.model(), &deltas, options)?;
        if report.absorbed.is_empty() {
            // Nothing compatible: leave the log alone (the skipped
            // deltas stay visible for operators) and publish nothing.
            return Ok(None);
        }
        state.registry.save(&refreshed)?;
        // The same swap `/v1/reload` does: load-latest into a fresh
        // engine, then one atomic pointer store. Queries in flight keep
        // their snapshot; the next snapshot() sees the refreshed model.
        let swapped = state.cache.reload(&state.registry, state.cs, state.pdc)?;
        if let Some(door) = &state.text {
            // Non-fatal, exactly as in /v1/reload: a text-side failure
            // degrades /v1/classify_text, not the factor refresh.
            let _ = door.reload();
        }
        log.compact(&report.absorbed)?;
        Ok(Some(RefreshOutcome {
            version: swapped,
            absorbed: report.absorbed,
            warm_iterations: report.warm.warm_iterations,
            fell_back_cold: report.warm.fell_back_cold,
        }))
    })();
    match &result {
        Ok(Some(_)) => {
            state.metrics.refreshes.fetch_add(1, Relaxed);
            state.health.set_healthy();
            state.metrics.serving_degraded.store(0, Relaxed);
        }
        Ok(None) => {}
        Err(e) => {
            state.metrics.refresh_failures.fetch_add(1, Relaxed);
            state.metrics.serving_degraded.store(1, Relaxed);
            state
                .health
                .set_degraded(format!("background refresh: {e}"));
        }
    }
    result
}

#[derive(Default)]
struct Stop {
    flag: Mutex<bool>,
    wake: Condvar,
}

/// A running background refresh loop; [`shutdown`](RefreshHandle::shutdown)
/// (or drop) stops it gracefully.
pub struct RefreshLoop;

/// Handle to a running refresh loop.
pub struct RefreshHandle {
    stop: Arc<Stop>,
    thread: Option<JoinHandle<()>>,
}

impl RefreshLoop {
    /// Start the loop. The first tick runs immediately — that is the
    /// startup replay: deltas recovered from a previous process are
    /// absorbed before the first interval elapses — then every
    /// `config.interval` until shutdown.
    pub fn start(state: Arc<AppState>, config: RefreshConfig) -> RefreshHandle {
        let stop = Arc::new(Stop::default());
        let thread = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("anchors-refresh".into())
                .spawn(move || loop {
                    // Failures are recorded on metrics/health by the tick
                    // itself; the loop's only job is to keep ticking.
                    let _ = run_refresh_tick(&state, &config.options);
                    let stopped = stop.flag.lock().unwrap_or_else(|e| e.into_inner());
                    let (stopped, _) = stop
                        .wake
                        .wait_timeout_while(stopped, config.interval, |stopped| !*stopped)
                        .unwrap_or_else(|e| e.into_inner());
                    if *stopped {
                        return;
                    }
                })
                .expect("spawn refresh thread")
        };
        RefreshHandle {
            stop,
            thread: Some(thread),
        }
    }
}

impl RefreshHandle {
    /// Stop the loop: an in-flight tick finishes, the interval wait is
    /// interrupted, the thread joins.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        *self.stop.flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.stop.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for RefreshHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}
