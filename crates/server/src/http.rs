//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The parser is *incremental*: bytes arrive in arbitrary chunks from a
//! socket ([`RequestParser::push_bytes`]) and [`RequestParser::poll`]
//! produces a [`Request`] once one is fully buffered, leaving any
//! pipelined surplus in place for the next poll. Splitting the input at
//! any byte boundary — including mid-`\r\n` — never changes the result;
//! the proptest suite pins that down.
//!
//! Every failure mode is a typed [`HttpError`] carrying the status code
//! the connection should die with: malformed syntax is `400`, an
//! oversized header block is `431`, an oversized body is `413`, an
//! unsupported version `505`, chunked transfer `501`. Limits are
//! enforced *while buffering*, so a hostile peer cannot balloon memory
//! by never finishing its header block.

use std::fmt;
use std::io::{self, Write};

/// Default cap on the request head (request line + all headers).
pub const DEFAULT_MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on one header line.
pub const DEFAULT_MAX_HEADER_LINE: usize = 8 * 1024;
/// Default cap on the number of headers.
pub const DEFAULT_MAX_HEADERS: usize = 64;
/// Default cap on the declared body size.
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

/// Input-size limits the parser enforces while buffering.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Max bytes of the whole head block (431 beyond this).
    pub max_head_bytes: usize,
    /// Max bytes of a single header line (431 beyond this).
    pub max_header_line: usize,
    /// Max number of header lines (431 beyond this).
    pub max_headers: usize,
    /// Max declared `Content-Length` (413 beyond this).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: DEFAULT_MAX_HEAD_BYTES,
            max_header_line: DEFAULT_MAX_HEADER_LINE,
            max_headers: DEFAULT_MAX_HEADERS,
            max_body: DEFAULT_MAX_BODY,
        }
    }
}

/// HTTP protocol version of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// HTTP/1.0 — close by default.
    Http10,
    /// HTTP/1.1 — keep-alive by default.
    Http11,
}

/// A typed protocol-level failure, each mapping to a response status.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    /// Unparseable request syntax (`400`).
    BadRequest {
        /// What was malformed.
        detail: String,
    },
    /// The head block or one of its lines exceeded a limit (`431`).
    HeadersTooLarge {
        /// The limit that was hit, in bytes or header count.
        limit: usize,
    },
    /// The declared body exceeds the limit (`413`).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A protocol version this server does not speak (`505`).
    UnsupportedVersion {
        /// The version token found.
        found: String,
    },
    /// A feature this server deliberately omits, e.g. chunked
    /// transfer-encoding (`501`).
    NotImplemented {
        /// The unsupported feature.
        feature: &'static str,
    },
}

impl HttpError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest { .. } => 400,
            HttpError::HeadersTooLarge { .. } => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedVersion { .. } => 505,
            HttpError::NotImplemented { .. } => 501,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest { detail } => write!(f, "malformed request: {detail}"),
            HttpError::HeadersTooLarge { limit } => {
                write!(f, "request header block exceeds limit {limit}")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found:?}")
            }
            HttpError::NotImplemented { feature } => write!(f, "{feature} is not implemented"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One fully parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method, uppercased token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path plus any query string).
    pub path: String,
    /// Protocol version.
    pub version: Version,
    /// Headers in arrival order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == Version::Http11,
        }
    }
}

/// Parsed head awaiting its body.
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    version: Version,
    headers: Vec<(String, String)>,
    content_length: usize,
}

/// Incremental request parser over a byte stream.
#[derive(Debug)]
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
    head: Option<Head>,
}

impl RequestParser {
    /// A parser enforcing `limits`.
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            head: None,
        }
    }

    /// Append raw bytes from the socket. Cheap; parsing happens in
    /// [`poll`](RequestParser::poll).
    pub fn push_bytes(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed by a completed request — used
    /// to tell an idle keep-alive connection (0) from one that timed out
    /// mid-request (&gt;0).
    pub fn buffered(&self) -> usize {
        self.buf.len() + if self.head.is_some() { 1 } else { 0 }
    }

    /// Convenience: [`push_bytes`](RequestParser::push_bytes) then
    /// [`poll`](RequestParser::poll).
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Option<Request>, HttpError> {
        self.push_bytes(chunk);
        self.poll()
    }

    /// Try to complete one request from the buffered bytes. `Ok(None)`
    /// means more input is needed. After `Ok(Some(_))`, surplus bytes
    /// (a pipelined next request) stay buffered; poll again before
    /// reading from the socket.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        if self.head.is_none() {
            match self.try_head()? {
                Some(head) => self.head = Some(head),
                None => return Ok(None),
            }
        }
        let need = self.head.as_ref().expect("head just set").content_length;
        if self.buf.len() < need {
            return Ok(None);
        }
        let head = self.head.take().expect("head present");
        let body: Vec<u8> = self.buf.drain(..need).collect();
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            version: head.version,
            headers: head.headers,
            body,
        }))
    }

    /// Locate and parse the head block, consuming it from the buffer.
    fn try_head(&mut self) -> Result<Option<Head>, HttpError> {
        // Enforce line/total caps on the *unterminated* prefix too, so
        // a peer that never sends the terminator still hits the limit.
        let end = match find_subslice(&self.buf, b"\r\n\r\n") {
            Some(at) => at,
            None => {
                if self.buf.len() > self.limits.max_head_bytes {
                    return Err(HttpError::HeadersTooLarge {
                        limit: self.limits.max_head_bytes,
                    });
                }
                let tail_line = self
                    .buf
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(self.buf.len(), |at| self.buf.len() - at - 1);
                if tail_line > self.limits.max_header_line {
                    return Err(HttpError::HeadersTooLarge {
                        limit: self.limits.max_header_line,
                    });
                }
                // Lines already terminated inside the buffer are also
                // subject to the per-line cap even before the block ends.
                if self
                    .lines_of(self.buf.len())
                    .any(|l| l.len() > self.limits.max_header_line)
                {
                    return Err(HttpError::HeadersTooLarge {
                        limit: self.limits.max_header_line,
                    });
                }
                return Ok(None);
            }
        };
        if end + 4 > self.limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge {
                limit: self.limits.max_head_bytes,
            });
        }
        let head = self.parse_head(end)?;
        self.buf.drain(..end + 4);
        Ok(Some(head))
    }

    /// Iterate over the `\r\n`-terminated lines of `buf[..upto]`.
    fn lines_of(&self, upto: usize) -> impl Iterator<Item = &[u8]> {
        self.buf[..upto]
            .split(|&b| b == b'\n')
            .map(|line| line.strip_suffix(b"\r").unwrap_or(line))
    }

    fn parse_head(&self, end: usize) -> Result<Head, HttpError> {
        let bad = |detail: String| HttpError::BadRequest { detail };
        let mut lines = self.lines_of(end);
        let request_line = lines.next().ok_or_else(|| bad("empty head".into()))?;
        if request_line.len() > self.limits.max_header_line {
            return Err(HttpError::HeadersTooLarge {
                limit: self.limits.max_header_line,
            });
        }
        let text = std::str::from_utf8(request_line)
            .map_err(|_| bad("request line is not UTF-8".into()))?;
        let mut parts = text.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
            _ => return Err(bad(format!("malformed request line {text:?}"))),
        };
        if !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(bad(format!("malformed method {method:?}")));
        }
        let version = match version {
            "HTTP/1.1" => Version::Http11,
            "HTTP/1.0" => Version::Http10,
            other if other.starts_with("HTTP/") => {
                return Err(HttpError::UnsupportedVersion {
                    found: other.to_string(),
                })
            }
            other => return Err(bad(format!("malformed version {other:?}"))),
        };

        let mut headers = Vec::new();
        let mut content_length: Option<usize> = None;
        for line in lines {
            if line.len() > self.limits.max_header_line {
                return Err(HttpError::HeadersTooLarge {
                    limit: self.limits.max_header_line,
                });
            }
            if headers.len() == self.limits.max_headers {
                return Err(HttpError::HeadersTooLarge {
                    limit: self.limits.max_headers,
                });
            }
            let text =
                std::str::from_utf8(line).map_err(|_| bad("header line is not UTF-8".into()))?;
            let (name, value) = text
                .split_once(':')
                .ok_or_else(|| bad(format!("header line without ':': {text:?}")))?;
            if name.is_empty() || name.contains(' ') || name.contains('\t') {
                return Err(bad(format!("malformed header name {name:?}")));
            }
            let name = name.to_ascii_lowercase();
            let value = value.trim_matches([' ', '\t']).to_string();
            match name.as_str() {
                "content-length" => {
                    if content_length.is_some() {
                        return Err(bad("duplicate Content-Length".into()));
                    }
                    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                        return Err(bad(format!("invalid Content-Length {value:?}")));
                    }
                    let n: usize = value
                        .parse()
                        .map_err(|_| bad(format!("invalid Content-Length {value:?}")))?;
                    if n > self.limits.max_body {
                        return Err(HttpError::BodyTooLarge {
                            declared: n,
                            limit: self.limits.max_body,
                        });
                    }
                    content_length = Some(n);
                }
                "transfer-encoding" => {
                    return Err(HttpError::NotImplemented {
                        feature: "Transfer-Encoding",
                    })
                }
                _ => {}
            }
            headers.push((name, value));
        }
        Ok(Head {
            method: method.to_string(),
            path: path.to_string(),
            version,
            headers,
            content_length: content_length.unwrap_or(0),
        })
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// A response ready to be written to the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are emitted by
    /// the writer; do not add them here).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with this status.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into_bytes())
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into_bytes())
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Set the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// The canonical reason phrase for a status this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serialize status line, headers (including `Content-Length` and
    /// `Connection`), and body in one buffered write.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        write!(
            out,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            Response::reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        write!(out, "Content-Length: {}\r\n", self.body.len())?;
        write!(
            out,
            "Connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        out.extend_from_slice(&self.body);
        w.write_all(&out)?;
        w.flush()
    }
}

/// The response a protocol error dies with.
pub fn error_response(e: &HttpError) -> Response {
    let body = crate::wire::error_body(&e.to_string());
    Response::json(e.status(), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        RequestParser::new(Limits::default()).feed(bytes)
    }

    const POST: &[u8] = b"POST /v1/recommend HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";

    #[test]
    fn parses_a_complete_request() {
        let req = parse_one(POST).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/recommend");
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn any_split_point_parses_identically() {
        let whole = parse_one(POST).unwrap().unwrap();
        for cut in 0..POST.len() {
            let mut p = RequestParser::new(Limits::default());
            let first = p.feed(&POST[..cut]).unwrap();
            let req = match first {
                Some(r) => r,
                None => p.feed(&POST[cut..]).unwrap().expect("complete"),
            };
            assert_eq!(req, whole, "split at {cut}");
        }
        // Byte-at-a-time.
        let mut p = RequestParser::new(Limits::default());
        let mut got = None;
        for &b in POST {
            if let Some(r) = p.feed(&[b]).unwrap() {
                got = Some(r);
            }
        }
        assert_eq!(got.unwrap(), whole);
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut both = POST.to_vec();
        both.extend_from_slice(b"GET /v1/healthz HTTP/1.1\r\n\r\n");
        let mut p = RequestParser::new(Limits::default());
        let first = p.feed(&both).unwrap().unwrap();
        assert_eq!(first.path, "/v1/recommend");
        let second = p.poll().unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/v1/healthz");
        assert!(second.body.is_empty());
        assert_eq!(p.buffered(), 0);
        assert!(p.poll().unwrap().is_none());
    }

    #[test]
    fn get_without_content_length_has_empty_body() {
        let req = parse_one(b"GET /v1/metrics HTTP/1.0\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.version, Version::Http10);
        assert!(req.body.is_empty());
        assert!(!req.wants_keep_alive(), "1.0 defaults to close");
    }

    #[test]
    fn connection_header_overrides_version_default() {
        let req = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse_one(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn malformed_syntax_is_400() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
        ] {
            let got = parse_one(bad);
            assert!(
                matches!(got, Err(HttpError::BadRequest { .. })),
                "{:?} -> {got:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn unsupported_features_are_distinct_errors() {
        assert!(matches!(
            parse_one(b"GET / HTTP/2.0\r\n\r\n"),
            Err(HttpError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::NotImplemented { .. })
        ));
    }

    #[test]
    fn oversized_inputs_hit_their_limits() {
        let limits = Limits {
            max_head_bytes: 256,
            max_header_line: 64,
            max_headers: 4,
            max_body: 128,
        };
        // One huge header line, never terminated: rejected while buffering.
        let mut p = RequestParser::new(limits.clone());
        let mut long = b"GET / HTTP/1.1\r\nX-A: ".to_vec();
        long.extend(std::iter::repeat_n(b'a', 100));
        let got = p.feed(&long);
        assert!(matches!(got, Err(HttpError::HeadersTooLarge { limit: 64 })));
        // Too many headers.
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..6 {
            req.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        req.extend_from_slice(b"\r\n");
        assert!(matches!(
            RequestParser::new(limits.clone()).feed(&req),
            Err(HttpError::HeadersTooLarge { limit: 4 })
        ));
        // Head block over the total cap (many short lines).
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        for _ in 0..40 {
            req.extend_from_slice(b"Y: zzzzzz\r\n");
        }
        let got = RequestParser::new(Limits {
            max_headers: 1000,
            ..limits.clone()
        })
        .feed(&req);
        assert!(matches!(
            got,
            Err(HttpError::HeadersTooLarge { limit: 256 })
        ));
        // Declared body over the cap: rejected from the header alone.
        assert!(matches!(
            RequestParser::new(limits).feed(b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"),
            Err(HttpError::BodyTooLarge {
                declared: 1000,
                limit: 128
            })
        ));
    }

    #[test]
    fn response_writer_emits_content_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        Response::new(503)
            .with_header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
